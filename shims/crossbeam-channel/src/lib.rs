//! Shim for the subset of `crossbeam-channel` this workspace uses, built on
//! `std::sync::mpsc`.
//!
//! Differences from std that the shim papers over:
//!
//! * a single [`Sender`]/[`Receiver`] pair covers both [`unbounded`] and
//!   [`bounded`] channels,
//! * [`Receiver`] is `Sync` (std's is not) — receive operations serialize on
//!   an internal mutex, which is fine for the single-consumer patterns the
//!   workspace uses.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: SenderKind::Unbounded(tx) }, Receiver { inner: Mutex::new(rx) })
}

/// Create a bounded channel with capacity `cap` (sends block when full).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender { inner: SenderKind::Bounded(tx) }, Receiver { inner: Mutex::new(rx) })
}

enum SenderKind<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for SenderKind<T> {
    fn clone(&self) -> Self {
        match self {
            SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
            SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
        }
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: SenderKind<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    /// Send `value`, blocking if a bounded channel is full.  Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Mutex<mpsc::Receiver<T>>,
}

impl<T> Receiver<T> {
    /// Block until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.lock().recv().map_err(|_| RecvError)
    }

    /// Block for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.lock().recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.lock().try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Error returned by [`Sender::send`] when the channel is disconnected; the
/// unsent value is returned to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel is empty"),
            TryRecvError::Disconnected => f.write_str("channel is disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn bounded_oneshot() {
        let (tx, rx) = bounded(1);
        tx.send(42u64).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn receiver_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Receiver<u8>>();
    }
}
