//! Shim for the subset of `rand` 0.8 this workspace uses: a deterministic
//! seeded [`rngs::StdRng`] plus [`Rng::gen_range`] over half-open ranges.
//!
//! The generator is SplitMix64 — statistically fine for synthetic test-data
//! generation, deliberately not cryptographic.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from `seed`; the same seed yields the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
