//! Collection strategies (shim counterpart of `proptest::collection`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Bounds on a generated collection's length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<Range<i32>> for SizeRange {
    fn from(r: Range<i32>) -> SizeRange {
        assert!(0 <= r.start && r.start < r.end, "invalid size range");
        SizeRange { min: r.start as usize, max: (r.end - 1) as usize }
    }
}

impl From<RangeInclusive<i32>> for SizeRange {
    fn from(r: RangeInclusive<i32>) -> SizeRange {
        assert!(0 <= *r.start() && r.start() <= r.end(), "invalid size range");
        SizeRange { min: *r.start() as usize, max: *r.end() as usize }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
