//! Value-generation strategies (shim counterpart of `proptest::strategy`).

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object safe: `generate` is the only required method, so strategies can be
/// boxed and mixed in a [`Union`] (what `prop_oneof!` builds).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice among several boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

/// The canonical strategy for a type (shim counterpart of
/// `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical generation recipe.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge values in so boundary bugs surface quickly.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite values only: generated floats feed equality round trips,
        // which NaN would break by design.
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => f32::MAX,
            3 => f32::MIN_POSITIVE,
            _ => {
                let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
                (unit - 0.5) * 2.0e12
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MAX,
            3 => f64::MIN_POSITIVE,
            _ => {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (unit - 0.5) * 2.0e18
            }
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A / a, B / b)
    (A / a, B / b, C / c)
    (A / a, B / b, C / c, D / d)
}

/// Character classes parsed out of the tiny regex dialect supported for
/// `&str` strategies: `[<class>]{lo,hi}` where the class lists characters,
/// `a-z` ranges, and `\n`/`\t`/`\\` escapes.
#[derive(Debug, Clone)]
struct CharClass {
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = self.ranges[rng.below(self.ranges.len() as u64) as usize];
        let span = hi as u32 - lo as u32 + 1;
        char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo)
    }
}

fn parse_pattern(pattern: &str) -> Option<(CharClass, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class_part, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);

    let mut chars: Vec<char> = Vec::new();
    let mut iter = class_part.chars().peekable();
    while let Some(c) = iter.next() {
        if c == '\\' {
            match iter.next()? {
                'n' => chars.push('\n'),
                't' => chars.push('\t'),
                'r' => chars.push('\r'),
                other => chars.push(other),
            }
        } else {
            chars.push(c);
        }
    }
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            ranges.push((chars[i], chars[i + 2]));
            i += 3;
        } else if i + 2 == chars.len() && chars[i + 1] == '-' {
            // Trailing '-' is a literal.
            ranges.push((chars[i], chars[i]));
            ranges.push(('-', '-'));
            i += 2;
        } else {
            ranges.push((chars[i], chars[i]));
            i += 1;
        }
    }
    if ranges.is_empty() {
        return None;
    }
    Some((CharClass { ranges }, lo, hi))
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) =
            parse_pattern(self).unwrap_or((CharClass { ranges: vec![(' ', '~')] }, 0, 32));
        let len = lo as u64 + rng.below((hi - lo + 1) as u64);
        (0..len).map(|_| class.sample(rng)).collect()
    }
}
