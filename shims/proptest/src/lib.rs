//! Shim for the subset of `proptest` this workspace's property tests use.
//!
//! The real proptest does shrinking and persistence of failing cases; this
//! stand-in keeps the same surface — [`Strategy`], `any`, `prop_oneof!`,
//! `proptest!`, `prop_assert*!`, `collection::vec` — but simply runs each
//! property for a fixed number of deterministic pseudo-random cases
//! (override with the `PROPTEST_CASES` environment variable).  Failures
//! report the case number; rerunning reproduces them because the RNG seed is
//! derived from the test name alone.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator from a test name.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable, distinct seed per test.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Number of cases each property runs (default 48, `PROPTEST_CASES`
/// overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Build a strategy that picks uniformly among the given strategies (all
/// must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Define property tests: each function runs its body for [`cases`]
/// deterministic pseudo-random assignments of its `arg in strategy`
/// parameters.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                $( let $arg = $strat; )+
                for case in 0..$crate::cases() {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $( let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng); )+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest shim: property {} failed at case {case}",
                            stringify!($name)
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Addition of small numbers never overflows u32.
        #[test]
        fn addition_is_monotone(a in any::<u16>(), b in 0u32..1000) {
            prop_assert!(a as u32 + b >= b);
            prop_assert_eq!(a as u32 + b, b + a as u32);
        }

        #[test]
        fn vectors_respect_size_bounds(v in crate::collection::vec(any::<u8>(), 2..=4)) {
            prop_assert!((2..=4).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn oneof_produces_all_arms(
            v in prop_oneof![
                any::<bool>().prop_map(|_| 0usize),
                any::<bool>().prop_map(|_| 1usize),
            ],
            _w in any::<u8>(),
        ) {
            prop_assert!(v <= 1);
        }

        #[test]
        fn regex_like_strings_stay_printable(s in "[ -~\\n]{0,200}") {
            prop_assert!(s.len() <= 200);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn tuples_and_ranges_generate() {
        let mut rng = crate::TestRng::from_name("tuples");
        let strat = (0usize..4, 0usize..3);
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&strat, &mut rng);
            assert!(a < 4 && b < 3);
        }
    }
}
