//! Shim for the subset of `criterion` this workspace's benches use.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`Throughput`],
//! [`BatchSize`], [`criterion_group!`] and [`criterion_main!`].  Instead of
//! criterion's statistical machinery it runs each benchmark for a bounded
//! number of iterations (adapted so a benchmark takes roughly
//! [`TARGET_TIME`] of wall clock) and prints a mean time per iteration,
//! which is enough to compare runs by eye and to keep the benches compiling
//! and runnable without external dependencies.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark.
pub const TARGET_TIME: Duration = Duration::from_millis(500);

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Hint for how expensive `iter_batched` setup values are to keep alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to the closure given to `bench_function`; drives the iterations.
pub struct Bencher {
    measured: Option<MeasuredRun>,
}

struct MeasuredRun {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call sizes the measured batch.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let iterations = (TARGET_TIME.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.measured = Some(MeasuredRun { iterations, total: start.elapsed() });
    }

    /// Run `routine` on fresh values produced by `setup`; only `routine` is
    /// timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let probe_start = Instant::now();
        black_box(routine(input));
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let iterations = (TARGET_TIME.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = Some(MeasuredRun { iterations, total });
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some(run) = &bencher.measured else {
        println!("{name:<50} (no measurement)");
        return;
    };
    let per_iter = run.total.as_secs_f64() / run.iterations as f64;
    let mut line =
        format!("{name:<50} {:>12.3} µs/iter ({} iters)", per_iter * 1e6, run.iterations);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gbps = bytes as f64 / per_iter / 1e9;
            line.push_str(&format!(", {gbps:.3} GB/s"));
        }
        Some(Throughput::Elements(elems)) => {
            let meps = elems as f64 / per_iter / 1e6;
            line.push_str(&format!(", {meps:.3} Melem/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// The benchmark driver (see `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { measured: None };
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { measured: None };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name.as_ref()), &bencher, self.throughput);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Declare a group function running the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 1024], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
