//! Shim for the subset of `parking_lot` this workspace uses, implemented on
//! top of `std::sync`.
//!
//! The workspace builds without network access, so instead of the real
//! crates.io dependency this in-tree stand-in provides the same API with the
//! parking_lot ergonomics the code relies on:
//!
//! * [`Mutex::lock`] returns the guard directly (no `Result`; poisoning is
//!   swallowed, matching parking_lot's behaviour of not poisoning at all),
//! * [`Condvar::wait`] / [`Condvar::wait_for`] take `&mut MutexGuard`
//!   instead of consuming and returning the guard.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual exclusion primitive (see `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (the borrow checker proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally wraps the std guard in an `Option` so that [`Condvar::wait`]
/// can temporarily take it out (std's condvar consumes and returns guards,
/// parking_lot's mutates them in place).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout expired.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable (see `parking_lot::Condvar`).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let result = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(result.timed_out());
    }
}
