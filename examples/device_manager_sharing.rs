//! The Section IV / Figure 6 scenario: two independent applications share
//! the GPU server through the central device manager, each getting its own
//! GPU.
//!
//! ```text
//! cargo run -p dopencl-examples --bin device_manager_sharing
//! ```

use devmgr::{
    connect_via_device_manager, parse_device_request, release_assignment, DeviceManager,
    DeviceManagerServer, ManagedDaemon, SchedulingStrategy,
};
use dopencl::{Context, LinkModel, LocalCluster, NdRange, SimClock, Value};
use std::sync::Arc;
use vocl::Platform;
use workloads::mandelbrot::{MandelbrotParams, BUILTIN_KERNEL};

fn run_instance(client: &dopencl::Client, name: &str) -> dopencl::Result<()> {
    let params =
        MandelbrotParams { width: 96, height: 64, max_iter: 128, ..MandelbrotParams::small() };
    let devices = client.devices();
    println!("[{name}] sees {} device(s): {}", devices.len(), devices[0].name());
    let context = Context::new(client, &devices)?;
    let queue = context.create_command_queue(&devices[0])?;
    let buffer = context.create_buffer(params.pixels() * 4)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;
    let kernel = program.create_kernel(BUILTIN_KERNEL)?;
    kernel.set_arg(0, &buffer)?;
    kernel.set_arg(1, Value::uint(params.width as u64))?;
    kernel.set_arg(2, Value::uint(params.height as u64))?;
    kernel.set_arg(3, Value::double(params.x_min))?;
    kernel.set_arg(4, Value::double(params.y_min))?;
    kernel.set_arg(5, Value::double(params.dx()))?;
    kernel.set_arg(6, Value::double(params.dy()))?;
    kernel.set_arg(7, Value::uint(0))?;
    kernel.set_arg(8, Value::uint(params.max_iter as u64))?;
    let event = queue.launch(&kernel, NdRange::two_d(params.width, params.height)).submit()?;
    event.wait()?;
    println!("[{name}] kernel finished, modelled execution time {:?}", event.modeled_duration());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    workloads::register_all_built_in_kernels();

    // Infrastructure: GPU server daemon (managed mode) + device manager.
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
    let dm_server = DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr")?;
    let platform = Platform::gpu_server();
    let managed = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpuserver",
        "gpuserver",
        platform.devices(),
    )?;
    cluster.add_node_with_policy("gpuserver", &platform, managed.policy())?;
    // Liveness: the daemon beats on a timer, the manager sweeps on one;
    // a daemon that dies is failed over without anyone polling by hand.
    let _heartbeats = managed.start_heartbeat(std::time::Duration::from_millis(50));
    let _health = dm.start_health_monitor(std::time::Duration::from_millis(200), 5);
    println!(
        "device manager at '{}', {} devices free",
        dm_server.address(),
        dm.free_device_count()
    );

    // Each application ships the XML configuration file of Listing 3.
    let xml = r#"
        <devmngr>devmngr</devmngr>
        <devices>
          <device>
            <attribute name="TYPE">GPU</attribute>
          </device>
        </devices>
    "#;
    let config = parse_device_request(xml)?;

    // Keep each application's client alive until its lease is released:
    // a dropped client is an abnormal termination, and the daemon reports
    // it so the device manager reclaims the lease (Section IV-C).
    let mut applications = Vec::new();
    for name in ["application-A", "application-B"] {
        let client = cluster.detached_client(name, SimClock::new());
        let assignment = connect_via_device_manager(&client, &transport, &config)?;
        println!("[{name}] lease {} on servers {:?}", assignment.auth_id, assignment.servers);
        run_instance(&client, name)?;
        applications.push((client, assignment));
    }
    println!(
        "\nleases active: {}, devices still free: {}",
        dm.lease_count(),
        dm.free_device_count()
    );

    for (_client, assignment) in &applications {
        release_assignment(&transport, assignment)?;
    }
    println!("after release: {} devices free", dm.free_device_count());
    Ok(())
}
