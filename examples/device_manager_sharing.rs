//! The Section IV / Figure 6 scenario: two independent applications share
//! the GPU server through the central device manager, each getting its own
//! GPU.
//!
//! ```text
//! cargo run -p dopencl-examples --bin device_manager_sharing
//! ```

use devmgr::{
    connect_via_device_manager, parse_device_request, release_assignment, DeviceManager,
    DeviceManagerServer, ManagedDaemon, SchedulingStrategy,
};
use dopencl::{LinkModel, LocalCluster, NdRange, SimClock, Value};
use std::sync::Arc;
use vocl::Platform;
use workloads::mandelbrot::{MandelbrotParams, BUILTIN_KERNEL};

fn run_instance(client: &dopencl::Client, name: &str) -> dopencl::Result<()> {
    let params =
        MandelbrotParams { width: 96, height: 64, max_iter: 128, ..MandelbrotParams::small() };
    let devices = client.devices();
    println!("[{name}] sees {} device(s): {}", devices.len(), devices[0].name());
    let context = client.create_context(&devices)?;
    let queue = client.create_command_queue(&context, &devices[0])?;
    let buffer = client.create_buffer(&context, params.pixels() * 4)?;
    let program = client.create_program_with_built_in_kernels(&context, BUILTIN_KERNEL)?;
    client.build_program(&program)?;
    let kernel = client.create_kernel(&program, BUILTIN_KERNEL)?;
    client.set_kernel_arg_buffer(&kernel, 0, &buffer)?;
    client.set_kernel_arg_scalar(&kernel, 1, Value::uint(params.width as u64))?;
    client.set_kernel_arg_scalar(&kernel, 2, Value::uint(params.height as u64))?;
    client.set_kernel_arg_scalar(&kernel, 3, Value::double(params.x_min))?;
    client.set_kernel_arg_scalar(&kernel, 4, Value::double(params.y_min))?;
    client.set_kernel_arg_scalar(&kernel, 5, Value::double(params.dx()))?;
    client.set_kernel_arg_scalar(&kernel, 6, Value::double(params.dy()))?;
    client.set_kernel_arg_scalar(&kernel, 7, Value::uint(0))?;
    client.set_kernel_arg_scalar(&kernel, 8, Value::uint(params.max_iter as u64))?;
    let event = client.enqueue_nd_range_kernel(
        &queue,
        &kernel,
        NdRange::two_d(params.width, params.height),
        &[],
    )?;
    event.wait()?;
    println!("[{name}] kernel finished, modelled execution time {:?}", event.modeled_duration());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    workloads::register_all_built_in_kernels();

    // Infrastructure: GPU server daemon (managed mode) + device manager.
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
    let dm_server = DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr")?;
    let platform = Platform::gpu_server();
    let managed = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpuserver",
        "gpuserver",
        platform.devices(),
    )?;
    cluster.add_node_with_policy("gpuserver", &platform, managed.policy())?;
    println!(
        "device manager at '{}', {} devices free",
        dm_server.address(),
        dm.free_device_count()
    );

    // Each application ships the XML configuration file of Listing 3.
    let xml = r#"
        <devmngr>devmngr</devmngr>
        <devices>
          <device>
            <attribute name="TYPE">GPU</attribute>
          </device>
        </devices>
    "#;
    let config = parse_device_request(xml)?;

    let mut assignments = Vec::new();
    for name in ["application-A", "application-B"] {
        let client = cluster.detached_client(name, SimClock::new());
        let assignment = connect_via_device_manager(&client, &transport, &config)?;
        println!("[{name}] lease {} on servers {:?}", assignment.auth_id, assignment.servers);
        run_instance(&client, name)?;
        assignments.push(assignment);
    }
    println!(
        "\nleases active: {}, devices still free: {}",
        dm.lease_count(),
        dm.free_device_count()
    );

    for assignment in &assignments {
        release_assignment(&transport, assignment)?;
    }
    println!("after release: {} devices free", dm.free_device_count());
    Ok(())
}
