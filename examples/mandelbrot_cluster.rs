//! Mandelbrot on an Infiniband CPU cluster (the Figure 4 scenario), at a
//! small, quickly-computed size.
//!
//! ```text
//! cargo run -p dopencl-examples --bin mandelbrot_cluster -- [nodes]
//! ```

use dopencl::{infiniband_cpu_cluster, NdRange, SimClock, Value};
use workloads::mandelbrot::{self, MandelbrotParams, BUILTIN_KERNEL};

fn main() -> dopencl::Result<()> {
    let nodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    workloads::register_all_built_in_kernels();

    let params = MandelbrotParams::small();
    println!(
        "computing a {}x{} Mandelbrot fractal (max {} iterations) on {nodes} cluster nodes",
        params.width, params.height, params.max_iter
    );

    let cluster = infiniband_cpu_cluster(nodes)?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("mandelbrot", clock.clone())?;
    let devices = client.devices();
    let context = client.create_context(&devices)?;
    let program = client.create_program_with_built_in_kernels(&context, BUILTIN_KERNEL)?;
    client.build_program(&program)?;

    let rows_per_device = params.height.div_ceil(devices.len());
    let mut image = vec![0u32; params.pixels()];
    let mut events = Vec::new();
    let mut tiles = Vec::new();
    for (i, device) in devices.iter().enumerate() {
        let row_offset = i * rows_per_device;
        let rows = rows_per_device.min(params.height.saturating_sub(row_offset));
        if rows == 0 {
            break;
        }
        let queue = client.create_command_queue(&context, device)?;
        let buffer = client.create_buffer(&context, params.width * rows * 4)?;
        let kernel = client.create_kernel(&program, BUILTIN_KERNEL)?;
        client.set_kernel_arg_buffer(&kernel, 0, &buffer)?;
        client.set_kernel_arg_scalar(&kernel, 1, Value::uint(params.width as u64))?;
        client.set_kernel_arg_scalar(&kernel, 2, Value::uint(rows as u64))?;
        client.set_kernel_arg_scalar(&kernel, 3, Value::double(params.x_min))?;
        client.set_kernel_arg_scalar(&kernel, 4, Value::double(params.y_min))?;
        client.set_kernel_arg_scalar(&kernel, 5, Value::double(params.dx()))?;
        client.set_kernel_arg_scalar(&kernel, 6, Value::double(params.dy()))?;
        client.set_kernel_arg_scalar(&kernel, 7, Value::uint(row_offset as u64))?;
        client.set_kernel_arg_scalar(&kernel, 8, Value::uint(params.max_iter as u64))?;
        events.push(client.enqueue_nd_range_kernel(
            &queue,
            &kernel,
            NdRange::two_d(params.width, rows),
            &[],
        )?);
        tiles.push((queue, buffer, row_offset, rows));
    }
    client.wait_for_events(&events)?;
    for (queue, buffer, row_offset, rows) in &tiles {
        let (data, _) =
            client.enqueue_read_buffer(queue, buffer, 0, params.width * rows * 4, &[])?;
        for (i, chunk) in data.chunks_exact(4).enumerate() {
            image[row_offset * params.width + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
    }

    // Verify a sample row against the reference implementation.
    let (reference, _) = mandelbrot::compute_rows(&params, params.height / 2, 1);
    let offset = (params.height / 2) * params.width;
    assert_eq!(&image[offset..offset + params.width], &reference[..]);

    // Render a coarse ASCII preview.
    println!();
    for y in (0..params.height).step_by((params.height / 24).max(1)) {
        let mut line = String::new();
        for x in (0..params.width).step_by((params.width / 76).max(1)) {
            let it = image[y * params.width + x];
            line.push(if it >= params.max_iter { '#' } else if it > 32 { '+' } else { '.' });
        }
        println!("{line}");
    }

    let b = clock.breakdown();
    println!(
        "\nmodelled phases — init {:.3} s | execution {:.3} s | data transfer {:.4} s",
        b.initialization.as_secs_f64(),
        events.iter().map(|e| e.modeled_duration()).max().unwrap_or_default().as_secs_f64(),
        b.data_transfer.as_secs_f64()
    );
    Ok(())
}
