//! Mandelbrot on an Infiniband CPU cluster (the Figure 4 scenario), at a
//! small, quickly-computed size.
//!
//! ```text
//! cargo run -p dopencl-examples --bin mandelbrot_cluster -- [nodes]
//! ```

use dopencl::{infiniband_cpu_cluster, Context, Event, NdRange, SimClock, Value};
use workloads::mandelbrot::{self, MandelbrotParams, BUILTIN_KERNEL};

fn main() -> dopencl::Result<()> {
    let nodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    workloads::register_all_built_in_kernels();

    let params = MandelbrotParams::small();
    println!(
        "computing a {}x{} Mandelbrot fractal (max {} iterations) on {nodes} cluster nodes",
        params.width, params.height, params.max_iter
    );

    let cluster = infiniband_cpu_cluster(nodes)?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("mandelbrot", clock.clone())?;
    let devices = client.devices();
    let context = Context::new(&client, &devices)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;

    let rows_per_device = params.height.div_ceil(devices.len());
    let mut image = vec![0u32; params.pixels()];
    let mut events = Vec::new();
    let mut tiles = Vec::new();
    for (i, device) in devices.iter().enumerate() {
        let row_offset = i * rows_per_device;
        let rows = rows_per_device.min(params.height.saturating_sub(row_offset));
        if rows == 0 {
            break;
        }
        let queue = context.create_command_queue(device)?;
        let buffer = context.create_buffer(params.width * rows * 4)?;
        let kernel = program.create_kernel(BUILTIN_KERNEL)?;
        kernel.set_arg(0, &buffer)?;
        kernel.set_arg(1, Value::uint(params.width as u64))?;
        kernel.set_arg(2, Value::uint(rows as u64))?;
        kernel.set_arg(3, Value::double(params.x_min))?;
        kernel.set_arg(4, Value::double(params.y_min))?;
        kernel.set_arg(5, Value::double(params.dx()))?;
        kernel.set_arg(6, Value::double(params.dy()))?;
        kernel.set_arg(7, Value::uint(row_offset as u64))?;
        kernel.set_arg(8, Value::uint(params.max_iter as u64))?;
        events.push(queue.launch(&kernel, NdRange::two_d(params.width, rows)).submit()?);
        tiles.push((queue, buffer, row_offset, rows));
    }
    Event::wait_all(&events)?;
    for (queue, buffer, row_offset, _rows) in &tiles {
        let (data, _) = queue.read_buffer(buffer).submit()?;
        for (i, chunk) in data.chunks_exact(4).enumerate() {
            image[row_offset * params.width + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
    }

    // Verify a sample row against the reference implementation.
    let (reference, _) = mandelbrot::compute_rows(&params, params.height / 2, 1);
    let offset = (params.height / 2) * params.width;
    assert_eq!(&image[offset..offset + params.width], &reference[..]);

    // Render a coarse ASCII preview.
    println!();
    for y in (0..params.height).step_by((params.height / 24).max(1)) {
        let mut line = String::new();
        for x in (0..params.width).step_by((params.width / 76).max(1)) {
            let it = image[y * params.width + x];
            line.push(if it >= params.max_iter {
                '#'
            } else if it > 32 {
                '+'
            } else {
                '.'
            });
        }
        println!("{line}");
    }

    let b = clock.breakdown();
    println!(
        "\nmodelled phases — init {:.3} s | execution {:.3} s | data transfer {:.4} s",
        b.initialization.as_secs_f64(),
        events.iter().map(|e| e.modeled_duration()).max().unwrap_or_default().as_secs_f64(),
        b.data_transfer.as_secs_f64()
    );
    Ok(())
}
