//! Quickstart: run an unmodified OpenCL-style program on a remote device
//! through dOpenCL, using the handle-based object API.
//!
//! ```text
//! cargo run -p dopencl-examples --bin quickstart
//! ```
//!
//! The example starts a daemon in-process (standing in for a remote GPU
//! server), connects a client driver to it via a server configuration file —
//! exactly the way an existing OpenCL application is pointed at dOpenCL in
//! the paper — and runs a SAXPY kernel shipped as OpenCL C source.
//!
//! # The object model in one glance
//!
//! Operations live on the object that owns them, like any native OpenCL
//! binding — the `Client` only manages servers and lists devices:
//!
//! | object | operations |
//! |---|---|
//! | `Client` | `connect_server`, `devices`, `devices_of(DeviceType)` |
//! | `Context` (via `Context::new`) | `create_command_queue`, `create_buffer`, `create_program_with_source` |
//! | `Program` | `build`, `build_log`, `create_kernel` |
//! | `Kernel` | `set_arg(i, scalar \| &buffer \| Arg::local(n))` |
//! | `CommandQueue` | `write_buffer(..).submit()`, `read_buffer(..).submit()`, `launch(..).submit()`, `marker()`, `finish` |
//! | `Event` | `wait`, `wait_timeout`, `Event::wait_all` |
//!
//! Enqueue calls are builders: chain `.at_offset(o)`, `.after(&[event])`,
//! `.blocking()` before `.submit()`.  If you are migrating code written
//! against the old `client.enqueue_*` god-object API, the full old→new
//! table is in the `dopencl::client` module documentation.

use dopencl::{Context, DeviceType, LinkModel, LocalCluster, NdRange, Value};
use vocl::Platform;

fn main() -> dopencl::Result<()> {
    // One "server": the paper's GPU server, reachable over Gigabit Ethernet.
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver.example.com", &Platform::gpu_server())?;

    // The application's execution directory would contain this file
    // (Listing 2 of the paper); the client driver connects automatically.
    let server_config = cluster.server_config();
    println!("server configuration file:\n{server_config}");

    let client = cluster.client("quickstart")?;
    println!("platform: {} ({})", client.platform_name(), client.platform_vendor());
    for device in client.devices() {
        println!("  device: {} [{}] on server {:?}", device.name(), device.kind(), device.server());
    }

    // Standard OpenCL workflow: context → queue → buffers → program → kernel.
    let gpus = client.devices_of(DeviceType::Gpu);
    let context = Context::new(&client, &gpus[..1])?;
    let queue = context.create_command_queue(&gpus[0])?;

    let n = 1024usize;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
    let to_bytes = |v: &[f32]| v.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>();

    let bx = context.create_buffer(n * 4)?;
    let by = context.create_buffer(n * 4)?;
    queue.write_buffer(&bx, &to_bytes(&x)).blocking().submit()?;
    queue.write_buffer(&by, &to_bytes(&y)).blocking().submit()?;

    let program = context.create_program_with_source(
        r#"
        __kernel void saxpy(float a, __global const float* x, __global float* y, uint n) {
            size_t i = get_global_id(0);
            if (i < n) { y[i] = a * x[i] + y[i]; }
        }
        "#,
    )?;
    program.build()?;
    let kernel = program.create_kernel("saxpy")?;
    kernel.set_arg(0, Value::float(1.5))?;
    kernel.set_arg(1, &bx)?;
    kernel.set_arg(2, &by)?;
    kernel.set_arg(3, Value::uint(n as u64))?;

    let event = queue.launch(&kernel, NdRange::linear(n)).submit()?;
    event.wait()?;

    let (result, _) = queue.read_buffer(&by).submit()?;
    let first = f32::from_le_bytes(result[4..8].try_into().unwrap());
    println!("\ny[1] = {first} (expected {})", 1.5 * 1.0 + 2.0);
    assert_eq!(first, 1.5 + 2.0);

    let breakdown = client.clock().breakdown();
    println!(
        "modelled time — initialization: {:.3} s, execution: {:.6} s, data transfer: {:.3} s",
        breakdown.initialization.as_secs_f64(),
        breakdown.execution.as_secs_f64(),
        breakdown.data_transfer.as_secs_f64()
    );
    Ok(())
}
