//! Quickstart: run an unmodified OpenCL-style program on a remote device
//! through dOpenCL.
//!
//! ```text
//! cargo run -p dopencl-examples --bin quickstart
//! ```
//!
//! The example starts a daemon in-process (standing in for a remote GPU
//! server), connects a client driver to it via a server configuration file —
//! exactly the way an existing OpenCL application is pointed at dOpenCL in
//! the paper — and runs a SAXPY kernel shipped as OpenCL C source.

use dopencl::{LinkModel, LocalCluster, NdRange, Value};
use vocl::Platform;

fn main() -> dopencl::Result<()> {
    // One "server": the paper's GPU server, reachable over Gigabit Ethernet.
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver.example.com", &Platform::gpu_server())?;

    // The application's execution directory would contain this file
    // (Listing 2 of the paper); the client driver connects automatically.
    let server_config = cluster.server_config();
    println!("server configuration file:\n{server_config}");

    let client = cluster.client("quickstart")?;
    println!("platform: {} ({})", client.platform_name(), client.platform_vendor());
    for device in client.devices() {
        println!(
            "  device: {} [{}] on server {:?}",
            device.name(),
            device.device_type(),
            device.server()
        );
    }

    // Standard OpenCL workflow: context → queue → buffers → program → kernel.
    let gpus = client.devices_of_type("GPU");
    let context = client.create_context(&gpus[..1])?;
    let queue = client.create_command_queue(&context, &gpus[0])?;

    let n = 1024usize;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
    let to_bytes = |v: &[f32]| v.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>();

    let bx = client.create_buffer(&context, n * 4)?;
    let by = client.create_buffer(&context, n * 4)?;
    client.enqueue_write_buffer(&queue, &bx, 0, &to_bytes(&x), &[])?.wait()?;
    client.enqueue_write_buffer(&queue, &by, 0, &to_bytes(&y), &[])?.wait()?;

    let program = client.create_program_with_source(
        &context,
        r#"
        __kernel void saxpy(float a, __global const float* x, __global float* y, uint n) {
            size_t i = get_global_id(0);
            if (i < n) { y[i] = a * x[i] + y[i]; }
        }
        "#,
    )?;
    client.build_program(&program)?;
    let kernel = client.create_kernel(&program, "saxpy")?;
    client.set_kernel_arg_scalar(&kernel, 0, Value::float(1.5))?;
    client.set_kernel_arg_buffer(&kernel, 1, &bx)?;
    client.set_kernel_arg_buffer(&kernel, 2, &by)?;
    client.set_kernel_arg_scalar(&kernel, 3, Value::uint(n as u64))?;

    let event = client.enqueue_nd_range_kernel(&queue, &kernel, NdRange::linear(n), &[])?;
    event.wait()?;

    let (result, _) = client.enqueue_read_buffer(&queue, &by, 0, n * 4, &[])?;
    let first = f32::from_le_bytes(result[4..8].try_into().unwrap());
    println!("\ny[1] = {first} (expected {})", 1.5 * 1.0 + 2.0);
    assert_eq!(first, 1.5 + 2.0);

    let breakdown = client.clock().breakdown();
    println!(
        "modelled time — initialization: {:.3} s, execution: {:.6} s, data transfer: {:.3} s",
        breakdown.initialization.as_secs_f64(),
        breakdown.execution.as_secs_f64(),
        breakdown.data_transfer.as_secs_f64()
    );
    Ok(())
}
