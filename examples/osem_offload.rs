//! The Figure 5 scenario at example scale: a desktop PC transparently
//! offloads list-mode OSEM reconstruction to a remote GPU server via
//! dOpenCL.
//!
//! ```text
//! cargo run -p dopencl-examples --bin osem_offload
//! ```

use dopencl::{desktop_and_gpu_server, Context, DeviceType, NdRange, SimClock, Value};
use workloads::osem::{self, OsemParams, BUILTIN_KERNEL};

fn main() -> dopencl::Result<()> {
    workloads::register_all_built_in_kernels();
    let params = OsemParams::small();
    println!(
        "list-mode OSEM: {} events, {} subsets, {} voxels, {} ray steps",
        params.num_events, params.subsets, params.num_voxels, params.ray_steps
    );

    // The desktop PC is the client; the GPU server is reachable over GigE.
    let cluster = desktop_and_gpu_server()?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("desktop-pc", clock.clone())?;
    let gpus = client.devices_of(DeviceType::Gpu);
    println!("remote GPUs visible through dOpenCL: {}", gpus.len());

    let events = osem::generate_events(&params, 2026);
    let image = vec![0.5f32; params.num_voxels];
    let to_bytes = |v: &[f32]| v.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>();

    // Use one of the remote GPUs (the paper's application uses the server's
    // GPUs one subset at a time).
    let gpu = &gpus[0];
    let context = Context::new(&client, std::slice::from_ref(gpu))?;
    let queue = context.create_command_queue(gpu)?;
    let events_buf = context.create_buffer(events.len() * 4)?;
    let image_buf = context.create_buffer(params.num_voxels * 4)?;
    let corr_buf = context.create_buffer(params.num_voxels * 4)?;
    queue.write_buffer(&events_buf, &to_bytes(&events)).blocking().submit()?;
    queue.write_buffer(&image_buf, &to_bytes(&image)).blocking().submit()?;

    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;
    let kernel = program.create_kernel(BUILTIN_KERNEL)?;
    kernel.set_arg(0, &events_buf)?;
    kernel.set_arg(1, &image_buf)?;
    kernel.set_arg(2, &corr_buf)?;
    kernel.set_arg(3, Value::uint(params.events_per_subset() as u64))?;
    kernel.set_arg(4, Value::uint(params.ray_steps as u64))?;
    kernel.set_arg(5, Value::uint(params.num_voxels as u64))?;

    for subset in 0..params.subsets {
        let e = queue.launch(&kernel, NdRange::linear(params.events_per_subset())).submit()?;
        e.wait()?;
        println!("  subset {subset}: modelled kernel time {:?}", e.modeled_duration());
    }

    let (correction, _) = queue.read_buffer(&corr_buf).submit()?;
    let total: f32 =
        correction.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).sum();
    println!("\nsum of the correction volume: {total:.3}");

    let b = clock.breakdown();
    println!(
        "modelled phases — init {:.3} s | execution {:.4} s | data transfer {:.3} s",
        b.initialization.as_secs_f64(),
        b.execution.as_secs_f64(),
        b.data_transfer.as_secs_f64()
    );
    Ok(())
}
