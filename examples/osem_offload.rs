//! The Figure 5 scenario at example scale: a desktop PC transparently
//! offloads list-mode OSEM reconstruction to a remote GPU server via
//! dOpenCL.
//!
//! ```text
//! cargo run -p dopencl-examples --bin osem_offload
//! ```

use dopencl::{desktop_and_gpu_server, NdRange, SimClock, Value};
use workloads::osem::{self, OsemParams, BUILTIN_KERNEL};

fn main() -> dopencl::Result<()> {
    workloads::register_all_built_in_kernels();
    let params = OsemParams::small();
    println!(
        "list-mode OSEM: {} events, {} subsets, {} voxels, {} ray steps",
        params.num_events, params.subsets, params.num_voxels, params.ray_steps
    );

    // The desktop PC is the client; the GPU server is reachable over GigE.
    let cluster = desktop_and_gpu_server()?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("desktop-pc", clock.clone())?;
    let gpus = client.devices_of_type("GPU");
    println!("remote GPUs visible through dOpenCL: {}", gpus.len());

    let events = osem::generate_events(&params, 2026);
    let image = vec![0.5f32; params.num_voxels];
    let to_bytes = |v: &[f32]| v.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>();

    // Use one of the remote GPUs (the paper's application uses the server's
    // GPUs one subset at a time).
    let gpu = &gpus[0];
    let context = client.create_context(std::slice::from_ref(gpu))?;
    let queue = client.create_command_queue(&context, gpu)?;
    let events_buf = client.create_buffer(&context, events.len() * 4)?;
    let image_buf = client.create_buffer(&context, params.num_voxels * 4)?;
    let corr_buf = client.create_buffer(&context, params.num_voxels * 4)?;
    client.enqueue_write_buffer(&queue, &events_buf, 0, &to_bytes(&events), &[])?.wait()?;
    client.enqueue_write_buffer(&queue, &image_buf, 0, &to_bytes(&image), &[])?.wait()?;

    let program = client.create_program_with_built_in_kernels(&context, BUILTIN_KERNEL)?;
    client.build_program(&program)?;
    let kernel = client.create_kernel(&program, BUILTIN_KERNEL)?;
    client.set_kernel_arg_buffer(&kernel, 0, &events_buf)?;
    client.set_kernel_arg_buffer(&kernel, 1, &image_buf)?;
    client.set_kernel_arg_buffer(&kernel, 2, &corr_buf)?;
    client.set_kernel_arg_scalar(&kernel, 3, Value::uint(params.events_per_subset() as u64))?;
    client.set_kernel_arg_scalar(&kernel, 4, Value::uint(params.ray_steps as u64))?;
    client.set_kernel_arg_scalar(&kernel, 5, Value::uint(params.num_voxels as u64))?;

    for subset in 0..params.subsets {
        let e = client.enqueue_nd_range_kernel(
            &queue,
            &kernel,
            NdRange::linear(params.events_per_subset()),
            &[],
        )?;
        e.wait()?;
        println!("  subset {subset}: modelled kernel time {:?}", e.modeled_duration());
    }

    let (correction, _) =
        client.enqueue_read_buffer(&queue, &corr_buf, 0, params.num_voxels * 4, &[])?;
    let total: f32 = correction
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .sum();
    println!("\nsum of the correction volume: {total:.3}");

    let b = clock.breakdown();
    println!(
        "modelled phases — init {:.3} s | execution {:.4} s | data transfer {:.3} s",
        b.initialization.as_secs_f64(),
        b.execution.as_secs_f64(),
        b.data_transfer.as_secs_f64()
    );
    Ok(())
}
