//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library only
//! provides conveniences they share.

#![forbid(unsafe_code)]

use dopencl::{LocalCluster, SimClock};
use gcf::LinkModel;
use vocl::Platform;

/// Build a Gigabit-Ethernet cluster with `nodes` test nodes of `devices`
/// devices each, plus a connected client.
pub fn test_cluster(nodes: usize, devices: usize) -> (LocalCluster, dopencl::Client, SimClock) {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    for i in 0..nodes {
        cluster
            .add_node(&format!("node{i}"), &Platform::test_platform(devices))
            .expect("start daemon");
    }
    let clock = SimClock::new();
    let client = cluster.client_with_clock("integration", clock.clone()).expect("client");
    (cluster, client, clock)
}

/// Interpret a byte slice as little-endian `i32`s.
pub fn as_i32s(bytes: &[u8]) -> Vec<i32> {
    bytes.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Interpret a byte slice as little-endian `f32`s.
pub fn as_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
}
