//! Property-based tests of the core data structures and protocols.

use dopencl::coherence::{BufferDirectory, CoherenceState, ValidationPlan};
use dopencl::protocol::{Request, Response, WireValue};
use gcf::wire::{Decode, Encode};
use oclc::{Scalar, ScalarType, Value};
use proptest::prelude::*;

fn arbitrary_scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|v| Value::int(v as i64)),
        any::<u32>().prop_map(|v| Value::uint(v as u64)),
        any::<u64>().prop_map(Value::size_t),
        any::<f32>().prop_map(Value::float),
        any::<f64>().prop_map(Value::double),
        any::<bool>().prop_map(Value::boolean),
        proptest::collection::vec(any::<f32>(), 2..=4).prop_map(|lanes| Value::Vector(
            ScalarType::Float,
            lanes.into_iter().map(|v| Scalar::F(v as f64)).collect()
        )),
    ]
}

proptest! {
    /// Every wire value survives an encode/decode round trip.
    #[test]
    fn wire_values_roundtrip(value in arbitrary_scalar_value()) {
        let wire = WireValue(value);
        let bytes = wire.to_bytes();
        let back = WireValue::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, wire);
    }

    /// Requests survive an encode/decode round trip for arbitrary ids,
    /// sizes and wait lists.
    #[test]
    fn requests_roundtrip(
        queue in any::<u64>(),
        buffer in any::<u64>(),
        offset in any::<u32>(),
        size in any::<u32>(),
        event in any::<u64>(),
        stream in any::<u64>(),
        wait in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let request = Request::EnqueueWriteBuffer {
            queue_id: queue,
            buffer_id: buffer,
            offset: offset as u64,
            size: size as u64,
            event_id: event,
            stream_id: stream,
            wait_events: wait,
        };
        let bytes = request.to_bytes();
        prop_assert_eq!(Request::from_bytes(&bytes).unwrap(), request);
    }

    /// Arbitrary byte garbage never panics the decoders; it either decodes
    /// to a valid message or reports a codec error.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
        let _ = gcf::Envelope::from_bytes(&bytes);
    }

    /// Scalar load/store through the interpreter's memory helpers is an
    /// identity for every scalar type and aligned offset.
    #[test]
    fn scalar_load_store_roundtrip(
        value in any::<i32>(),
        offset in 0usize..8,
        type_index in 0usize..8,
    ) {
        let types = [
            ScalarType::Char, ScalarType::UChar, ScalarType::Short, ScalarType::UShort,
            ScalarType::Int, ScalarType::UInt, ScalarType::Long, ScalarType::ULong,
        ];
        let ty = types[type_index];
        let mut bytes = vec![0u8; 24];
        oclc::value::store_scalar(&mut bytes, offset, ty, Scalar::I(value as i64)).unwrap();
        let loaded = oclc::value::load_scalar(&bytes, offset, ty).unwrap();
        let expected = oclc::value::convert_scalar(Scalar::I(value as i64), ty);
        prop_assert_eq!(loaded.as_i64(), expected.as_i64());
    }

    /// MSI invariant: after any sequence of operations there is at most one
    /// modified copy, and if one exists every other copy (including the
    /// client's) is invalid.
    #[test]
    fn msi_directory_invariants(ops in proptest::collection::vec((0usize..4, 0usize..3), 1..40)) {
        let servers = [0usize, 1, 2];
        let mut dir = BufferDirectory::new(servers, 64);
        for (op, server) in ops {
            match op {
                0 => dir.record_host_write(server, 0, &[1u8; 64]),
                1 => dir.record_device_write(server),
                2 => {
                    // Run the validation plan the client driver would run.
                    match dir.plan_validation(server) {
                        ValidationPlan::AlreadyValid => {}
                        ValidationPlan::UploadFromClient => dir.record_upload(server),
                        ValidationPlan::FetchThenUpload { source } => {
                            let data = dir.client_data();
                            dir.record_client_fetch(source, data);
                            dir.record_upload(server);
                        }
                    }
                }
                _ => dir.record_host_read(server, 0, &[0u8; 64]),
            }
            let modified: Vec<usize> = servers
                .iter()
                .copied()
                .filter(|s| dir.server_state(*s) == CoherenceState::Modified)
                .collect();
            prop_assert!(modified.len() <= 1, "more than one modified copy: {modified:?}");
            if let Some(owner) = modified.first() {
                prop_assert_eq!(dir.client_state(), CoherenceState::Invalid);
                for s in servers {
                    if s != *owner {
                        prop_assert_eq!(dir.server_state(s), CoherenceState::Invalid);
                    }
                }
            }
            // After running a validation plan for a server, that server must
            // hold a valid copy.
            if op == 2 {
                prop_assert_ne!(dir.server_state(server), CoherenceState::Invalid);
            }
        }
    }

    /// The OpenCL C front end never panics on arbitrary printable input —
    /// it either builds (which now includes lowering to bytecode) or reports
    /// diagnostics.
    #[test]
    fn compiler_never_panics_on_arbitrary_source(source in "[ -~\\n]{0,200}") {
        let _ = oclc::Program::build(&source);
    }

    /// The lexer never panics on arbitrary input — including non-ASCII
    /// characters and unterminated constructs — and whatever token stream it
    /// does produce never panics the parser.
    #[test]
    fn lexer_and_parser_never_panic(source in "[ -~\\n\\tα-ω°-¿]{0,300}") {
        if let Ok(tokens) = oclc::lexer::lex(&source) {
            let _ = oclc::parser::parse(&tokens);
        }
    }

    /// Token-soup fuzz: gluing together valid OpenCL C fragments reaches far
    /// deeper into the parser and semantic checker than character noise
    /// does.  No combination may panic; the ones that build must also lower
    /// to bytecode without panicking (lowering runs inside `build`).
    #[test]
    fn parser_never_panics_on_token_soup(
        indices in proptest::collection::vec(0usize..39, 0..60)
    ) {
        const PIECES: [&str; 39] = [
            "__kernel", "void", "float", "int", "uint", "__global", "__local", "*", "(", ")",
            "{", "}", ";", ",", "=", "+", "k", "x", "1", "2.0f", "if", "else", "for", "while",
            "return", "break", "continue", "barrier", "get_global_id", "float4", ".", "xy",
            "[", "]", "<", "?", ":", "++", "&&",
        ];
        let words: Vec<&str> = indices.iter().map(|&i| PIECES[i]).collect();
        let source = words.join(" ");
        let _ = oclc::Program::build(&source);
    }

    /// Phase breakdowns combine like durations: serial merge adds totals,
    /// parallel merge never exceeds the serial one.
    #[test]
    fn phase_breakdown_merge_laws(
        a in proptest::collection::vec(0u64..1_000_000, 3),
        b in proptest::collection::vec(0u64..1_000_000, 3),
    ) {
        use gcf::simtime::PhaseBreakdown;
        use std::time::Duration;
        let mk = |v: &[u64]| PhaseBreakdown {
            initialization: Duration::from_micros(v[0]),
            execution: Duration::from_micros(v[1]),
            data_transfer: Duration::from_micros(v[2]),
        };
        let (x, y) = (mk(&a), mk(&b));
        let serial = x.merge_serial(&y);
        let parallel = x.merge_parallel(&y);
        prop_assert_eq!(serial.total(), x.total() + y.total());
        prop_assert!(parallel.total() <= serial.total());
        prop_assert!(parallel.execution >= x.execution.max(y.execution) - Duration::from_nanos(1));
    }
}
