//! Regression tests for per-launch recompilation: the daemon must compile a
//! program exactly once per `clBuildProgram` and execute cached bytecode on
//! every launch.  `oclc::total_builds()` is a process-global counter, so
//! these tests live in their own integration-test binary where no other
//! test builds programs concurrently.

use dopencl::{Context, NdRange, Value};
use integration_tests::{as_i32s, test_cluster};

const INC_KERNEL: &str =
    "__kernel void inc(__global int* a) { size_t i = get_global_id(0); a[i] = a[i] + 1; }";

#[test]
fn launches_execute_cached_bytecode_without_rebuilding() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(64).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();

    let before = oclc::total_builds();
    program.build().unwrap();
    let after_build = oclc::total_builds();
    assert_eq!(after_build, before + 1, "clBuildProgram compiles exactly once");

    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();
    for _ in 0..10 {
        queue.launch(&kernel, NdRange::linear(16)).submit().unwrap();
    }
    queue.finish().unwrap();

    assert_eq!(
        oclc::total_builds(),
        after_build,
        "kernel launches must not re-parse/re-sema/re-lower the program"
    );
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert!(as_i32s(&data).iter().all(|v| *v == 10));
}

#[test]
fn repeated_build_calls_and_kernels_reuse_the_cached_artifact() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();
    let source = r#"
        __kernel void set(__global int* a, int v) { a[get_global_id(0)] = v; }
        __kernel void add(__global int* a, int v) { a[get_global_id(0)] += v; }
    "#;
    let program = context.create_program_with_source(source).unwrap();

    let before = oclc::total_builds();
    program.build().unwrap();
    program.build().unwrap();
    assert_eq!(oclc::total_builds(), before + 1, "re-building is a cached no-op");

    // Two kernels from the same program share the one compiled artifact.
    let set = program.create_kernel("set").unwrap();
    let add = program.create_kernel("add").unwrap();
    set.set_arg(0, &buffer).unwrap();
    set.set_arg(1, Value::int(5)).unwrap();
    add.set_arg(0, &buffer).unwrap();
    add.set_arg(1, Value::int(2)).unwrap();
    queue.launch(&set, NdRange::linear(4)).submit().unwrap();
    queue.launch(&add, NdRange::linear(4)).submit().unwrap();
    queue.finish().unwrap();

    assert_eq!(oclc::total_builds(), before + 1);
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert_eq!(as_i32s(&data), vec![7, 7, 7, 7]);
}
