//! End-to-end integration tests spanning every crate: client driver, daemon,
//! virtual OpenCL runtime, kernel interpreter, coherence and event
//! consistency — over both transports.  Exercises the handle-based object
//! API throughout.

use dopencl::{Client, Context, LinkModel, LocalCluster, NdRange, SimClock, Value};
use gcf::transport::tcp::TcpTransport;
use integration_tests::{as_i32s, test_cluster};
use std::sync::Arc;
use vocl::Platform;

const INC_KERNEL: &str =
    "__kernel void inc(__global int* a) { size_t i = get_global_id(0); a[i] = a[i] + 1; }";

#[test]
fn kernel_round_trip_over_inproc_transport() {
    let (_cluster, client, _clock) = test_cluster(1, 2);
    let devices = client.devices();
    assert_eq!(devices.len(), 2);
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(64).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();
    for _ in 0..3 {
        queue.launch(&kernel, NdRange::linear(16)).submit().unwrap();
    }
    queue.finish().unwrap();
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert!(as_i32s(&data).iter().all(|v| *v == 3));
}

/// The same protocol runs over real TCP sockets: daemon and client talk
/// through localhost.
#[test]
fn kernel_round_trip_over_tcp_transport() {
    let transport: Arc<dyn gcf::Transport> = Arc::new(TcpTransport::new());
    let daemon = dopencl::Daemon::start(
        "tcp-node",
        &Platform::test_platform(1),
        Arc::clone(&transport),
        "127.0.0.1:0",
        Arc::new(dopencl::OpenAccess),
    )
    .unwrap();
    let client =
        Client::new("tcp-client", transport, LinkModel::gigabit_ethernet(), SimClock::new());
    client.connect_server(daemon.address()).unwrap();
    let devices = client.devices();
    assert_eq!(devices.len(), 1);
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(4096).unwrap();
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    queue.write_buffer(&buffer, &payload).blocking().submit().unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();
    queue.launch(&kernel, NdRange::linear(1024)).submit().unwrap().wait().unwrap();
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    let expected_first = i32::from_le_bytes(payload[0..4].try_into().unwrap()) + 1;
    assert_eq!(as_i32s(&data)[0], expected_first);
}

#[test]
fn buffer_stays_consistent_across_three_servers() {
    let (_cluster, client, clock) = test_cluster(3, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queues: Vec<_> = devices.iter().map(|d| context.create_command_queue(d).unwrap()).collect();
    let buffer = context.create_buffer(16).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();

    // Walk the kernel across all three servers twice; the MSI directory has
    // to migrate the buffer through the client each time.
    for _round in 0..2 {
        for queue in &queues {
            let e = queue.launch(&kernel, NdRange::linear(4)).submit().unwrap();
            e.wait().unwrap();
        }
    }
    let (data, _) = queues[0].read_buffer(&buffer).submit().unwrap();
    assert_eq!(as_i32s(&data), vec![6, 6, 6, 6]);
    assert!(clock.breakdown().data_transfer > std::time::Duration::ZERO);
}

#[test]
fn events_synchronise_commands_across_servers() {
    let (_cluster, client, _clock) = test_cluster(2, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let q0 = context.create_command_queue(&devices[0]).unwrap();
    let q1 = context.create_command_queue(&devices[1]).unwrap();
    let buffer = context.create_buffer(16).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();

    // Launch on server 0, then launch on server 1 *waiting on* the first
    // event: the wait list crosses servers through the user-event protocol.
    let first = q0.launch(&kernel, NdRange::linear(4)).submit().unwrap();
    let second = q1
        .launch(&kernel, NdRange::linear(4))
        .after(std::slice::from_ref(&first))
        .submit()
        .unwrap();
    second.wait().unwrap();
    assert!(first.is_terminal(), "the dependency must have completed first");
    let (data, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(as_i32s(&data), vec![2, 2, 2, 2]);
}

#[test]
fn interpreted_and_builtin_kernels_agree_through_the_middleware() {
    workloads::register_all_built_in_kernels();
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let params = workloads::mandelbrot::MandelbrotParams {
        width: 48,
        height: 32,
        max_iter: 64,
        ..workloads::mandelbrot::MandelbrotParams::small()
    };

    let run = |use_builtin: bool| -> Vec<u8> {
        let buffer = context.create_buffer(params.pixels() * 4).unwrap();
        let program = if use_builtin {
            context
                .create_program_with_built_in_kernels(workloads::mandelbrot::BUILTIN_KERNEL)
                .unwrap()
        } else {
            context.create_program_with_source(workloads::mandelbrot::KERNEL_SOURCE).unwrap()
        };
        program.build().unwrap();
        let kernel = program.create_kernel("mandelbrot_rows").unwrap();
        kernel.set_arg(0, &buffer).unwrap();
        kernel.set_arg(1, Value::uint(params.width as u64)).unwrap();
        kernel.set_arg(2, Value::uint(params.height as u64)).unwrap();
        kernel.set_arg(3, Value::double(params.x_min)).unwrap();
        kernel.set_arg(4, Value::double(params.y_min)).unwrap();
        kernel.set_arg(5, Value::double(params.dx())).unwrap();
        kernel.set_arg(6, Value::double(params.dy())).unwrap();
        kernel.set_arg(7, Value::uint(0)).unwrap();
        kernel.set_arg(8, Value::uint(params.max_iter as u64)).unwrap();
        queue
            .launch(&kernel, NdRange::two_d(params.width, params.height))
            .submit()
            .unwrap()
            .wait()
            .unwrap();
        let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
        data
    };

    let interpreted = run(false);
    let builtin = run(true);
    // f32 (interpreter) vs f64 (built-in) escape-time rounding may differ on
    // a handful of boundary pixels.
    let matching =
        interpreted.chunks_exact(4).zip(builtin.chunks_exact(4)).filter(|(a, b)| a == b).count();
    assert!(matching as f64 / params.pixels() as f64 > 0.97);
}

#[test]
fn disconnecting_a_server_removes_its_devices_but_others_keep_working() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("a", &Platform::test_platform(1)).unwrap();
    cluster.add_node("b", &Platform::test_platform(1)).unwrap();
    let client = cluster.client("app").unwrap();
    assert_eq!(client.devices().len(), 2);
    let servers = client.servers();
    client.disconnect_server(servers[0]).unwrap();
    let devices = client.devices();
    assert_eq!(devices.len(), 1);

    // The remaining server still executes work.
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();
    queue.write_buffer(&buffer, &[7u8; 16]).blocking().submit().unwrap();
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert_eq!(data, vec![7u8; 16]);
}
