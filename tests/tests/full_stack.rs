//! End-to-end integration tests spanning every crate: client driver, daemon,
//! virtual OpenCL runtime, kernel interpreter, coherence and event
//! consistency — over both transports.

use dopencl::{Client, LinkModel, LocalCluster, NdRange, SimClock, Value};
use gcf::transport::tcp::TcpTransport;
use integration_tests::{as_i32s, test_cluster};
use std::sync::Arc;
use vocl::Platform;

const INC_KERNEL: &str =
    "__kernel void inc(__global int* a) { size_t i = get_global_id(0); a[i] = a[i] + 1; }";

#[test]
fn kernel_round_trip_over_inproc_transport() {
    let (_cluster, client, _clock) = test_cluster(1, 2);
    let devices = client.devices();
    assert_eq!(devices.len(), 2);
    let context = client.create_context(&devices).unwrap();
    let queue = client.create_command_queue(&context, &devices[0]).unwrap();
    let buffer = client.create_buffer(&context, 64).unwrap();
    let program = client.create_program_with_source(&context, INC_KERNEL).unwrap();
    client.build_program(&program).unwrap();
    let kernel = client.create_kernel(&program, "inc").unwrap();
    client.set_kernel_arg_buffer(&kernel, 0, &buffer).unwrap();
    for _ in 0..3 {
        client.enqueue_nd_range_kernel(&queue, &kernel, NdRange::linear(16), &[]).unwrap();
    }
    client.finish(&queue).unwrap();
    let (data, _) = client.enqueue_read_buffer(&queue, &buffer, 0, 64, &[]).unwrap();
    assert!(as_i32s(&data).iter().all(|v| *v == 3));
}

/// The same protocol runs over real TCP sockets: daemon and client talk
/// through localhost.
#[test]
fn kernel_round_trip_over_tcp_transport() {
    let transport: Arc<dyn gcf::Transport> = Arc::new(TcpTransport::new());
    let daemon = dopencl::Daemon::start(
        "tcp-node",
        &Platform::test_platform(1),
        Arc::clone(&transport),
        "127.0.0.1:0",
        Arc::new(dopencl::OpenAccess),
    )
    .unwrap();
    let client = Client::new("tcp-client", transport, LinkModel::gigabit_ethernet(), SimClock::new());
    client.connect_server(daemon.address()).unwrap();
    let devices = client.devices();
    assert_eq!(devices.len(), 1);
    let context = client.create_context(&devices).unwrap();
    let queue = client.create_command_queue(&context, &devices[0]).unwrap();
    let buffer = client.create_buffer(&context, 4096).unwrap();
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    client.enqueue_write_buffer(&queue, &buffer, 0, &payload, &[]).unwrap().wait().unwrap();
    let program = client.create_program_with_source(&context, INC_KERNEL).unwrap();
    client.build_program(&program).unwrap();
    let kernel = client.create_kernel(&program, "inc").unwrap();
    client.set_kernel_arg_buffer(&kernel, 0, &buffer).unwrap();
    client
        .enqueue_nd_range_kernel(&queue, &kernel, NdRange::linear(1024), &[])
        .unwrap()
        .wait()
        .unwrap();
    let (data, _) = client.enqueue_read_buffer(&queue, &buffer, 0, 4096, &[]).unwrap();
    let expected_first = i32::from_le_bytes(payload[0..4].try_into().unwrap()) + 1;
    assert_eq!(as_i32s(&data)[0], expected_first);
}

#[test]
fn buffer_stays_consistent_across_three_servers() {
    let (_cluster, client, clock) = test_cluster(3, 1);
    let devices = client.devices();
    let context = client.create_context(&devices).unwrap();
    let queues: Vec<_> = devices
        .iter()
        .map(|d| client.create_command_queue(&context, d).unwrap())
        .collect();
    let buffer = client.create_buffer(&context, 16).unwrap();
    let program = client.create_program_with_source(&context, INC_KERNEL).unwrap();
    client.build_program(&program).unwrap();
    let kernel = client.create_kernel(&program, "inc").unwrap();
    client.set_kernel_arg_buffer(&kernel, 0, &buffer).unwrap();

    // Walk the kernel across all three servers twice; the MSI directory has
    // to migrate the buffer through the client each time.
    for round in 0..2 {
        for queue in &queues {
            let e = client.enqueue_nd_range_kernel(queue, &kernel, NdRange::linear(4), &[]).unwrap();
            e.wait().unwrap();
            let _ = round;
        }
    }
    let (data, _) = client.enqueue_read_buffer(&queues[0], &buffer, 0, 16, &[]).unwrap();
    assert_eq!(as_i32s(&data), vec![6, 6, 6, 6]);
    assert!(clock.breakdown().data_transfer > std::time::Duration::ZERO);
}

#[test]
fn events_synchronise_commands_across_servers() {
    let (_cluster, client, _clock) = test_cluster(2, 1);
    let devices = client.devices();
    let context = client.create_context(&devices).unwrap();
    let q0 = client.create_command_queue(&context, &devices[0]).unwrap();
    let q1 = client.create_command_queue(&context, &devices[1]).unwrap();
    let buffer = client.create_buffer(&context, 16).unwrap();
    let program = client.create_program_with_source(&context, INC_KERNEL).unwrap();
    client.build_program(&program).unwrap();
    let kernel = client.create_kernel(&program, "inc").unwrap();
    client.set_kernel_arg_buffer(&kernel, 0, &buffer).unwrap();

    // Launch on server 0, then launch on server 1 *waiting on* the first
    // event: the wait list crosses servers through the user-event protocol.
    let first = client.enqueue_nd_range_kernel(&q0, &kernel, NdRange::linear(4), &[]).unwrap();
    let second = client
        .enqueue_nd_range_kernel(&q1, &kernel, NdRange::linear(4), std::slice::from_ref(&first))
        .unwrap();
    second.wait().unwrap();
    assert!(first.is_terminal(), "the dependency must have completed first");
    let (data, _) = client.enqueue_read_buffer(&q1, &buffer, 0, 16, &[]).unwrap();
    assert_eq!(as_i32s(&data), vec![2, 2, 2, 2]);
}

#[test]
fn interpreted_and_builtin_kernels_agree_through_the_middleware() {
    workloads::register_all_built_in_kernels();
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = client.create_context(&devices).unwrap();
    let queue = client.create_command_queue(&context, &devices[0]).unwrap();
    let params = workloads::mandelbrot::MandelbrotParams {
        width: 48,
        height: 32,
        max_iter: 64,
        ..workloads::mandelbrot::MandelbrotParams::small()
    };

    let run = |use_builtin: bool| -> Vec<u8> {
        let buffer = client.create_buffer(&context, params.pixels() * 4).unwrap();
        let program = if use_builtin {
            client
                .create_program_with_built_in_kernels(&context, workloads::mandelbrot::BUILTIN_KERNEL)
                .unwrap()
        } else {
            client
                .create_program_with_source(&context, workloads::mandelbrot::KERNEL_SOURCE)
                .unwrap()
        };
        client.build_program(&program).unwrap();
        let kernel = client.create_kernel(&program, "mandelbrot_rows").unwrap();
        client.set_kernel_arg_buffer(&kernel, 0, &buffer).unwrap();
        client.set_kernel_arg_scalar(&kernel, 1, Value::uint(params.width as u64)).unwrap();
        client.set_kernel_arg_scalar(&kernel, 2, Value::uint(params.height as u64)).unwrap();
        client.set_kernel_arg_scalar(&kernel, 3, Value::double(params.x_min)).unwrap();
        client.set_kernel_arg_scalar(&kernel, 4, Value::double(params.y_min)).unwrap();
        client.set_kernel_arg_scalar(&kernel, 5, Value::double(params.dx())).unwrap();
        client.set_kernel_arg_scalar(&kernel, 6, Value::double(params.dy())).unwrap();
        client.set_kernel_arg_scalar(&kernel, 7, Value::uint(0)).unwrap();
        client.set_kernel_arg_scalar(&kernel, 8, Value::uint(params.max_iter as u64)).unwrap();
        client
            .enqueue_nd_range_kernel(&queue, &kernel, NdRange::two_d(params.width, params.height), &[])
            .unwrap()
            .wait()
            .unwrap();
        let (data, _) =
            client.enqueue_read_buffer(&queue, &buffer, 0, params.pixels() * 4, &[]).unwrap();
        data
    };

    let interpreted = run(false);
    let builtin = run(true);
    // f32 (interpreter) vs f64 (built-in) escape-time rounding may differ on
    // a handful of boundary pixels.
    let matching = interpreted
        .chunks_exact(4)
        .zip(builtin.chunks_exact(4))
        .filter(|(a, b)| a == b)
        .count();
    assert!(matching as f64 / params.pixels() as f64 > 0.97);
}

#[test]
fn disconnecting_a_server_removes_its_devices_but_others_keep_working() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("a", &Platform::test_platform(1)).unwrap();
    cluster.add_node("b", &Platform::test_platform(1)).unwrap();
    let client = cluster.client("app").unwrap();
    assert_eq!(client.devices().len(), 2);
    let servers = client.servers();
    client.disconnect_server(servers[0]).unwrap();
    let devices = client.devices();
    assert_eq!(devices.len(), 1);

    // The remaining server still executes work.
    let context = client.create_context(&devices).unwrap();
    let queue = client.create_command_queue(&context, &devices[0]).unwrap();
    let buffer = client.create_buffer(&context, 16).unwrap();
    client.enqueue_write_buffer(&queue, &buffer, 0, &[7u8; 16], &[]).unwrap().wait().unwrap();
    let (data, _) = client.enqueue_read_buffer(&queue, &buffer, 0, 16, &[]).unwrap();
    assert_eq!(data, vec![7u8; 16]);
}
