//! Tests of the handle-based object API surface itself: stub lifetimes
//! across `Client` drop, enqueue-builder defaults, and wait-list
//! propagation through `after(...)`.

use dopencl::{Arg, Context, DclError, DeviceType, Event, NdRange, Value};
use integration_tests::{as_i32s, test_cluster};

const INC_KERNEL: &str =
    "__kernel void inc(__global int* a) { size_t i = get_global_id(0); a[i] = a[i] + 1; }";

/// Stubs hold a weak reference to the client internals: once the last
/// `Client` clone is gone, every operation fails with `ClientDropped`
/// instead of panicking or hanging.
#[test]
fn stubs_fail_cleanly_after_client_drop() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(64).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();

    // A clone keeps the internals alive; dropping only the original is fine.
    let clone = client.clone();
    drop(client);
    queue.write_buffer(&buffer, &[0u8; 64]).blocking().submit().unwrap();
    drop(clone);

    // Now every handle operation must fail with ClientDropped.  The
    // completion-notification thread of the write above may still hold a
    // transient strong reference for an instant; give it a moment to drain
    // (once an upgrade fails it can never succeed again).
    let mut first = context.create_buffer(16);
    for _ in 0..200 {
        if first.is_err() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        first = context.create_buffer(16);
    }
    assert_eq!(first.unwrap_err(), DclError::ClientDropped);
    assert_eq!(context.create_command_queue(&devices[0]).unwrap_err(), DclError::ClientDropped);
    assert_eq!(
        context.create_program_with_source(INC_KERNEL).unwrap_err(),
        DclError::ClientDropped
    );
    assert_eq!(program.build().unwrap_err(), DclError::ClientDropped);
    assert_eq!(program.build_log().unwrap_err(), DclError::ClientDropped);
    assert_eq!(program.create_kernel("inc").unwrap_err(), DclError::ClientDropped);
    assert_eq!(kernel.set_arg(1, Value::int(1)).unwrap_err(), DclError::ClientDropped);
    assert_eq!(
        queue.write_buffer(&buffer, &[0u8; 8]).submit().unwrap_err(),
        DclError::ClientDropped
    );
    assert_eq!(queue.read_buffer(&buffer).submit().unwrap_err(), DclError::ClientDropped);
    assert_eq!(
        queue.launch(&kernel, NdRange::linear(4)).submit().unwrap_err(),
        DclError::ClientDropped
    );
    assert_eq!(queue.marker().submit().unwrap_err(), DclError::ClientDropped);
    assert_eq!(queue.finish().unwrap_err(), DclError::ClientDropped);
}

/// Builder defaults: offset 0, whole-buffer reads, empty wait lists,
/// non-blocking writes.
#[test]
fn builder_defaults_cover_the_common_case() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    // Default write: offset 0.  Write the full buffer and read it back with
    // the default (whole-buffer) read.
    let payload: Vec<u8> = (0u8..16).collect();
    let event = queue.write_buffer(&buffer, &payload).submit().unwrap();
    event.wait().unwrap();
    let (all, read_event) = queue.read_buffer(&buffer).submit().unwrap();
    assert_eq!(all, payload);
    // The data arrived, so the event resolves without further commands.
    read_event.wait().unwrap();

    // Explicit offset and length window into the same buffer.
    queue.write_buffer(&buffer, &[0xFF; 4]).at_offset(8).blocking().submit().unwrap();
    let (window, _) = queue.read_buffer(&buffer).at_offset(8).len(4).submit().unwrap();
    assert_eq!(window, vec![0xFF; 4]);
    // A default read after an offset write still returns the whole buffer.
    let (all, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert_eq!(all.len(), 16);
    assert_eq!(&all[..8], &payload[..8]);

    // Out-of-bounds accesses are rejected before anything crosses the wire.
    assert!(matches!(
        queue.write_buffer(&buffer, &payload).at_offset(8).submit().unwrap_err(),
        DclError::InvalidArgument(_)
    ));
    assert!(matches!(
        queue.read_buffer(&buffer).at_offset(12).len(8).submit().unwrap_err(),
        DclError::InvalidArgument(_)
    ));
}

/// `after(...)` must thread the wait list through to the daemons, including
/// across servers (user-event protocol), and accumulate across calls.
#[test]
fn after_propagates_wait_lists_across_servers() {
    let (_cluster, client, _clock) = test_cluster(2, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let q0 = context.create_command_queue(&devices[0]).unwrap();
    let q1 = context.create_command_queue(&devices[1]).unwrap();
    let buffer = context.create_buffer(16).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();

    let first = q0.launch(&kernel, NdRange::linear(4)).submit().unwrap();
    // The second launch waits on the first across servers; chaining two
    // after() calls must accumulate, not replace.
    let marker = q0.marker().submit().unwrap();
    let second = q1
        .launch(&kernel, NdRange::linear(4))
        .after(std::slice::from_ref(&first))
        .after(std::slice::from_ref(&marker))
        .submit()
        .unwrap();
    second.wait().unwrap();
    assert!(first.is_terminal(), "wait-list dependency must have completed");
    assert!(marker.is_terminal(), "second after() call must also be honoured");

    let (data, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(as_i32s(&data), vec![2, 2, 2, 2]);

    // Event::wait_all is the replacement for client.wait_for_events.
    Event::wait_all(&[first, second, marker]).unwrap();
}

/// The `Arg` conversions accepted by `Kernel::set_arg`.
#[test]
fn kernel_set_arg_accepts_scalars_buffers_and_local() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(64).unwrap();
    let program = context
        .create_program_with_source(
            "__kernel void fill(__global int* out, int v) { out[get_global_id(0)] = v; }",
        )
        .unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("fill").unwrap();

    kernel.set_arg(0, &buffer).unwrap();
    kernel.set_arg(1, Value::int(7)).unwrap();
    // Arg::local round-trips through the protocol even if this kernel never
    // reads it; ignore a daemon-side arity rejection.
    let _ = kernel.set_arg(2, Arg::local(256));

    queue.launch(&kernel, NdRange::linear(16)).submit().unwrap().wait().unwrap();
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert!(as_i32s(&data).iter().all(|v| *v == 7));
}

/// `DeviceType` replaces the stringly-typed device filter.
#[test]
fn device_type_enum_filters_and_parses() {
    let (_cluster, client, _clock) = test_cluster(1, 2);
    assert_eq!(client.devices_of(DeviceType::Cpu).len(), 2);
    assert!(client.devices_of(DeviceType::Gpu).is_empty());
    assert_eq!(client.devices()[0].kind(), DeviceType::Cpu);

    assert_eq!(DeviceType::parse("gpu"), DeviceType::Gpu);
    assert_eq!(DeviceType::parse("CPU"), DeviceType::Cpu);
    assert_eq!(DeviceType::parse("fpga-thing"), DeviceType::Custom);
    assert_eq!(DeviceType::Gpu.to_string(), "GPU");
}
