//! Integration tests of the configuration files (Listings 2 and 3) and the
//! device-manager flow, including abnormal client termination.

use devmgr::{
    DeviceManager, DeviceManagerServer, DeviceRequirement, ManagedDaemon, SchedulingStrategy,
};
use dopencl::{LinkModel, LocalCluster, SimClock};
use std::sync::Arc;
use vocl::Platform;

#[test]
fn server_config_file_connects_all_listed_servers() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver.example.com", &Platform::test_platform(1)).unwrap();
    cluster.add_node("128.129.1.1", &Platform::test_platform(2)).unwrap();
    // The generated file mirrors Listing 2 of the paper.
    let config = cluster.server_config();
    assert!(config.contains("gpuserver.example.com"));
    let client = cluster.detached_client("configured", SimClock::new());
    let servers = client.connect_from_config(&config).unwrap();
    assert_eq!(servers.len(), 2);
    assert_eq!(client.devices().len(), 3);
}

#[test]
fn malformed_config_files_are_rejected() {
    assert!(dopencl::config::parse_server_list("bad entry with spaces").is_err());
    assert!(devmgr::parse_device_request("<devices></devices>").is_err());
}

#[test]
fn four_clients_get_four_distinct_gpus_and_a_fifth_is_rejected() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
    let dm_server =
        DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr").unwrap();
    let platform = Platform::gpu_server();
    let managed = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpuserver",
        "gpuserver",
        platform.devices(),
    )
    .unwrap();
    cluster.add_node_with_policy("gpuserver", &platform, managed.policy()).unwrap();

    let gpu_req =
        vec![DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    let mut seen_devices = std::collections::HashSet::new();
    let mut assignments = Vec::new();
    // The clients must stay alive: dropping one closes its connection, the
    // daemon reports the abnormal disconnect, and the lease's GPU would
    // return to the free set before the fifth request below.
    let mut clients = Vec::new();
    for i in 0..4 {
        let client = cluster.detached_client(&format!("client-{i}"), SimClock::new());
        let assignment = devmgr::request_assignment(
            &transport,
            dm_server.address(),
            &format!("client-{i}"),
            &gpu_req,
        )
        .unwrap();
        client.set_auth_id(Some(assignment.auth_id.clone()));
        for server in &assignment.servers {
            client.connect_server(server).unwrap();
        }
        let devices = client.devices();
        assert_eq!(devices.len(), 1, "each lease exposes exactly one GPU");
        assert!(
            seen_devices.insert(devices[0].remote_id()),
            "device {} assigned twice",
            devices[0].remote_id()
        );
        assignments.push(assignment);
        clients.push(client);
    }
    // The server only has four GPUs: a fifth request must fail.
    let err = devmgr::request_assignment(&transport, dm_server.address(), "client-4", &gpu_req);
    assert!(err.is_err());

    // Releasing a lease frees its GPU for the next client.
    devmgr::release_assignment(&transport, &assignments[0]).unwrap();
    let again = devmgr::request_assignment(&transport, dm_server.address(), "client-5", &gpu_req);
    assert!(again.is_ok());
}

#[test]
fn abnormal_disconnect_returns_devices_to_the_free_set() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
    let dm_server =
        DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr").unwrap();
    let platform = Platform::gpu_server();
    let managed = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpuserver",
        "gpuserver",
        platform.devices(),
    )
    .unwrap();
    let policy = managed.policy();
    cluster.add_node_with_policy("gpuserver", &platform, Arc::clone(&policy)).unwrap();

    let gpu_req =
        vec![DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    let assignment =
        devmgr::request_assignment(&transport, dm_server.address(), "crashy", &gpu_req).unwrap();
    assert_eq!(dm.free_device_count(), 4);

    // The client never sends a release message (abnormal termination); the
    // daemon reports the invalidated authentication id instead
    // (Section IV-C).
    policy.client_disconnected(Some(&assignment.auth_id));
    assert_eq!(dm.free_device_count(), 5);
    assert_eq!(dm.lease_count(), 0);
}
