//! Flush semantics of the batched command pipeline.
//!
//! Commands accumulate client-side per queue and ship as one
//! `EnqueueBatch` request.  These tests pin down *when* the batch crosses
//! the wire (blocking ops, event waits, markers, explicit flush, queue
//! drop), that execution within a batch stays in order, and how an error
//! in the middle of a batch fails the remaining entries.

use dopencl::{Context, Event, NdRange};
use integration_tests::{as_i32s, test_cluster};
use std::time::Duration;

const INC_KERNEL: &str =
    "__kernel void inc(__global int* a) { size_t i = get_global_id(0); a[i] = a[i] + 1; }";

/// Poll until `event` reaches a terminal state without calling `wait()`
/// (which would itself flush the pipeline).
fn poll_terminal(event: &Event) -> bool {
    for _ in 0..500 {
        if event.is_terminal() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn commands_accumulate_until_event_wait() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    let before = client.traffic_stats();
    let mut last = None;
    for v in 1u8..=3 {
        last = Some(queue.write_buffer(&buffer, &[v; 16]).submit().unwrap());
    }
    assert_eq!(queue.pending_commands(), 3);
    // Nothing shipped yet: enqueuing is free of round trips.
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 0);

    last.unwrap().wait().unwrap();
    assert_eq!(queue.pending_commands(), 0);
    // The wait flushed all three commands as a single request.
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 1);
}

#[test]
fn blocking_read_flushes_the_batch_in_order() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    let before = client.traffic_stats();
    for v in 1u8..=3 {
        queue.write_buffer(&buffer, &[v; 16]).submit().unwrap();
    }
    // The blocking read joins the batch, ships it, and must observe the
    // *last* write: in-order execution within the batch.
    let (data, event) = queue.read_buffer(&buffer).submit().unwrap();
    assert!(event.is_terminal());
    assert_eq!(data, vec![3u8; 16]);
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 1);
}

#[test]
fn explicit_flush_ships_without_waiting() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    let before = client.traffic_stats();
    let event = queue.write_buffer(&buffer, &[7u8; 16]).submit().unwrap();
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 0);
    queue.flush().unwrap();
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 1);
    assert_eq!(queue.pending_commands(), 0);
    // Flush does not wait, but the daemon executes and notifies on its own.
    assert!(poll_terminal(&event), "flushed command never completed");
}

#[test]
fn marker_flushes_the_queue() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    let before = client.traffic_stats();
    queue.write_buffer(&buffer, &[1u8; 16]).submit().unwrap();
    queue.write_buffer(&buffer, &[2u8; 16]).submit().unwrap();
    let marker = queue.marker().submit().unwrap();
    // Both writes and the marker went out as one request.
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 1);
    marker.wait().unwrap();
    assert_eq!(queue.pending_commands(), 0);
}

#[test]
fn queue_drop_flushes_pending_commands() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    let before = client.traffic_stats();
    let event = queue.write_buffer(&buffer, &[9u8; 16]).submit().unwrap();
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 0);
    drop(queue);
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 1);
    assert!(poll_terminal(&event), "command dropped with the queue");
}

#[test]
fn async_read_returns_event_before_data() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    queue.write_buffer(&buffer, &[5u8; 16]).submit().unwrap();
    let before = client.traffic_stats();
    let pending = queue.read_buffer(&buffer).submit_async().unwrap();
    // Still batched: submit_async does not flush.
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 0);
    assert!(!pending.event().is_terminal());
    let (data, event) = pending.wait().unwrap();
    assert_eq!(data, vec![5u8; 16]);
    assert!(event.is_terminal());
}

#[test]
fn kernel_batch_executes_in_order() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("inc").unwrap();
    kernel.set_arg(0, &buffer).unwrap();

    queue.write_buffer(&buffer, &[0u8; 16]).submit().unwrap();
    for _ in 0..4 {
        queue.launch(&kernel, NdRange::linear(4)).submit().unwrap();
    }
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert_eq!(as_i32s(&data), vec![4, 4, 4, 4]);
}

#[test]
fn error_in_batch_entry_fails_the_rest() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();
    let program = context.create_program_with_source(INC_KERNEL).unwrap();
    program.build().unwrap();
    // A kernel whose buffer argument is never set: enqueuing may succeed but
    // execution must fail.
    let kernel = program.create_kernel("inc").unwrap();

    let ok = queue.write_buffer(&buffer, &[1u8; 16]).submit().unwrap();
    let bad = queue.launch(&kernel, NdRange::linear(4)).submit().unwrap();
    let after = queue.marker().submit().unwrap();

    // Entry 1 (the write) completed; entry 2 failed; entry 3 is chained on
    // entry 2 within the batch, so its failure cascades.
    ok.wait().unwrap();
    assert!(bad.wait().is_err(), "kernel without arguments must fail");
    assert!(after.wait().is_err(), "marker behind the failed entry must fail too");
}

#[test]
fn cross_queue_wait_flushes_the_dependency_first() {
    let (_cluster, client, _clock) = test_cluster(1, 2);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let q0 = context.create_command_queue(&devices[0]).unwrap();
    let q1 = context.create_command_queue(&devices[1]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    let first = queue_write(&q0, &buffer, 1);
    // q1's write waits on q0's still-pending write: pushing it must flush
    // q0 so the daemon can resolve the wait list.
    let second = q1.write_buffer(&buffer, &[2u8; 16]).after(&[first]).submit().unwrap();
    second.wait().unwrap();
    let (data, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(data, vec![2u8; 16]);
}

fn queue_write(queue: &dopencl::CommandQueue, buffer: &dopencl::Buffer, value: u8) -> Event {
    queue.write_buffer(buffer, &[value; 16]).submit().unwrap()
}

#[test]
fn disabling_batching_restores_per_command_round_trips() {
    let (_cluster, client, _clock) = test_cluster(1, 1);
    client.set_batching(false);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(16).unwrap();

    let before = client.traffic_stats();
    for v in 1u8..=3 {
        queue.write_buffer(&buffer, &[v; 16]).submit().unwrap();
    }
    // Every command shipped immediately as a batch of one.
    assert_eq!(client.traffic_stats().delta(&before).requests_sent, 3);
    assert_eq!(queue.pending_commands(), 0);
}
