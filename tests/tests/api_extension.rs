//! Integration tests of the WWU API extension (Listing 1) and the dOpenCL
//! platform semantics (Section III-C / III-E).

use dopencl::ext::{cl_connect_server_wwu, cl_disconnect_server_wwu, cl_get_server_info_wwu};
use dopencl::{DeviceType, LinkModel, LocalCluster, SimClock};
use vocl::Platform;

#[test]
fn devices_become_available_and_unavailable_at_runtime() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let d0 = cluster.add_node("gpuserver", &Platform::gpu_server()).unwrap();
    let d1 = cluster.add_node("cpunode", &Platform::cluster_node()).unwrap();

    let client = cluster.detached_client("dynamic", SimClock::new());
    assert!(client.devices().is_empty(), "no servers connected yet");

    // clConnectServerWWU
    let s0 = cl_connect_server_wwu(&client, d0.address()).unwrap();
    assert_eq!(client.devices().len(), 5, "the GPU server adds 4 GPUs + 1 CPU");
    let s1 = cl_connect_server_wwu(&client, d1.address()).unwrap();
    assert_eq!(client.devices().len(), 6);

    // The uniform dOpenCL platform merges devices from all servers.
    assert_eq!(client.platform_name(), "dOpenCL");
    assert_eq!(client.devices_of(DeviceType::Gpu).len(), 4);
    assert_eq!(client.devices_of(DeviceType::Cpu).len(), 2);

    // clGetServerInfoWWU
    let info0 = cl_get_server_info_wwu(&client, s0).unwrap();
    assert_eq!(info0.name, "gpuserver");
    assert_eq!(info0.device_count, 5);
    assert!(!info0.managed);

    // clDisconnectServerWWU: the server's devices become unavailable.
    cl_disconnect_server_wwu(&client, s0).unwrap();
    assert_eq!(client.devices().len(), 1);
    assert!(cl_get_server_info_wwu(&client, s0).is_err());
    assert!(cl_get_server_info_wwu(&client, s1).is_ok());

    // Connecting to an address with no daemon fails cleanly.
    assert!(cl_connect_server_wwu(&client, "no-such-server").is_err());
}

#[test]
fn connecting_the_same_server_twice_exposes_its_devices_twice() {
    // The paper's connection mechanism treats every configured entry as a
    // separate server connection; connecting twice is legal and simply
    // yields two independent sessions.
    let mut cluster = LocalCluster::new(LinkModel::ideal());
    let daemon = cluster.add_node("node", &Platform::test_platform(1)).unwrap();
    let client = cluster.detached_client("twice", SimClock::new());
    cl_connect_server_wwu(&client, daemon.address()).unwrap();
    cl_connect_server_wwu(&client, daemon.address()).unwrap();
    assert_eq!(client.devices().len(), 2);
    assert_eq!(client.servers().len(), 2);
}
