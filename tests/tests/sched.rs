//! Property tests of the cluster scheduler: the weighted fair division
//! never starves a tenant below its floor, and no sequence of fractional
//! assignments and releases — under any policy — ever oversubscribes a
//! physical device beyond 100% of its compute millis.

use devmgr::sched::fair_shares;
use devmgr::{DevMgrError, DeviceManager, DmDevice, ShareRequest, Strategy, FULL_COMPUTE_MILLIS};
use proptest::prelude::*;
use std::collections::HashMap;

fn gpu(id: u64) -> DmDevice {
    DmDevice {
        remote_id: id,
        name: format!("GPU {id}"),
        vendor: "ACME".into(),
        device_type: "GPU".into(),
        compute_units: 32,
        global_mem_bytes: 4 << 30,
    }
}

fn gpu_share(desired: u32, floor: u32) -> ShareRequest {
    ShareRequest {
        count: 1,
        attributes: vec![("TYPE".into(), "GPU".into())],
        compute_millis: desired,
        min_millis: floor,
        mem_bytes: 0,
    }
}

proptest! {
    /// `fair_shares` is safe for arbitrary demand sets: every tenant
    /// receives at least its (desired-capped) floor — no starvation — at
    /// most its desired share, and the division never hands out more than
    /// the capacity (unless the floors alone oversubscribe it, which
    /// admission control prevents upstream).
    #[test]
    fn fair_shares_honour_floors_caps_and_capacity(
        capacity in 0u32..=4_000,
        demands in proptest::collection::vec((0u32..=8, 0u32..=500, 0u32..=1_500), 0..12),
    ) {
        let grants = fair_shares(capacity, &demands);
        prop_assert_eq!(grants.len(), demands.len());
        for (grant, &(_, floor, desired)) in grants.iter().zip(&demands) {
            prop_assert!(*grant <= desired, "grant {grant} above desired {desired}");
            prop_assert!(
                *grant >= floor.min(desired),
                "grant {grant} starves the floor {floor} (desired {desired})"
            );
        }
        let floors: u32 = demands.iter().map(|&(_, floor, desired)| floor.min(desired)).sum();
        let total: u32 = grants.iter().sum();
        prop_assert!(
            total <= capacity.max(floors),
            "division hands out {total} of {capacity} (floors {floors})"
        );
    }

    /// Equal-weight unsatisfied tenants end up with equal shares (±1 crumb
    /// from integer rounding): the no-starvation half of weighted fairness.
    #[test]
    fn fair_shares_equalize_equal_weights(
        capacity in 1u32..=4_000,
        tenants in 1usize..=16,
    ) {
        let demands: Vec<(u32, u32, u32)> = vec![(1, 0, u32::MAX); tenants];
        let grants = fair_shares(capacity, &demands);
        let min = *grants.iter().min().unwrap();
        let max = *grants.iter().max().unwrap();
        prop_assert!(max - min <= 1, "equal weights diverged: min {min}, max {max}");
    }

    /// Drive a random sequence of fractional share requests and releases at
    /// a live 2-node manager under every policy.  After every operation, no
    /// device's fractional shares may sum past 100% and no admitted lease
    /// may ever sit below its floor (Fair/Priority shrink grants during
    /// rebalancing and preemption, but never through the floor).
    #[test]
    fn no_policy_oversubscribes_or_starves(
        strategy_index in 0usize..4,
        ops in proptest::collection::vec(
            (1u32..=1_000, 1u32..=150, 1u32..=4, any::<bool>()),
            1..32,
        ),
    ) {
        let strategy = [Strategy::FirstFit, Strategy::RoundRobin, Strategy::Fair, Strategy::Priority]
            [strategy_index];
        let dm = DeviceManager::new(strategy);
        dm.register_server("srv-a", "srv-a", (0..4).map(gpu).collect(), None);
        dm.register_server("srv-b", "srv-b", (4..8).map(gpu).collect(), None);

        let mut held: Vec<String> = Vec::new();
        for (i, &(desired, floor, weight, release_one)) in ops.iter().enumerate() {
            if release_one && !held.is_empty() {
                // Preemption under Priority may already have released the
                // lease; a stale id is fine.
                let _ = dm.release(&held.remove(i % held.len()));
            }
            let floor = floor.min(desired);
            match dm.assign_shares(&format!("client-{i}"), &[gpu_share(desired, floor)], weight) {
                Ok((lease, _)) => held.push(lease.auth_id),
                Err(DevMgrError::Saturated(_)) => {}
                Err(e) => prop_assert!(false, "unexpected assignment error: {e}"),
            }

            let mut per_device: HashMap<(usize, u64), u32> = HashMap::new();
            for lease in dm.leases() {
                for vd in &lease.virtual_devices {
                    prop_assert!(
                        vd.compute_millis >= vd.min_millis && vd.compute_millis > 0,
                        "lease {} starved: {} millis under a floor of {}",
                        lease.auth_id,
                        vd.compute_millis,
                        vd.min_millis
                    );
                    *per_device.entry((vd.server, vd.device)).or_default() += vd.compute_millis;
                }
            }
            for ((server, device), total) in per_device {
                prop_assert!(
                    total <= FULL_COMPUTE_MILLIS,
                    "device {device} on server {server} oversubscribed: {total} millis"
                );
            }
        }
    }
}
