//! Executor selection via environment variables.  These tests mutate
//! process-global state (`DCL_INTERP`, `DCL_VM_THREADS`, `DCL_COHERENCE`),
//! so they live in their own integration-test binary and serialise on a
//! local mutex instead of sharing a process with the differential suite.

use oclc::{BufferBinding, KernelArgValue, NdRange, Program, Value};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

const BARRIER_REDUCE: &str = r#"
    __kernel void reduce(__global const int* in,
                         __global int* out,
                         __local int* scratch) {
        size_t lid = get_local_id(0);
        size_t n = get_local_size(0);
        scratch[lid] = in[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (size_t stride = n / 2; stride > 0; stride /= 2) {
            if (lid < stride) {
                scratch[lid] += scratch[lid + stride];
            }
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        if (lid == 0) {
            out[get_group_id(0)] = scratch[0];
        }
    }
"#;

fn run_reduce() -> Result<Vec<i32>, oclc::CompileError> {
    let program = Program::build(BARRIER_REDUCE).expect("build");
    let k = program.kernel("reduce").expect("kernel");
    let input: Vec<u8> = (1..=8i32).flat_map(|v| v.to_le_bytes()).collect();
    let mut bufs = [input, vec![0u8; 4]];
    {
        let mut bindings: Vec<BufferBinding<'_>> =
            bufs.iter_mut().map(|b| BufferBinding::new(b)).collect();
        k.execute(
            &NdRange::linear(8).with_local([8, 1, 1]),
            &[KernelArgValue::Buffer(0), KernelArgValue::Buffer(1), KernelArgValue::Local(32)],
            &mut bindings,
        )?;
    }
    Ok(bufs[1].chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect())
}

#[test]
fn default_mode_is_the_vm_and_runs_barrier_kernels() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("DCL_INTERP");
    assert_eq!(run_reduce().expect("vm executes barrier reduction"), vec![36]);
}

#[test]
fn dcl_interp_tree_selects_the_tree_walker() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("DCL_INTERP", "tree");
    let err = run_reduce().expect_err("tree walker must reject barrier + __local writes");
    std::env::remove_var("DCL_INTERP");
    assert!(err.message.contains("tree-walking"), "got: {}", err.message);
}

#[test]
fn dcl_vm_threads_controls_the_worker_count_without_changing_results() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("DCL_INTERP");
    std::env::set_var("DCL_VM_THREADS", "4");
    let result = run_reduce();
    std::env::remove_var("DCL_VM_THREADS");
    assert_eq!(result.expect("vm executes with explicit thread count"), vec![36]);
}

#[test]
fn scalar_kernels_produce_identical_bytes_in_both_modes() {
    let _guard = ENV_LOCK.lock().unwrap();
    let src = r#"
        __kernel void fill(__global int* out, int v) {
            out[get_global_id(0)] = v * (int)get_global_id(0);
        }
    "#;
    let program = Program::build(src).expect("build");
    let k = program.kernel("fill").expect("kernel");
    let run = |mode: Option<&str>| -> Vec<u8> {
        match mode {
            Some(m) => std::env::set_var("DCL_INTERP", m),
            None => std::env::remove_var("DCL_INTERP"),
        }
        let mut buf = vec![0u8; 32];
        {
            let mut bindings = vec![BufferBinding::new(&mut buf)];
            k.execute(
                &NdRange::linear(8),
                &[KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::int(3))],
                &mut bindings,
            )
            .expect("execute");
        }
        buf
    };
    let vm = run(None);
    let tree = run(Some("tree"));
    std::env::remove_var("DCL_INTERP");
    assert_eq!(vm, tree);
}

#[test]
fn dcl_coherence_env_selects_the_directory_mode() {
    use dopencl::coherence::CoherenceMode;
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("DCL_COHERENCE");
    assert_eq!(CoherenceMode::from_env(), CoherenceMode::Range, "range is the default");
    std::env::set_var("DCL_COHERENCE", "whole");
    assert_eq!(CoherenceMode::from_env(), CoherenceMode::Whole);
    std::env::set_var("DCL_COHERENCE", "WHOLE");
    assert_eq!(CoherenceMode::from_env(), CoherenceMode::Whole, "case-insensitive");
    std::env::set_var("DCL_COHERENCE", "range");
    assert_eq!(CoherenceMode::from_env(), CoherenceMode::Range);
    std::env::set_var("DCL_COHERENCE", "gibberish");
    assert_eq!(CoherenceMode::from_env(), CoherenceMode::Range, "unknown values fall back");
    std::env::remove_var("DCL_COHERENCE");
}
