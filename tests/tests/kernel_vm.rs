//! Differential tests for the kernel compile-and-execute pipeline: every
//! kernel runs through the bytecode VM (serial and work-group-parallel) and
//! the legacy tree-walking interpreter, and the resulting buffers must be
//! bit-identical.  The tree walker is the oracle; the VM is the product.
//!
//! Kernels that combine `barrier()` with `__local` writes cannot run on the
//! oracle (it rejects them) — those are checked against host-computed
//! expectations instead, which is exactly the bit-correctness guarantee the
//! phase-based barrier scheduler has to provide.

use oclc::{BufferBinding, KernelArgValue, NdRange, Program, Value, WorkItemCounters};

fn run_buffers(
    program: &Program,
    kernel: &str,
    range: &NdRange,
    args: &[KernelArgValue],
    mut buffers: Vec<Vec<u8>>,
    mode: &str,
) -> (Vec<Vec<u8>>, WorkItemCounters) {
    let k = program.kernel(kernel).expect("kernel");
    let counters = {
        let mut bindings: Vec<BufferBinding<'_>> =
            buffers.iter_mut().map(|b| BufferBinding::new(b)).collect();
        match mode {
            "tree" => k.execute_tree(range, args, &mut bindings),
            "vm1" => k.execute_vm_with_threads(range, args, &mut bindings, 1),
            "vm4" => k.execute_vm_with_threads(range, args, &mut bindings, 4),
            _ => unreachable!(),
        }
        .unwrap_or_else(|e| panic!("{mode} execution failed: {e:?}"))
    };
    (buffers, counters)
}

/// Run `kernel` through the tree walker, the serial VM and the 4-thread VM,
/// asserting all three produce bit-identical buffers and that the VM agrees
/// with the oracle on the launch-shaped counters (`work_items`, `loads`,
/// `stores` — `ops`/`steps` legitimately differ between executors).
fn differential(
    src: &str,
    kernel: &str,
    range: NdRange,
    args: Vec<KernelArgValue>,
    buffers: Vec<Vec<u8>>,
) -> Vec<Vec<u8>> {
    let program = Program::build(src).expect("build");
    let (tree, tc) = run_buffers(&program, kernel, &range, &args, buffers.clone(), "tree");
    let (vm1, vc) = run_buffers(&program, kernel, &range, &args, buffers.clone(), "vm1");
    let (vm4, pc) = run_buffers(&program, kernel, &range, &args, buffers, "vm4");
    assert_eq!(tree, vm1, "serial VM diverged from the tree-walker oracle");
    assert_eq!(vm1, vm4, "parallel VM diverged from the serial VM");
    assert_eq!(tc.work_items, vc.work_items, "work_items disagree (tree vs vm)");
    assert_eq!(tc.loads, vc.loads, "loads disagree (tree vs vm)");
    assert_eq!(tc.stores, vc.stores, "stores disagree (tree vs vm)");
    assert_eq!(vc.work_items, pc.work_items, "work_items disagree (serial vs parallel vm)");
    vm1
}

fn u32s(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
}

fn i32s(bytes: &[u8]) -> Vec<i32> {
    bytes.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect()
}

fn f32s(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
}

#[test]
fn scale_kernel_matches_oracle() {
    let src = r#"
        __kernel void scale(__global float* data, float factor, uint n) {
            size_t i = get_global_id(0);
            if (i >= n) return;
            data[i] = data[i] * factor;
        }
    "#;
    let n = 16usize;
    let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let out = differential(
        src,
        "scale",
        NdRange::linear(n),
        vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Scalar(Value::float(2.0)),
            KernelArgValue::Scalar(Value::uint(n as u64)),
        ],
        vec![data],
    );
    for (i, v) in f32s(&out[0]).iter().enumerate() {
        assert_eq!(*v, (i as f32) * 2.0);
    }
}

#[test]
fn two_dimensional_ids_match_oracle() {
    let src = r#"
        __kernel void index2d(__global uint* out, uint width) {
            size_t x = get_global_id(0);
            size_t y = get_global_id(1);
            out[y * width + x] = (uint)(y * 100 + x);
        }
    "#;
    let (w, h) = (8usize, 4usize);
    let out = differential(
        src,
        "index2d",
        NdRange::two_d(w, h),
        vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::uint(w as u64))],
        vec![vec![0u8; w * h * 4]],
    );
    let out = u32s(&out[0]);
    assert_eq!(out[3 * w + 7], 307);
}

#[test]
fn helper_functions_and_loops_match_oracle() {
    let src = r#"
        float accumulate(float base, uint count) {
            float total = base;
            for (uint i = 0; i < count; i++) {
                total += 1.0f;
            }
            return total;
        }
        __kernel void k(__global float* out, uint count) {
            size_t gid = get_global_id(0);
            out[gid] = accumulate((float)gid, count);
        }
    "#;
    let out = differential(
        src,
        "k",
        NdRange::linear(4),
        vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::uint(10))],
        vec![vec![0u8; 16]],
    );
    assert_eq!(f32s(&out[0]), vec![10.0, 11.0, 12.0, 13.0]);
}

#[test]
fn while_loops_and_float_math_match_oracle() {
    let src = r#"
        __kernel void iterate(__global uint* out, float cr, float ci, uint max_iter) {
            size_t gid = get_global_id(0);
            float zr = 0.0f;
            float zi = 0.0f;
            uint iter = 0;
            while (zr * zr + zi * zi <= 4.0f && iter < max_iter) {
                float t = zr * zr - zi * zi + cr;
                zi = 2.0f * zr * zi + ci;
                zr = t;
                iter++;
            }
            out[gid] = iter;
        }
    "#;
    differential(
        src,
        "iterate",
        NdRange::linear(8),
        vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Scalar(Value::float(-0.75)),
            KernelArgValue::Scalar(Value::float(0.1)),
            KernelArgValue::Scalar(Value::uint(200)),
        ],
        vec![vec![0u8; 32]],
    );
}

#[test]
fn vectors_and_swizzles_match_oracle() {
    let src = r#"
        __kernel void v(__global float* out) {
            float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float4 b = a * 2.0f;
            float2 hi = b.zw;
            out[0] = dot(a, b);
            out[1] = hi.x + hi.y;
            out[2] = length((float2)(3.0f, 4.0f));
            b.x = 10.0f;
            out[3] = b.x;
        }
    "#;
    let out = differential(
        src,
        "v",
        NdRange::linear(1),
        vec![KernelArgValue::Buffer(0)],
        vec![vec![0u8; 16]],
    );
    assert_eq!(f32s(&out[0]), vec![60.0, 14.0, 5.0, 10.0]);
}

#[test]
fn control_flow_and_ternaries_match_oracle() {
    let src = r#"
        __kernel void f(__global int* out, int n) {
            int total = 0;
            for (int i = 0; i < 1000; i++) {
                if (i >= n) break;
                if (i % 2 == 1) continue;
                total += i;
            }
            out[0] = total > 10 ? total : -total;
            int j = 0;
            do { j++; } while (j < n);
            out[1] = j;
        }
    "#;
    let out = differential(
        src,
        "f",
        NdRange::linear(1),
        vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::int(10))],
        vec![vec![0u8; 8]],
    );
    assert_eq!(i32s(&out[0]), vec![20, 10]);
}

#[test]
fn mixed_signedness_comparisons_match_oracle() {
    let src = r#"
        __kernel void f(__global int* out, uint n) {
            int i = -1;
            out[0] = i < n ? 1 : 0;
            out[1] = (int)(i++);
            out[2] = ++i;
        }
    "#;
    let out = differential(
        src,
        "f",
        NdRange::linear(1),
        vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::uint(4))],
        vec![vec![0u8; 12]],
    );
    assert_eq!(i32s(&out[0]), vec![1, -1, 1]);
}

#[test]
fn global_atomics_match_oracle() {
    let src = r#"
        __kernel void count(__global int* counters) {
            atomic_add(counters, 1);
            atomic_max(counters + 1, (int)get_global_id(0));
            atomic_inc(counters + 2);
        }
    "#;
    let out = differential(
        src,
        "count",
        NdRange::linear(100),
        vec![KernelArgValue::Buffer(0)],
        vec![vec![0u8; 12]],
    );
    assert_eq!(i32s(&out[0]), vec![100, 99, 100]);
}

#[test]
fn barrier_free_local_scratch_matches_oracle() {
    let src = r#"
        __kernel void scratchpad(__global int* out, __local int* scratch) {
            size_t gid = get_global_id(0);
            scratch[gid] = (int)(gid * 2);
            out[gid] = scratch[gid] + 1;
        }
    "#;
    let out = differential(
        src,
        "scratchpad",
        NdRange::linear(4),
        vec![KernelArgValue::Buffer(0), KernelArgValue::Local(64)],
        vec![vec![0u8; 16]],
    );
    assert_eq!(i32s(&out[0]), vec![1, 3, 5, 7]);
}

#[test]
fn mandelbrot_workload_kernel_matches_oracle() {
    let params = workloads::mandelbrot::MandelbrotParams {
        width: 32,
        height: 24,
        max_iter: 64,
        ..workloads::mandelbrot::MandelbrotParams::small()
    };
    let args = vec![
        KernelArgValue::Buffer(0),
        KernelArgValue::Scalar(Value::uint(params.width as u64)),
        KernelArgValue::Scalar(Value::uint(params.height as u64)),
        KernelArgValue::Scalar(Value::float(params.x_min as f32)),
        KernelArgValue::Scalar(Value::float(params.y_min as f32)),
        KernelArgValue::Scalar(Value::float(params.dx() as f32)),
        KernelArgValue::Scalar(Value::float(params.dy() as f32)),
        KernelArgValue::Scalar(Value::uint(0)),
        KernelArgValue::Scalar(Value::uint(params.max_iter as u64)),
    ];
    let out = differential(
        workloads::mandelbrot::KERNEL_SOURCE,
        "mandelbrot_rows",
        NdRange::two_d(params.width, params.height),
        args,
        vec![vec![0u8; params.pixels() * 4]],
    );
    // Sanity: the interior of the set must hit max_iter somewhere.
    assert!(u32s(&out[0]).contains(&params.max_iter));
}

#[test]
fn osem_workload_kernel_matches_oracle() {
    let params =
        workloads::osem::OsemParams { ray_steps: 8, ..workloads::osem::OsemParams::small() };
    let events = workloads::osem::generate_events(&params, 7);
    let subset = params.events_per_subset().min(64);
    let image = vec![1.0f32; params.num_voxels];
    let event_bytes: Vec<u8> = events[..subset * workloads::osem::FLOATS_PER_EVENT]
        .iter()
        .flat_map(|f| f.to_le_bytes())
        .collect();
    let image_bytes: Vec<u8> = image.iter().flat_map(|f| f.to_le_bytes()).collect();
    let args = vec![
        KernelArgValue::Buffer(0),
        KernelArgValue::Buffer(1),
        KernelArgValue::Buffer(2),
        KernelArgValue::Scalar(Value::uint(subset as u64)),
        KernelArgValue::Scalar(Value::uint(params.ray_steps as u64)),
        KernelArgValue::Scalar(Value::uint(params.num_voxels as u64)),
    ];
    // The OSEM kernel scatters unsynchronised adds into `correction`, so the
    // parallel comparison only holds at one thread; the oracle comparison is
    // the point here.
    let program = Program::build(workloads::osem::KERNEL_SOURCE).expect("build");
    let range = NdRange::linear(subset);
    let buffers = vec![event_bytes, image_bytes, vec![0u8; params.num_voxels * 4]];
    let (tree, _) = run_buffers(&program, "osem_subset", &range, &args, buffers.clone(), "tree");
    let (vm, _) = run_buffers(&program, "osem_subset", &range, &args, buffers, "vm1");
    assert_eq!(tree, vm, "OSEM correction image diverged between VM and oracle");
    assert!(f32s(&vm[2]).iter().any(|&v| v > 0.0));
}

/// The acceptance test for the barrier scheduler: a classic two-stage
/// `__local` tree reduction over many work-groups, executed by the parallel
/// VM, must reproduce the host-computed partial sums bit-for-bit (integer
/// arithmetic, so there is no tolerance to hide behind).
#[test]
fn multi_group_local_reduction_is_bit_correct_under_parallel_vm() {
    let src = r#"
        __kernel void reduce(__global const int* in,
                             __global int* partial,
                             __local int* scratch) {
            size_t lid = get_local_id(0);
            size_t n = get_local_size(0);
            scratch[lid] = in[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            for (size_t stride = n / 2; stride > 0; stride /= 2) {
                if (lid < stride) {
                    scratch[lid] += scratch[lid + stride];
                }
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            if (lid == 0) {
                partial[get_group_id(0)] = scratch[0];
            }
        }
    "#;
    let groups = 16usize;
    let group_size = 64usize;
    let n = groups * group_size;
    let input: Vec<i32> = (0..n as i32).map(|i| i * 3 - 1000).collect();
    let input_bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    let expected: Vec<i32> = input.chunks_exact(group_size).map(|c| c.iter().sum()).collect();

    let program = Program::build(src).expect("build");
    let k = program.kernel("reduce").expect("kernel");
    let range = NdRange::linear(n).with_local([group_size, 1, 1]);
    let args = [
        KernelArgValue::Buffer(0),
        KernelArgValue::Buffer(1),
        KernelArgValue::Local(group_size * 4),
    ];

    for threads in [1usize, 4] {
        let mut bufs = [input_bytes.clone(), vec![0u8; groups * 4]];
        let counters = {
            let mut bindings: Vec<BufferBinding<'_>> =
                bufs.iter_mut().map(|b| BufferBinding::new(b)).collect();
            k.execute_vm_with_threads(&range, &args, &mut bindings, threads).expect("reduce")
        };
        assert_eq!(counters.work_items, n as u64);
        assert_eq!(i32s(&bufs[1]), expected, "wrong partial sums at {threads} thread(s)");
    }

    // The oracle refuses this kernel rather than miscomputing it.
    let mut bufs = [input_bytes, vec![0u8; groups * 4]];
    let mut bindings: Vec<BufferBinding<'_>> =
        bufs.iter_mut().map(|b| BufferBinding::new(b)).collect();
    let err = k.execute_tree(&range, &args, &mut bindings).unwrap_err();
    assert!(err.message.contains("barrier"));
}

#[test]
fn divergent_barriers_are_reported_not_deadlocked() {
    let src = r#"
        __kernel void diverge(__global int* out, __local int* scratch) {
            size_t lid = get_local_id(0);
            scratch[lid] = (int)lid;
            if (lid == 0) {
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            out[lid] = scratch[lid];
        }
    "#;
    let program = Program::build(src).expect("build");
    let k = program.kernel("diverge").expect("kernel");
    let mut buf = vec![0u8; 16];
    let mut bindings = vec![BufferBinding::new(&mut buf)];
    let err = k
        .execute_vm_with_threads(
            &NdRange::linear(4),
            &[KernelArgValue::Buffer(0), KernelArgValue::Local(64)],
            &mut bindings,
            1,
        )
        .unwrap_err();
    assert!(err.message.contains("barrier divergence"), "got: {}", err.message);
}

#[test]
fn runtime_error_messages_agree_between_executors() {
    let src = r#"
        __kernel void oob(__global int* out) {
            out[1000] = 1;
        }
    "#;
    let program = Program::build(src).expect("build");
    let k = program.kernel("oob").expect("kernel");
    let args = [KernelArgValue::Buffer(0)];
    let mut b1 = vec![0u8; 8];
    let mut bind1 = vec![BufferBinding::new(&mut b1)];
    let tree_err = k.execute_tree(&NdRange::linear(1), &args, &mut bind1).unwrap_err();
    let mut b2 = vec![0u8; 8];
    let mut bind2 = vec![BufferBinding::new(&mut b2)];
    let vm_err = k.execute_vm_with_threads(&NdRange::linear(1), &args, &mut bind2, 1).unwrap_err();
    assert_eq!(tree_err.message, vm_err.message);
    assert!(vm_err.message.contains("out-of-bounds"));
}
