//! Range-granular buffer coherence: differential + property suite.
//!
//! The first half drives a *simulated* driver — a [`Sim`] holds a
//! `BufferDirectory` plus per-server byte storage and executes delta plans
//! exactly the way the client driver does — through random interleavings of
//! host writes, device writes (with and without declared access slices),
//! host reads and validations.  Every sequence runs against three models at
//! once: a range-mode directory, a whole-buffer-mode directory (the
//! `DCL_COHERENCE=whole` oracle) and a perfectly coherent reference buffer.
//! Observable reads must be byte-identical across all three and the
//! directory invariants must hold after every step.
//!
//! The second half proves the same machinery through the real client /
//! daemon wire path: sparse updates move only the stale ranges (and at
//! least 5x less traffic than the whole-buffer oracle), a buffer
//! partitioned across two daemons with `writes_slice` hints assembles
//! bit-correct, and an unpinned mixed workload stays bit-correct in
//! whichever mode `DCL_COHERENCE` selected for the session (CI runs this
//! binary in both).

use dopencl::coherence::{BufferDirectory, ByteRange, CoherenceMode};
use dopencl::{Context, LinkModel, LocalCluster, NdRange, SimClock, Value};
use proptest::prelude::*;
use vocl::Platform;

// ---------------------------------------------------------------------------
// Simulated driver
// ---------------------------------------------------------------------------

/// A directory plus the byte storage it is supposed to keep coherent: one
/// `Vec<u8>` per server (the remote memory objects).  Transfers follow the
/// client driver's `ensure_valid_range_on` to the letter — fetch the spans
/// the plan names from their source's storage, merge the `apply` sub-ranges
/// into the client copy, then upload exactly the planned ranges.
struct Sim {
    dir: BufferDirectory,
    storage: Vec<Vec<u8>>,
    size: usize,
    /// Total bytes moved by coherence transfers (fetches + uploads).
    moved: u64,
}

impl Sim {
    fn new(mode: CoherenceMode, servers: usize, size: usize) -> Sim {
        Sim {
            dir: BufferDirectory::new_with_mode(0..servers, size, mode),
            storage: vec![vec![0u8; size]; servers],
            size,
            moved: 0,
        }
    }

    /// Execute the delta plan for `server`, mirroring the client driver.
    fn ensure_valid(&mut self, server: usize, range: Option<ByteRange>) {
        let plan = match range {
            Some(r) => self.dir.plan_delta_range(server, r),
            None => self.dir.plan_delta(server),
        };
        for fetch in &plan.fetches {
            let data = self.storage[fetch.source][fetch.span.start..fetch.span.end].to_vec();
            self.moved += data.len() as u64;
            self.dir.record_client_fetch_ranges(fetch.source, fetch.span, &fetch.apply, &data);
        }
        for upload in &plan.uploads {
            let data = self.dir.client_data_range(*upload);
            self.moved += data.len() as u64;
            self.storage[server][upload.start..upload.end].copy_from_slice(&data);
            self.dir.record_upload_range(server, *upload);
        }
    }

    /// `clEnqueueWriteBuffer` to `server`.
    fn host_write(&mut self, server: usize, offset: usize, data: &[u8]) {
        if self.dir.needs_write_validation(server, offset, data.len()) {
            self.ensure_valid(server, None);
        }
        self.storage[server][offset..offset + data.len()].copy_from_slice(data);
        self.dir.record_host_write(server, offset, data);
    }

    /// A kernel launch on `server`: `slice` is the declared access hint
    /// (`None` = conservative whole-buffer).  The "kernel" mutates each
    /// byte of the written range from its own value and absolute position,
    /// so its output depends only on bytes the plan validated.
    fn device_write(&mut self, server: usize, slice: Option<ByteRange>) {
        match slice {
            Some(r) => {
                self.ensure_valid(server, Some(r));
                mutate(&mut self.storage[server][r.start..r.end], r.start);
                self.dir.record_device_write_range(server, r);
            }
            None => {
                self.ensure_valid(server, None);
                mutate(&mut self.storage[server], 0);
                self.dir.record_device_write(server);
            }
        }
    }

    /// A launch whose hint declares the buffer read-only: validated, never
    /// dirtied.
    fn device_read_only(&mut self, server: usize) {
        self.ensure_valid(server, None);
    }

    /// `clEnqueueReadBuffer` from `server`.
    fn host_read(&mut self, server: usize, offset: usize, len: usize) -> Vec<u8> {
        self.ensure_valid(server, None);
        let data = self.storage[server][offset..offset + len].to_vec();
        self.dir.record_host_read(server, offset, &data);
        data
    }

    /// The daemon died; its re-created memory object starts out empty.
    /// Returns whether any range lost its last valid copy.
    fn crash(&mut self, server: usize) -> bool {
        let lost = self.dir.invalidate_server(server);
        self.storage[server].fill(0);
        lost
    }

    fn check(&self, context: &dyn std::fmt::Debug) {
        if let Err(e) = self.dir.check_invariants() {
            panic!("directory invariant violated after {context:?}: {e}");
        }
        // valid_ranges / stale_ranges partition the buffer for every server.
        for server in 0..self.storage.len() {
            let valid: usize = self.dir.valid_ranges(server).iter().map(|r| r.len()).sum();
            let stale: usize = self.dir.stale_ranges(server).iter().map(|r| r.len()).sum();
            assert_eq!(
                valid + stale,
                self.size,
                "server {server}: valid ({valid}) + stale ({stale}) must cover the buffer \
                 after {context:?}"
            );
        }
    }
}

/// The deterministic "kernel": each byte becomes a function of its previous
/// value and its absolute buffer position.
fn mutate(bytes: &mut [u8], base: usize) {
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = b.wrapping_mul(31).wrapping_add(((base + i) as u8) ^ 0xA5);
    }
}

/// Deterministic payload for host writes.
fn pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| seed.wrapping_add((i as u8).wrapping_mul(13)).wrapping_add(1)).collect()
}

// ---------------------------------------------------------------------------
// Random interleavings
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    HostWrite { server: usize, offset: usize, seed: u8, len: usize },
    DeviceWrite { server: usize, slice: Option<(usize, usize)> },
    DeviceReadOnly { server: usize },
    HostRead { server: usize, offset: usize, len: usize },
    Validate { server: usize, slice: Option<(usize, usize)> },
}

/// Clamp an (offset, len) pair into the buffer.
fn clamp(offset: usize, len: usize, size: usize) -> (usize, usize) {
    let offset = offset.min(size);
    (offset, len.min(size - offset))
}

fn op_strategy(servers: usize, size: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..servers, 0..size, any::<u8>(), 0..size / 2).prop_map(move |(s, o, seed, l)| {
            let (offset, len) = clamp(o, l, size);
            Op::HostWrite { server: s, offset, seed, len }
        }),
        (0..servers, 0..size, 0..size / 4, any::<bool>()).prop_map(move |(s, o, l, whole)| {
            let slice = if whole { None } else { Some(clamp(o, l, size)) };
            Op::DeviceWrite { server: s, slice }
        }),
        (0..servers, 0..2usize).prop_map(|(s, _)| Op::DeviceReadOnly { server: s }),
        (0..servers, 0..size, 0..size).prop_map(move |(s, o, l)| {
            let (offset, len) = clamp(o, l, size);
            Op::HostRead { server: s, offset, len }
        }),
        (0..servers, 0..size, 0..size, any::<bool>()).prop_map(move |(s, o, l, whole)| {
            let slice = if whole { None } else { Some(clamp(o, l, size)) };
            Op::Validate { server: s, slice }
        }),
    ]
}

/// Apply one op to a sim; returns the observable bytes for read ops.
fn apply(sim: &mut Sim, op: &Op) -> Option<Vec<u8>> {
    let result = match *op {
        Op::HostWrite { server, offset, seed, len } => {
            sim.host_write(server, offset, &pattern(seed, len));
            None
        }
        Op::DeviceWrite { server, slice } => {
            sim.device_write(server, slice.map(|(o, l)| ByteRange::new(o, o + l)));
            None
        }
        Op::DeviceReadOnly { server } => {
            sim.device_read_only(server);
            None
        }
        Op::HostRead { server, offset, len } => Some(sim.host_read(server, offset, len)),
        Op::Validate { server, slice } => {
            sim.ensure_valid(server, slice.map(|(o, l)| ByteRange::new(o, o + l)));
            None
        }
    };
    sim.check(op);
    result
}

/// Apply one op to the perfectly coherent reference buffer.
fn apply_reference(reference: &mut [u8], op: &Op) -> Option<Vec<u8>> {
    match *op {
        Op::HostWrite { offset, seed, len, .. } => {
            reference[offset..offset + len].copy_from_slice(&pattern(seed, len));
            None
        }
        Op::DeviceWrite { slice, .. } => {
            let (o, l) = slice.unwrap_or((0, reference.len()));
            mutate(&mut reference[o..o + l], o);
            None
        }
        Op::HostRead { offset, len, .. } => Some(reference[offset..offset + len].to_vec()),
        Op::DeviceReadOnly { .. } | Op::Validate { .. } => None,
    }
}

const SERVERS: usize = 3;
const SIZE: usize = 48;

proptest! {
    /// The tentpole differential property: for any interleaving of host
    /// writes, device writes (hinted or not), reads and validations, the
    /// range directory and the whole-buffer oracle observe byte-identical
    /// reads, both match a perfectly coherent reference, both keep their
    /// invariants after every step — and the range directory never moves
    /// more coherence bytes than the oracle.
    #[test]
    fn range_and_whole_modes_agree_on_observable_reads(
        ops in proptest::collection::vec(op_strategy(SERVERS, SIZE), 1..=24),
    ) {
        let mut range_sim = Sim::new(CoherenceMode::Range, SERVERS, SIZE);
        let mut whole_sim = Sim::new(CoherenceMode::Whole, SERVERS, SIZE);
        let mut reference = vec![0u8; SIZE];
        for op in &ops {
            let from_range = apply(&mut range_sim, op);
            let from_whole = apply(&mut whole_sim, op);
            let expected = apply_reference(&mut reference, op);
            prop_assert_eq!(&from_range, &expected, "range mode diverged on {:?}", op);
            prop_assert_eq!(&from_whole, &expected, "whole oracle diverged on {:?}", op);
            if let Op::HostRead { server, .. } = *op {
                // A completed read is covered by valid ranges on its server.
                for sim in [&range_sim, &whole_sim] {
                    let covered: usize =
                        sim.dir.valid_ranges(server).iter().map(|r| r.len()).sum();
                    prop_assert_eq!(covered, SIZE, "read left stale ranges on {}", server);
                }
            }
        }
        prop_assert!(
            range_sim.moved <= whole_sim.moved,
            "range coherence moved {} bytes, the whole-buffer oracle only {}",
            range_sim.moved,
            whole_sim.moved
        );
    }

    /// Crash resilience at directory level: random interleavings with
    /// server crashes keep the structural invariants, and as long as no
    /// crash loses the last valid copy of a range the observable reads
    /// still match the coherent reference exactly (the failover path
    /// re-validates only the genuinely stale ranges).
    #[test]
    fn crashes_degrade_only_ranges_that_lost_their_last_copy(
        ops in proptest::collection::vec(op_strategy(SERVERS, SIZE), 1..=16),
        crash_points in proptest::collection::vec((0..16usize, 0..SERVERS), 1..=3),
    ) {
        let mut sim = Sim::new(CoherenceMode::Range, SERVERS, SIZE);
        let mut reference = vec![0u8; SIZE];
        let mut lossless = true;
        for (i, op) in ops.iter().enumerate() {
            for &(at, server) in &crash_points {
                if at == i {
                    lossless &= !sim.crash(server);
                    prop_assert!(sim.dir.valid_ranges(server).is_empty());
                    sim.check(&format!("crash of {server}"));
                }
            }
            let observed = apply(&mut sim, op);
            let expected = apply_reference(&mut reference, op);
            if lossless {
                prop_assert_eq!(&observed, &expected, "lossless crash changed {:?}", op);
            } else if let (Some(o), Some(e)) = (&observed, &expected) {
                // Data was legitimately lost; reads still return the right
                // amount of bytes from a structurally sound directory.
                prop_assert_eq!(o.len(), e.len());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Full stack: sparse updates
// ---------------------------------------------------------------------------

fn two_node_cluster(name: &str) -> (LocalCluster, dopencl::Client) {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    cluster.add_node("node1", &Platform::test_platform(1)).unwrap();
    let client = cluster.client_with_clock(name, SimClock::new()).unwrap();
    (cluster, client)
}

const SPARSE_SIZE: usize = 16384;
const SPARSE_PATCHES: usize = 10;
const PATCH_LEN: usize = 64;
const PATCH_STRIDE: usize = 1600;

/// Write a base image through node0, read it through node1, then dirty ten
/// scattered 64-byte patches through node0 and read the buffer back through
/// node1.  Returns the final read and the stream bytes the client sent
/// during the sparse phase (patch payloads + coherence uploads).
fn sparse_scenario(mode: CoherenceMode, name: &str) -> (Vec<u8>, u64) {
    let (_cluster, client) = two_node_cluster(name);
    client.set_coherence_mode(mode);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let q0 = context.create_command_queue(&devices[0]).unwrap();
    let q1 = context.create_command_queue(&devices[1]).unwrap();
    let buffer = context.create_buffer(SPARSE_SIZE).unwrap();

    let base: Vec<u8> = (0..SPARSE_SIZE).map(|i| (i % 251) as u8).collect();
    q0.write_buffer(&buffer, &base).blocking().submit().unwrap();
    let (primed, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(primed, base, "both nodes start from the same image");

    let before = client.traffic_stats();
    let mut expected = base;
    for k in 0..SPARSE_PATCHES {
        let offset = k * PATCH_STRIDE;
        let patch: Vec<u8> = (0..PATCH_LEN).map(|i| (k * 7 + i * 3 + 1) as u8).collect();
        expected[offset..offset + PATCH_LEN].copy_from_slice(&patch);
        q0.write_buffer(&buffer, &patch).at_offset(offset).blocking().submit().unwrap();
    }

    if mode == CoherenceMode::Range {
        // Diagnostics: node1 is stale over exactly the ten patches.
        let stale = buffer.stale_ranges(devices[1].server());
        assert_eq!(stale.len(), SPARSE_PATCHES);
        let stale_bytes: usize = stale.iter().map(|r| r.len()).sum();
        assert_eq!(stale_bytes, SPARSE_PATCHES * PATCH_LEN);
        // Ten patch segments and ten gap segments (the first patch starts
        // at offset 0, so there is no leading gap).
        assert_eq!(buffer.segment_count(), 2 * SPARSE_PATCHES);
    }

    let (data, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(data, expected, "sparse updates must be visible on node1");
    (data, client.traffic_stats().delta(&before).stream_bytes_sent)
}

/// The headline traffic property of the PR: with ~4 % of the buffer
/// dirtied, range coherence uploads only the stale patches while the
/// whole-buffer oracle re-ships the entire buffer — at least 5x (here >10x)
/// more bytes for a byte-identical result.
#[test]
fn sparse_updates_move_only_stale_ranges_between_daemons() {
    let (range_data, range_sent) = sparse_scenario(CoherenceMode::Range, "sparse-range");
    let (whole_data, whole_sent) = sparse_scenario(CoherenceMode::Whole, "sparse-whole");
    assert_eq!(range_data, whole_data, "both modes observe the same bytes");

    let dirty = (SPARSE_PATCHES * PATCH_LEN) as u64;
    assert_eq!(range_sent, 2 * dirty, "patch payloads + delta uploads only");
    assert_eq!(whole_sent, dirty + SPARSE_SIZE as u64, "oracle re-ships the whole buffer");
    assert!(
        whole_sent >= 5 * range_sent,
        "expected a >=5x traffic reduction, got {whole_sent} vs {range_sent}"
    );
}

// ---------------------------------------------------------------------------
// Full stack: a buffer partitioned across daemons
// ---------------------------------------------------------------------------

/// Integer kernel that stamps `out[(gy + row_offset) * width + gx]` with a
/// deterministic value, so disjoint row slices of one buffer can be
/// computed on different daemons.
const FILL_ROWS_SOURCE: &str = r#"
__kernel void fill_rows(__global uint* out, uint width, uint row_offset) {
    size_t gx = get_global_id(0);
    size_t gy = get_global_id(1);
    uint row = (uint)gy + row_offset;
    out[row * width + gx] = row * 131u + (uint)gx * 7u + 3u;
}
"#;

const PART_WIDTH: usize = 32;
const PART_HEIGHT: usize = 16;

fn expected_rows() -> Vec<u8> {
    let mut out = Vec::with_capacity(PART_WIDTH * PART_HEIGHT * 4);
    for row in 0..PART_HEIGHT as u32 {
        for gx in 0..PART_WIDTH as u32 {
            out.extend_from_slice(&(row * 131 + gx * 7 + 3).to_le_bytes());
        }
    }
    out
}

/// One shared output buffer, each daemon computing half the rows under a
/// `writes_slice` hint: the directory keeps both halves valid on their
/// owners without any intermediate transfer, and a single read assembles
/// the full image bit-correct from both partitions.
#[test]
fn buffer_partitioned_across_daemons_assembles_bit_correct() {
    let (_cluster, client) = two_node_cluster("partition");
    client.set_coherence_mode(CoherenceMode::Range);
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let program = context.create_program_with_source(FILL_ROWS_SOURCE).unwrap();
    program.build().unwrap();

    let bytes = PART_WIDTH * PART_HEIGHT * 4;
    let half_rows = PART_HEIGHT / 2;
    let half_bytes = bytes / 2;
    let buffer = context.create_buffer(bytes).unwrap();

    let mut events = Vec::new();
    for (i, device) in devices.iter().enumerate() {
        let queue = context.create_command_queue(device).unwrap();
        let kernel = program.create_kernel("fill_rows").unwrap();
        kernel.set_arg(0, &buffer).unwrap();
        kernel.set_arg(1, Value::uint(PART_WIDTH as u64)).unwrap();
        kernel.set_arg(2, Value::uint((i * half_rows) as u64)).unwrap();
        let event = queue
            .launch(&kernel, NdRange::two_d(PART_WIDTH, half_rows))
            .writes_slice(&buffer, i * half_bytes, half_bytes)
            .submit()
            .unwrap();
        events.push((queue, event));
    }
    for (_, event) in &events {
        event.wait().unwrap();
    }

    // Each daemon owns exactly its half; nothing was shipped between them.
    let valid0 = buffer.valid_ranges(devices[0].server());
    let valid1 = buffer.valid_ranges(devices[1].server());
    assert_eq!(valid0, vec![ByteRange::new(0, half_bytes)]);
    assert_eq!(valid1, vec![ByteRange::new(half_bytes, bytes)]);

    // One read assembles the partitions; both queues must agree.
    let expected = expected_rows();
    let (from_q0, _) = events[0].0.read_buffer(&buffer).submit().unwrap();
    assert_eq!(from_q0, expected, "assembled image must be bit-correct");
    let (from_q1, _) = events[1].0.read_buffer(&buffer).submit().unwrap();
    assert_eq!(from_q1, expected);
}

// ---------------------------------------------------------------------------
// Full stack: honour the session's DCL_COHERENCE mode
// ---------------------------------------------------------------------------

/// A mixed write / hinted-launch / read workload that pins no mode: CI runs
/// this binary once with the range default and once under
/// `DCL_COHERENCE=whole`, and the observable bytes must be correct either
/// way.
#[test]
fn mixed_workload_is_bit_correct_in_the_session_mode() {
    let (_cluster, client) = two_node_cluster("mixed");
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let program = context.create_program_with_source(FILL_ROWS_SOURCE).unwrap();
    program.build().unwrap();
    let q0 = context.create_command_queue(&devices[0]).unwrap();
    let q1 = context.create_command_queue(&devices[1]).unwrap();

    let bytes = PART_WIDTH * PART_HEIGHT * 4;
    let buffer = context.create_buffer(bytes).unwrap();
    q0.write_buffer(&buffer, &vec![0xEE; bytes]).blocking().submit().unwrap();

    // Device on node1 stamps the top half of the image...
    let half_rows = PART_HEIGHT / 2;
    let kernel = program.create_kernel("fill_rows").unwrap();
    kernel.set_arg(0, &buffer).unwrap();
    kernel.set_arg(1, Value::uint(PART_WIDTH as u64)).unwrap();
    kernel.set_arg(2, Value::uint(0)).unwrap();
    q1.launch(&kernel, NdRange::two_d(PART_WIDTH, half_rows))
        .writes_slice(&buffer, 0, bytes / 2)
        .submit()
        .unwrap()
        .wait()
        .unwrap();

    // ... the host patches a few bytes through node0 ...
    q0.write_buffer(&buffer, &[1, 2, 3, 4]).at_offset(bytes / 2).blocking().submit().unwrap();

    // ... and a read through either node sees the same assembled result.
    let mut expected = expected_rows()[..bytes / 2].to_vec();
    expected.extend(std::iter::repeat_n(0xEE, bytes / 2));
    expected[bytes / 2..bytes / 2 + 4].copy_from_slice(&[1, 2, 3, 4]);
    let (from_q0, _) = q0.read_buffer(&buffer).submit().unwrap();
    assert_eq!(from_q0, expected);
    let (from_q1, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(from_q1, expected);
}
