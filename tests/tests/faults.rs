//! Fault-tolerance integration tests: retry/backoff bounds, idempotent
//! replay against the daemon's dedup window, transparent client reconnects,
//! device-manager lease failover after missed heartbeats, and the headline
//! chaos scenarios — an OSEM reconstruction that survives a daemon
//! partition (exactly-once replay) and a daemon crash (failover to the
//! surviving server, bit-correct result).

use dopencl::coherence::CoherenceMode;
use dopencl::protocol::{BatchCommand, BatchEntry, Request, Response, WireNdRange};
use dopencl::{Context, FailoverPolicy, LinkModel, LocalCluster, NdRange, SimClock, Value};
use gcf::retry::Backoff;
use gcf::rpc::{Endpoint, NullHandler};
use gcf::transport::Transport;
use gcf::wire::{Decode, Encode};
use integration_tests::as_f32s;
use std::sync::Arc;
use std::time::Duration;
use vocl::Platform;
use workloads::osem::{self, OsemParams, BUILTIN_KERNEL, FLOATS_PER_EVENT};

// ---------------------------------------------------------------------------
// Retry / backoff
// ---------------------------------------------------------------------------

/// The supervisor's redial schedule grows exponentially and its jitter is
/// bounded: every delay lies in `[nominal, nominal * (1 + jitter))`, and the
/// sequence is deterministic for a given seed (no flaky sleeps in CI).
#[test]
fn backoff_delays_stay_within_jitter_bounds() {
    let policy = Backoff {
        base: Duration::from_millis(5),
        max_delay: Duration::from_secs(1),
        multiplier: 2.0,
        jitter: 0.25,
        max_attempts: 8,
        seed: 0xfa_11,
    };
    for attempt in 0..6u32 {
        let nominal = 5.0e-3 * 2.0f64.powi(attempt as i32);
        let d = policy.delay_for(attempt).as_secs_f64();
        assert!(d >= nominal, "attempt {attempt}: {d} below nominal {nominal}");
        assert!(d < nominal * 1.25, "attempt {attempt}: {d} above jitter bound");
        assert_eq!(policy.delay_for(attempt), policy.delay_for(attempt), "must be deterministic");
    }
    // Far attempts are capped at max_delay (pre-jitter).
    assert!(policy.delay_for(30).as_secs_f64() < 1.0 * 1.25);
}

// ---------------------------------------------------------------------------
// Idempotent replay at the protocol level
// ---------------------------------------------------------------------------

fn raw_call(endpoint: &Arc<Endpoint>, request: Request) -> Response {
    let bytes = endpoint.call(request.to_bytes()).unwrap();
    Response::from_bytes(&bytes).unwrap()
}

/// A client that loses the *response* to an `EnqueueBatch` reconnects and
/// replays the identical batch over a brand-new connection.  The daemon's
/// per-session dedup window recognises the command id and reports success
/// without executing the kernel a second time — exactly-once semantics
/// across connections.
#[test]
fn dedup_window_rejects_replayed_ids_across_reconnect() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let daemon = cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    let transport = cluster.transport();

    let connect = |epoch: u64| -> (Arc<Endpoint>, bool) {
        let conn = transport.connect(daemon.address()).unwrap();
        let endpoint = Endpoint::new(conn, Arc::new(NullHandler), "raw-client");
        let Response::SessionInfo(info) = raw_call(
            &endpoint,
            Request::Hello { client_name: "replayer".into(), auth_id: None, epoch },
        ) else {
            panic!("expected session info")
        };
        (endpoint, info.resumed)
    };
    let (endpoint, resumed) = connect(0);
    assert!(!resumed);

    let Response::DeviceList { devices } = raw_call(&endpoint, Request::GetDeviceList) else {
        panic!("expected device list")
    };
    let dev = devices[0].remote_id;
    raw_call(&endpoint, Request::CreateContext { context_id: 1, devices: vec![dev] });
    raw_call(&endpoint, Request::CreateCommandQueue { queue_id: 2, context_id: 1, device: dev });
    raw_call(
        &endpoint,
        Request::CreateProgramWithSource {
            program_id: 3,
            context_id: 1,
            source: "__kernel void noop() { }".into(),
        },
    );
    raw_call(&endpoint, Request::BuildProgram { program_id: 3 });
    raw_call(&endpoint, Request::CreateKernel { kernel_id: 4, program_id: 3, name: "noop".into() });

    let batch = || Request::EnqueueBatch {
        entries: vec![BatchEntry {
            command_id: 42,
            queue_id: 2,
            event_id: 10,
            wait_events: vec![],
            command: BatchCommand::NdRange { kernel_id: 4, range: WireNdRange(NdRange::linear(8)) },
        }],
    };
    let Response::BatchEnqueued { statuses } = raw_call(&endpoint, batch()) else {
        panic!("expected batch response")
    };
    assert_eq!(statuses[0].code, 0);
    assert_eq!(daemon.stats().kernel_launches, 1);

    // The response was "lost": redial, resume the session, replay verbatim.
    endpoint.abort();
    let (endpoint2, resumed) = connect(1);
    assert!(resumed, "the daemon must hand back the parked session");
    let Response::BatchEnqueued { statuses } = raw_call(&endpoint2, batch()) else {
        panic!("expected batch response")
    };
    assert_eq!(statuses[0].code, 0, "a replayed entry still reports success");
    assert_eq!(daemon.stats().kernel_launches, 1, "replay must not re-execute");
    assert_eq!(daemon.dedup_counters("replayer"), Some((1, 1)));
}

// ---------------------------------------------------------------------------
// Client reconnect / re-handshake
// ---------------------------------------------------------------------------

/// When the daemon drops every connection (network partition), the client's
/// connection supervisor re-dials, re-handshakes with a bumped session epoch
/// and the same authentication id, and in-progress work continues without
/// the application noticing.
#[test]
fn reconnect_rehandshake_restores_auth_id_and_bumps_epoch() {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let daemon = cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    let client = cluster.detached_client("rejoiner", SimClock::new());
    client.set_auth_id(Some("lease-77".into()));
    let server = client.connect_server(daemon.address()).unwrap();

    let info = client.session_info(server).unwrap();
    assert_eq!(info.auth_id.as_deref(), Some("lease-77"));
    assert_eq!(info.epoch, 0);

    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let queue = context.create_command_queue(&devices[0]).unwrap();
    let buffer = context.create_buffer(64).unwrap();
    queue.write_buffer(&buffer, &[7u8; 64]).blocking().submit().unwrap();

    daemon.drop_connections();

    // The next operations ride through the supervisor's reconnect; the
    // remote objects survived inside the daemon's parked session.
    let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
    assert_eq!(data, vec![7u8; 64]);

    let info = client.session_info(server).unwrap();
    assert_eq!(info.auth_id.as_deref(), Some("lease-77"), "auth id survives the re-handshake");
    assert!(info.epoch >= 1, "reconnecting must bump the session epoch");
    assert!(client.traffic_stats().reconnects >= 1);
}

// ---------------------------------------------------------------------------
// Device-manager heartbeats and lease failover
// ---------------------------------------------------------------------------

/// A managed server that stops sending heartbeats is marked down and its
/// leased devices fail over to same-type devices on a healthy server
/// (Section IV-C); a later heartbeat revives the server and its unassigned
/// devices rejoin the free set.
#[test]
fn devmgr_reclaims_leases_after_missed_heartbeats() {
    use devmgr::{DeviceManager, DeviceManagerServer, DeviceRequirement, ManagedDaemon};

    let transport: Arc<dyn Transport> = Arc::new(gcf::transport::inproc::InprocTransport::new());
    let dm = DeviceManager::new(devmgr::SchedulingStrategy::FirstFit);
    let dm_server =
        DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr").unwrap();
    let platform_a = Platform::gpu_server();
    let platform_b = Platform::gpu_server();
    let _managed_a = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpu-a",
        "gpu-a",
        platform_a.devices(),
    )
    .unwrap();
    let managed_b = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpu-b",
        "gpu-b",
        platform_b.devices(),
    )
    .unwrap();

    let gpu_req =
        vec![DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    let assignment =
        devmgr::request_assignment(&transport, dm_server.address(), "patient", &gpu_req).unwrap();
    // FirstFit lands the lease on server 0 (gpu-a); each gpu_server
    // platform registers 4 GPUs + 1 CPU, so 9 of the 10 devices stay free.
    assert_eq!(dm.leases()[0].physical_devices()[0].0, 0);
    assert_eq!(dm.free_device_count(), 9);

    // gpu-b keeps beating, gpu-a goes silent for three ticks.
    for _ in 0..3 {
        dm.tick();
        managed_b.send_heartbeat().unwrap();
    }
    let events = dm.check_health(1);
    assert_eq!(events.len(), 1, "exactly one lease fails over");
    assert_eq!(events[0].auth_id, assignment.auth_id);
    assert!(!events[0].degraded, "gpu-b has a free GPU of the same type");
    assert_eq!(events[0].moved, vec![(1, events[0].moved[0].1)]);
    assert_eq!(dm.server_health(), vec![("gpu-a".to_string(), false), ("gpu-b".to_string(), true)]);
    // The lease now lives entirely on gpu-b; gpu-a's devices left the free
    // set with it.
    let leases = dm.leases();
    assert_eq!(leases.len(), 1);
    assert!(leases[0].physical_devices().iter().all(|(server, _)| *server == 1));
    assert_eq!(dm.free_device_count(), 4);

    // A second sweep is idempotent: nothing newly down, nothing moves.
    assert!(dm.check_health(1).is_empty());

    // gpu-a comes back: its (now unleased) devices rejoin the free set.
    assert!(dm.heartbeat("gpu-a"));
    assert_eq!(dm.server_health(), vec![("gpu-a".to_string(), true), ("gpu-b".to_string(), true)]);
    assert_eq!(dm.free_device_count(), 9);
}

/// The degraded failover path: when the dead node's lease has no same-type
/// replacement anywhere, the lease is revoked rather than moved — and a
/// server already marked down never re-triggers failover on later sweeps,
/// no matter how many health ticks pass.
#[test]
fn down_server_never_retriggers_failover_and_degraded_leases_are_revoked() {
    use devmgr::{DeviceManager, DmDevice, ShareRequest};

    let device = |id: u64, device_type: &str| DmDevice {
        remote_id: id,
        name: format!("{device_type} {id}"),
        vendor: "ACME".into(),
        device_type: device_type.into(),
        compute_units: 16,
        global_mem_bytes: 4 << 30,
    };
    let dm = DeviceManager::new(devmgr::SchedulingStrategy::FirstFit);
    dm.register_server("gpu-node", "gpu-node", vec![device(0, "GPU")], None);
    dm.register_server("cpu-node", "cpu-node", vec![device(1, "CPU")], None);
    let (lease, _) = dm
        .assign_shares(
            "tenant",
            &[ShareRequest::whole_device(1, vec![("TYPE".into(), "GPU".into())])],
            1,
        )
        .unwrap();

    // The GPU node goes silent; the CPU-only node keeps beating.
    for _ in 0..3 {
        dm.tick();
        dm.heartbeat("cpu-node");
    }
    let events = dm.check_health(1);
    assert_eq!(events.len(), 1);
    assert!(events[0].degraded, "no same-type replacement device exists");
    assert!(events[0].moved.is_empty(), "nothing to move the share to");
    assert!(dm.lease(&lease.auth_id).is_none(), "the unmovable lease is revoked");

    // However long the server stays down, it never fails over again.
    for _ in 0..5 {
        dm.tick();
        dm.heartbeat("cpu-node");
        assert!(dm.check_health(1).is_empty(), "an already-down server re-triggered failover");
    }
    assert_eq!(
        dm.server_health(),
        vec![("gpu-node".to_string(), false), ("cpu-node".to_string(), true)]
    );
}

/// Administrative revocation: removing the only server a lease lives on
/// revokes the lease outright — the watcher is pushed a `Revoked` notice
/// with an empty server list, the daemon's quota table drops the auth id,
/// and the lease is gone from the manager.
#[test]
fn removed_server_revokes_leases_and_notifies_watchers() {
    use devmgr::{DeviceManager, DeviceManagerServer, DeviceRequirement, ManagedDaemon};

    let transport: Arc<dyn Transport> = Arc::new(gcf::transport::inproc::InprocTransport::new());
    let dm = DeviceManager::new(devmgr::SchedulingStrategy::FirstFit);
    let dm_server =
        DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr").unwrap();
    let platform = Platform::gpu_server();
    let managed = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "solo",
        "solo",
        platform.devices(),
    )
    .unwrap();

    let gpu_req =
        vec![DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    let assignment =
        devmgr::request_assignment(&transport, dm_server.address(), "tenant", &gpu_req).unwrap();
    let device_id = dm.lease_grants(&assignment.auth_id).unwrap()[0].device_id;
    assert!(managed.lease_quota(&assignment.auth_id, device_id).is_some());

    let notices = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&notices);
    let _watch = devmgr::watch_lease(&transport, dm_server.address(), &assignment.auth_id, {
        move |notice| sink.lock().unwrap().push(notice)
    })
    .unwrap();

    devmgr::remove_server(&transport, dm_server.address(), "solo").unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let notice = loop {
        if let Some(n) = notices.lock().unwrap().first().cloned() {
            break n;
        }
        assert!(std::time::Instant::now() < deadline, "no revocation push arrived");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(notice.reason, devmgr::LeaseChangeReason::Revoked);
    assert!(notice.servers.is_empty(), "a revoked lease has no servers left");
    assert!(devmgr::get_lease(&transport, dm_server.address(), &assignment.auth_id).is_err());
    // The RevokeLease push empties the daemon's quota table.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while managed.lease_quota(&assignment.auth_id, device_id).is_some() {
        assert!(std::time::Instant::now() < deadline, "daemon quota never revoked");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A lease is revoked from a draining node mid-computation and migrated to
/// the other node: the watching client follows the `LeaseChanged` push,
/// reconciles its server roster with `sync_servers`, and the workload's
/// second half — computed on the new node — stitches bit-correct against
/// the single-node reference.
#[test]
fn drained_node_lease_migrates_and_finishes_bit_correct() {
    use devmgr::{DeviceManager, DeviceManagerServer, DeviceRequirement, ManagedDaemon};

    const UINTS_PER_HALF: usize = 128;
    const STAMP: &str = r#"
        __kernel void stamp(__global uint* out, uint base) {
            size_t i = get_global_id(0);
            out[i] = ((uint)i + base) * 97u + 5u;
        }
    "#;

    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(devmgr::SchedulingStrategy::FirstFit);
    let dm_server =
        DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr").unwrap();
    let mut managed = Vec::new();
    for name in ["node-a", "node-b"] {
        let platform = Platform::test_platform(1);
        let daemon = ManagedDaemon::connect(
            Arc::clone(&transport),
            dm_server.address(),
            name,
            name,
            platform.devices(),
        )
        .unwrap();
        cluster.add_node_with_policy(name, &platform, daemon.policy()).unwrap();
        managed.push(daemon);
    }

    let any_device = vec![DeviceRequirement { count: 1, attributes: Vec::new() }];
    let assignment =
        devmgr::request_assignment(&transport, dm_server.address(), "migrator", &any_device)
            .unwrap();
    assert_eq!(assignment.servers, vec!["node-a".to_string()]);

    let notices = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&notices);
    let _watch = devmgr::watch_lease(&transport, dm_server.address(), &assignment.auth_id, {
        move |notice| sink.lock().unwrap().push(notice)
    })
    .unwrap();

    let client = cluster.detached_client("migrator", SimClock::new());
    client.set_auth_id(Some(assignment.auth_id.clone()));
    client.connect_server(&assignment.servers[0]).unwrap();

    // Each half is self-contained (own context, queue and buffer) on
    // whatever device the lease currently exposes.
    let stamp_half = |base: usize| -> Vec<u32> {
        let device = client.devices()[0].clone();
        let context = Context::new(&client, std::slice::from_ref(&device)).unwrap();
        let queue = context.create_command_queue(&device).unwrap();
        let program = context.create_program_with_source(STAMP).unwrap();
        program.build().unwrap();
        let buffer = context.create_buffer(UINTS_PER_HALF * 4).unwrap();
        let kernel = program.create_kernel("stamp").unwrap();
        kernel.set_arg(0, &buffer).unwrap();
        kernel.set_arg(1, Value::uint(base as u64)).unwrap();
        queue.launch(&kernel, NdRange::linear(UINTS_PER_HALF)).submit().unwrap().wait().unwrap();
        let (data, _) = queue.read_buffer(&buffer).submit().unwrap();
        data.chunks_exact(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect()
    };
    let mut image = stamp_half(0);

    // Drain the node the lease lives on: its share is revoked there and
    // migrated; the watcher learns the new server set.
    devmgr::drain_server(&transport, dm_server.address(), "node-a").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let notice = loop {
        if let Some(n) = notices.lock().unwrap().first().cloned() {
            break n;
        }
        assert!(std::time::Instant::now() < deadline, "no LeaseChanged push arrived");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(notice.reason, devmgr::LeaseChangeReason::Migrated);
    assert_eq!(notice.servers, vec!["node-b".to_string()]);
    client.sync_servers(&notice.servers).unwrap();
    assert!(client.server_by_address("node-a").is_none(), "the drained node is disconnected");

    image.extend(stamp_half(UINTS_PER_HALF));

    let expected: Vec<u32> = (0..2 * UINTS_PER_HALF).map(|i| (i as u32) * 97 + 5).collect();
    assert_eq!(image, expected, "the migrated workload must stay bit-correct");
    // The drain completed: nothing is allocated on node-a any more, while
    // the lease itself lives on.
    assert_eq!(dm.server_load("node-a"), Some(0));
    assert_eq!(dm.lease_count(), 1);
}

// ---------------------------------------------------------------------------
// Bulk transfers fail fast
// ---------------------------------------------------------------------------

/// `wait_bulk` must not sit out its full timeout when the peer dies: the
/// receiver notices the closed connection and fails every waiter promptly.
#[test]
fn wait_bulk_fails_fast_when_the_peer_dies() {
    let transport = gcf::transport::inproc::InprocTransport::new();
    let listener = transport.listen("bulk-peer").unwrap();
    let accept = std::thread::spawn(move || listener.accept().unwrap());
    let conn = transport.connect("bulk-peer").unwrap();
    let server_conn = accept.join().unwrap();
    let endpoint = Endpoint::new(conn, Arc::new(NullHandler), "bulk-client");

    let waiter = {
        let endpoint = Arc::clone(&endpoint);
        std::thread::spawn(move || {
            let started = std::time::Instant::now();
            let result = endpoint.wait_bulk(99, Duration::from_secs(30));
            (result, started.elapsed())
        })
    };
    // Give the waiter a moment to block, then kill the peer.
    std::thread::sleep(Duration::from_millis(50));
    server_conn.close();
    let (result, elapsed) = waiter.join().unwrap();
    assert!(result.is_err(), "the waiter must observe the dead peer");
    assert!(elapsed < Duration::from_secs(10), "failed after {elapsed:?}, not fast");
}

// ---------------------------------------------------------------------------
// Chaos: OSEM under daemon failures
// ---------------------------------------------------------------------------

fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Run one OSEM subset on `device`, self-contained (own context, buffers and
/// queue), returning the correction volume bytes.
fn run_subset(
    client: &dopencl::Client,
    device: &dopencl::Device,
    params: &OsemParams,
    chunk: &[f32],
    image: &[f32],
) -> dopencl::Result<Vec<u8>> {
    let per_subset = chunk.len() / FLOATS_PER_EVENT;
    let context = Context::new(client, std::slice::from_ref(device))?;
    let queue = context.create_command_queue(device)?;
    let events_buf = context.create_buffer(chunk.len() * 4)?;
    let image_buf = context.create_buffer(image.len() * 4)?;
    let corr_buf = context.create_buffer(params.num_voxels * 4)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;
    let kernel = program.create_kernel(BUILTIN_KERNEL)?;
    queue.write_buffer(&events_buf, &f32_bytes(chunk)).blocking().submit()?;
    queue.write_buffer(&image_buf, &f32_bytes(image)).blocking().submit()?;
    kernel.set_arg(0, &events_buf)?;
    kernel.set_arg(1, &image_buf)?;
    kernel.set_arg(2, &corr_buf)?;
    kernel.set_arg(3, Value::uint(per_subset as u64))?;
    kernel.set_arg(4, Value::uint(params.ray_steps as u64))?;
    kernel.set_arg(5, Value::uint(params.num_voxels as u64))?;
    queue.launch(&kernel, NdRange::linear(per_subset)).submit()?.wait()?;
    let (data, _) = queue.read_buffer(&corr_buf).submit()?;
    Ok(data)
}

fn osem_fixture() -> (OsemParams, Vec<f32>, Vec<f32>, Vec<Vec<f32>>) {
    workloads::register_all_built_in_kernels();
    let params = OsemParams::small();
    let events = osem::generate_events(&params, 11);
    let image = vec![0.5f32; params.num_voxels];
    let chunk_len = params.events_per_subset() * FLOATS_PER_EVENT;
    let references: Vec<Vec<f32>> = events
        .chunks_exact(chunk_len)
        .map(|chunk| osem::reference_subset_update(&params, chunk, &image))
        .collect();
    (params, events, image, references)
}

/// Headline chaos scenario (a): a daemon drops every connection in the
/// middle of an OSEM iteration.  The client reconnects, resumes its session
/// (all remote objects intact), replays idempotently, and the iteration
/// finishes **bit-correct** with every kernel launched **exactly once**.
#[test]
fn osem_iteration_survives_daemon_partition_with_exactly_once_replay() {
    let (params, events, image, references) = osem_fixture();
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    cluster.add_node("node1", &Platform::test_platform(1)).unwrap();
    let client = cluster.client_with_clock("osem-partition", SimClock::new()).unwrap();
    let devices = client.devices();
    assert_eq!(devices.len(), 2);

    let chunk_len = params.events_per_subset() * FLOATS_PER_EVENT;
    let chunks: Vec<&[f32]> = events.chunks_exact(chunk_len).collect();
    let mut corrections = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        if i == params.subsets / 2 {
            // Partition node0 between subsets: every connection drops, the
            // daemon itself stays up and keeps accepting.
            cluster.daemons()[0].drop_connections();
        }
        let device = &devices[i % devices.len()];
        corrections.push(run_subset(&client, device, &params, chunk, &image).unwrap());
    }

    for (i, (computed, reference)) in corrections.iter().zip(&references).enumerate() {
        assert_eq!(as_f32s(computed), *reference, "subset {i} must be bit-correct");
    }

    // Exactly-once: one launch per subset across the whole cluster, no
    // double execution despite the replayed traffic.
    let launches: u64 = cluster.daemons().iter().map(|d| d.stats().kernel_launches).sum();
    assert_eq!(launches, params.subsets as u64);
    let (admitted, replayed) = cluster.daemons()[0].dedup_counters("osem-partition").unwrap();
    assert!(admitted > 0, "node0 executed commands after the partition");
    assert_eq!(
        launches, params.subsets as u64,
        "dedup window (admitted {admitted}, replayed {replayed}) kept execution exactly-once"
    );
    let info = client.session_info(client.servers()[0]).unwrap();
    assert!(info.epoch >= 1, "the client re-handshook with node0");
    assert!(client.traffic_stats().reconnects >= 1);
}

/// Headline chaos scenario (b): a daemon is killed outright mid-iteration.
/// With `drop_lost_servers` the client gives the dead server up after the
/// redial budget, fails its work fast, and the application re-runs the lost
/// subsets on the survivor — final result still bit-correct.
#[test]
fn osem_iteration_fails_over_to_survivor_after_daemon_crash() {
    let (params, events, image, references) = osem_fixture();
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    cluster.add_node("node1", &Platform::test_platform(1)).unwrap();
    let client = cluster.client_with_clock("osem-crash", SimClock::new()).unwrap();
    client.set_failover_policy(FailoverPolicy {
        reconnect: true,
        backoff: Backoff::fast(),
        drop_lost_servers: true,
    });
    let devices = client.devices();
    let survivor = devices[1].clone();

    let chunk_len = params.events_per_subset() * FLOATS_PER_EVENT;
    let chunks: Vec<&[f32]> = events.chunks_exact(chunk_len).collect();
    let mut corrections: Vec<Option<Vec<u8>>> = vec![None; chunks.len()];
    let mut lost = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        if i == params.subsets / 2 {
            cluster.daemons()[0].kill();
        }
        let device = &devices[i % devices.len()];
        match run_subset(&client, device, &params, chunk, &image) {
            Ok(data) => corrections[i] = Some(data),
            Err(_) => lost.push(i),
        }
    }
    assert!(!lost.is_empty(), "killing node0 must cost at least one subset");

    // The dead server was dropped from the roster; re-run the lost subsets
    // on the survivor.
    assert_eq!(client.servers().len(), 1);
    for i in lost {
        corrections[i] = Some(run_subset(&client, &survivor, &params, chunks[i], &image).unwrap());
    }

    for (i, (computed, reference)) in corrections.iter().zip(&references).enumerate() {
        let computed = computed.as_ref().expect("every subset completed");
        assert_eq!(as_f32s(computed), *reference, "subset {i} must be bit-correct");
    }
    let stats = client.traffic_stats();
    assert!(stats.failed_requests >= 1 || stats.retries >= 1);
}

// ---------------------------------------------------------------------------
// Chaos: daemon crash in the middle of a delta-coherence exchange
// ---------------------------------------------------------------------------

/// Headline chaos scenario (c), range coherence under failover: a buffer is
/// shared across two daemons, node1 has received *one* delta upload (the
/// slice a hinted kernel then overwrote) when node0 is killed.  The
/// remaining ranges are still pending — the survivor must be re-validated
/// from the client's copy, moving **only the stale ranges**, and the final
/// read is bit-correct.  Losing node0 afterwards drops it from the roster
/// and invalidates exactly its directory entries.
#[test]
fn crash_between_delta_uploads_revalidates_only_stale_ranges_on_survivor() {
    const SIZE: usize = 4096; // 1024 uints
    const SLICE_OFFSET: usize = 1024; // uints [256, 512)
    const SLICE_LEN: usize = 1024;
    const STAMP: &str = r#"
        __kernel void stamp(__global uint* out, uint base) {
            size_t i = get_global_id(0);
            out[base + i] = ((uint)i + base) * 97u + 5u;
        }
    "#;

    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    cluster.add_node("node1", &Platform::test_platform(1)).unwrap();
    let client = cluster.client_with_clock("delta-crash", SimClock::new()).unwrap();
    client.set_coherence_mode(CoherenceMode::Range);
    client.set_failover_policy(FailoverPolicy {
        reconnect: true,
        backoff: Backoff::fast(),
        drop_lost_servers: true,
    });
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let q0 = context.create_command_queue(&devices[0]).unwrap();
    let q1 = context.create_command_queue(&devices[1]).unwrap();
    let buffer = context.create_buffer(SIZE).unwrap();

    // Base image lives on node0 (and in the client's cache).
    let base: Vec<u8> = (0..SIZE).map(|i| (i % 241) as u8).collect();
    q0.write_buffer(&buffer, &base).blocking().submit().unwrap();

    // A hinted kernel on node1 declares it writes only `[1024, 2048)`: the
    // delta plan uploads exactly that slice to node1 before the launch.
    let program = context.create_program_with_source(STAMP).unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("stamp").unwrap();
    kernel.set_arg(0, &buffer).unwrap();
    kernel.set_arg(1, Value::uint((SLICE_OFFSET / 4) as u64)).unwrap();
    q1.launch(&kernel, NdRange::linear(SLICE_LEN / 4))
        .writes_slice(&buffer, SLICE_OFFSET, SLICE_LEN)
        .submit()
        .unwrap()
        .wait()
        .unwrap();

    // Crash node0 before the remaining ranges ever reached node1.
    cluster.daemons()[0].kill();

    let mut expected = base.clone();
    for i in 0..SLICE_LEN / 4 {
        let value = ((i + SLICE_OFFSET / 4) * 97 + 5) as u32;
        let at = SLICE_OFFSET + i * 4;
        expected[at..at + 4].copy_from_slice(&value.to_le_bytes());
    }

    // Reading through the survivor re-validates only the stale ranges —
    // the client uploads the 3072 bytes node1 never saw, not the whole
    // buffer, and never needs the dead node.
    let uploaded_before = cluster.daemons()[1].stats().bytes_uploaded;
    let before = client.traffic_stats();
    let (data, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(data, expected, "survivor read must be bit-correct after the crash");
    let stale_bytes = (SIZE - SLICE_LEN) as u64;
    assert_eq!(
        cluster.daemons()[1].stats().bytes_uploaded - uploaded_before,
        stale_bytes,
        "only the stale ranges are re-uploaded to the survivor"
    );
    assert_eq!(client.traffic_stats().delta(&before).stream_bytes_sent, stale_bytes);

    // The dead node is dropped from the roster and its directory entries
    // invalidated; work routed at it fails fast, the survivor keeps
    // serving the (already fully valid) buffer without further transfers.
    assert!(q0.read_buffer(&buffer).submit().is_err(), "the dead node's queue must fail");
    assert_eq!(client.servers().len(), 1);
    assert!(buffer.valid_ranges(devices[0].server()).is_empty());
    assert_eq!(buffer.stale_ranges(devices[1].server()), vec![]);
    let uploaded_before = cluster.daemons()[1].stats().bytes_uploaded;
    let (data, _) = q1.read_buffer(&buffer).submit().unwrap();
    assert_eq!(data, expected);
    assert_eq!(cluster.daemons()[1].stats().bytes_uploaded, uploaded_before);
}
