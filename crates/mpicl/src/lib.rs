//! # mpicl — a minimal MPI-like substrate for the MPI+OpenCL baseline
//!
//! Figure 4 of the paper compares dOpenCL against a hand-written
//! **MPI+OpenCL** version of the Mandelbrot application: the programmer
//! distributes image tiles over MPI ranks, each rank computes its tile with
//! its local OpenCL implementation, and the tiles are merged with
//! `MPI_Gather`.
//!
//! This crate provides exactly the message-passing primitives that baseline
//! needs — a [`World`] of ranks running as threads, point-to-point
//! [`Communicator::send`]/[`Communicator::recv`], [`Communicator::barrier`],
//! [`Communicator::gather`] and [`Communicator::bcast`] — layered over
//! in-process channels, with every transfer charged to a per-rank
//! [`SimClock`] according to the same [`LinkModel`] the dOpenCL client uses.
//! This keeps the baseline and dOpenCL comparable: both pay the same
//! modelled network costs, they just pay them in different places.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam_channel::{unbounded, Receiver, Sender};
use gcf::simtime::{Phase, PhaseBreakdown, SimClock};
use gcf::LinkModel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Error type for message-passing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// The destination or source rank does not exist.
    InvalidRank(usize),
    /// A peer rank terminated, closing its channels.
    Disconnected,
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::Disconnected => write!(f, "peer rank disconnected"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, MpiError>;

type Message = (usize, u64, Vec<u8>); // (source, tag, payload)

/// Out-of-order messages parked until a matching `recv`, keyed by
/// (source, tag).
type Stash = Mutex<HashMap<(usize, u64), Vec<Vec<u8>>>>;

/// A communicator bound to one rank of a [`World`].
pub struct Communicator {
    rank: usize,
    size: usize,
    link: LinkModel,
    clock: SimClock,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages received out of order (matched by source + tag later).
    stash: Stash,
    /// Modelled MPI runtime initialization cost, charged once.
    init_cost: Duration,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The per-rank simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Modelled `MPI_Init`: charged to the initialization phase.
    pub fn init(&self) {
        self.clock.charge(Phase::Initialization, self.init_cost);
    }

    /// Send `payload` to `dest` with `tag`.
    pub fn send(&self, dest: usize, tag: u64, payload: &[u8]) -> Result<()> {
        let sender = self.senders.get(dest).ok_or(MpiError::InvalidRank(dest))?;
        sender.send((self.rank, tag, payload.to_vec())).map_err(|_| MpiError::Disconnected)
    }

    /// Receive a message from `source` with `tag`, blocking until it
    /// arrives.  The modelled transfer time is charged to the data-transfer
    /// phase of the *receiving* rank.
    pub fn recv(&self, source: usize, tag: u64) -> Result<Vec<u8>> {
        if source >= self.size {
            return Err(MpiError::InvalidRank(source));
        }
        // Check the stash first.
        if let Some(queue) = self.stash.lock().get_mut(&(source, tag)) {
            if !queue.is_empty() {
                let payload = queue.remove(0);
                self.charge_transfer(payload.len());
                return Ok(payload);
            }
        }
        loop {
            let (from, msg_tag, payload) =
                self.receiver.recv().map_err(|_| MpiError::Disconnected)?;
            if from == source && msg_tag == tag {
                self.charge_transfer(payload.len());
                return Ok(payload);
            }
            self.stash.lock().entry((from, msg_tag)).or_default().push(payload);
        }
    }

    fn charge_transfer(&self, bytes: usize) {
        self.clock.charge(Phase::DataTransfer, self.link.transfer_time(bytes as u64));
    }

    /// `MPI_Barrier`: a root-gather followed by a broadcast of an empty
    /// token.
    pub fn barrier(&self) -> Result<()> {
        const BARRIER_TAG: u64 = u64::MAX - 1;
        if self.rank == 0 {
            for source in 1..self.size {
                let _ = self.recv(source, BARRIER_TAG)?;
            }
            for dest in 1..self.size {
                self.send(dest, BARRIER_TAG, &[])?;
            }
        } else {
            self.send(0, BARRIER_TAG, &[])?;
            let _ = self.recv(0, BARRIER_TAG)?;
        }
        Ok(())
    }

    /// `MPI_Gather` to rank 0: every rank contributes `payload`; rank 0
    /// receives all contributions in rank order.
    pub fn gather(&self, payload: &[u8]) -> Result<Option<Vec<Vec<u8>>>> {
        const GATHER_TAG: u64 = u64::MAX - 2;
        if self.rank == 0 {
            let mut parts = vec![payload.to_vec()];
            for source in 1..self.size {
                parts.push(self.recv(source, GATHER_TAG)?);
            }
            Ok(Some(parts))
        } else {
            self.send(0, GATHER_TAG, payload)?;
            Ok(None)
        }
    }

    /// `MPI_Bcast` from `root`: returns the broadcast payload on every rank.
    pub fn bcast(&self, root: usize, payload: Option<&[u8]>) -> Result<Vec<u8>> {
        const BCAST_TAG: u64 = u64::MAX - 3;
        if self.rank == root {
            let data = payload.unwrap_or(&[]).to_vec();
            for dest in 0..self.size {
                if dest != root {
                    self.send(dest, BCAST_TAG, &data)?;
                }
            }
            Ok(data)
        } else {
            self.recv(root, BCAST_TAG)
        }
    }
}

/// A world of `size` ranks connected all-to-all.
pub struct World;

impl World {
    /// Build the communicators of a world of `size` ranks over `link`.
    ///
    /// Each communicator charges its modelled costs to its own fresh clock;
    /// the caller collects them after the ranks finish.
    pub fn communicators(size: usize, link: LinkModel) -> Vec<Communicator> {
        assert!(size > 0, "world size must be at least 1");
        let channels: Vec<(Sender<Message>, Receiver<Message>)> =
            (0..size).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Message>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, receiver))| Communicator {
                rank,
                size,
                link: link.clone(),
                clock: SimClock::new(),
                senders: senders.clone(),
                receiver,
                stash: Mutex::new(HashMap::new()),
                // MPI runtime start-up: process launch + connection setup,
                // a small constant per rank.
                init_cost: Duration::from_millis(40),
            })
            .collect()
    }

    /// Run `body` on every rank of a world of `size` ranks (one thread per
    /// rank) and return the per-rank results together with each rank's
    /// modelled phase breakdown.
    pub fn run<T, F>(size: usize, link: LinkModel, body: F) -> Vec<(T, PhaseBreakdown)>
    where
        T: Send + 'static,
        F: Fn(&Communicator) -> T + Send + Sync + 'static,
    {
        let comms = World::communicators(size, link);
        let body = Arc::new(body);
        let mut handles = Vec::new();
        for comm in comms {
            let body = Arc::clone(&body);
            handles.push(std::thread::spawn(move || {
                let result = body(&comm);
                (result, comm.clock().breakdown())
            }));
        }
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let results = World::run(2, LinkModel::ideal(), |comm| {
            comm.init();
            if comm.rank() == 0 {
                comm.send(1, 7, b"hello").unwrap();
                comm.recv(1, 8).unwrap()
            } else {
                let msg = comm.recv(0, 7).unwrap();
                comm.send(0, 8, &msg).unwrap();
                msg
            }
        });
        assert_eq!(results[0].0, b"hello".to_vec());
        assert_eq!(results[1].0, b"hello".to_vec());
        assert!(results.iter().all(|(_, b)| b.initialization > Duration::ZERO));
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = World::run(2, LinkModel::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"first").unwrap();
                comm.send(1, 2, b"second").unwrap();
                Vec::new()
            } else {
                // Receive in the opposite order.
                let second = comm.recv(0, 2).unwrap();
                let first = comm.recv(0, 1).unwrap();
                [first, second].concat()
            }
        });
        assert_eq!(results[1].0, b"firstsecond".to_vec());
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = World::run(4, LinkModel::gigabit_ethernet(), |comm| {
            let payload = vec![comm.rank() as u8; 1024];
            comm.gather(&payload).unwrap()
        });
        let root = results[0].0.as_ref().unwrap();
        assert_eq!(root.len(), 4);
        for (rank, part) in root.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8; 1024]);
        }
        assert!(results.iter().skip(1).all(|(r, _)| r.is_none()));
        // The root paid modelled transfer time for the three received parts.
        assert!(results[0].1.data_transfer > Duration::ZERO);
    }

    #[test]
    fn bcast_reaches_every_rank() {
        let results = World::run(3, LinkModel::ideal(), |comm| {
            if comm.rank() == 1 {
                comm.bcast(1, Some(b"config")).unwrap()
            } else {
                comm.bcast(1, None).unwrap()
            }
        });
        assert!(results.iter().all(|(r, _)| r == b"config"));
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        let results = World::run(4, LinkModel::ideal(), |comm| {
            comm.barrier().unwrap();
            comm.rank()
        });
        let mut ranks: Vec<usize> = results.iter().map(|(r, _)| *r).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let comms = World::communicators(2, LinkModel::ideal());
        assert!(matches!(comms[0].send(5, 0, b"x"), Err(MpiError::InvalidRank(5))));
        assert!(matches!(comms[0].recv(9, 0), Err(MpiError::InvalidRank(9))));
    }

    #[test]
    #[should_panic(expected = "world size must be at least 1")]
    fn zero_sized_world_panics() {
        let _ = World::communicators(0, LinkModel::ideal());
    }
}
