//! The WWU API extension (Listing 1 of the paper), as free functions.
//!
//! dOpenCL adds three functions to the OpenCL API so that applications can
//! change the set of available devices at runtime:
//!
//! ```c
//! cl_server_WWU clConnectServerWWU(const char *url, cl_int *errcode);
//! cl_int       clDisconnectServerWWU(cl_server_WWU server);
//! cl_int       clGetServerInfoWWU(cl_server_WWU server, cl_server_info param_name, ...);
//! ```
//!
//! The idiomatic Rust API lives on [`Client`]
//! ([`Client::connect_server`], [`Client::disconnect_server`],
//! [`Client::server_info`]); the aliases here mirror the listing's names for
//! readers following along with the paper.

use crate::client::{Client, ServerId};
use crate::error::Result;
use crate::protocol::ServerInfo;

/// `clConnectServerWWU`: connect to a server, adding its devices to the
/// application's device list.
pub fn cl_connect_server_wwu(client: &Client, url: &str) -> Result<ServerId> {
    client.connect_server(url)
}

/// `clDisconnectServerWWU`: disconnect a server; its devices' states become
/// "unavailable".
pub fn cl_disconnect_server_wwu(client: &Client, server: ServerId) -> Result<()> {
    client.disconnect_server(server)
}

/// `clGetServerInfoWWU`: query information about a server.
pub fn cl_get_server_info_wwu(client: &Client, server: ServerId) -> Result<ServerInfo> {
    client.server_info(server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LocalCluster;
    use gcf::LinkModel;
    use vocl::Platform;

    #[test]
    fn extension_functions_mirror_client_methods() {
        let mut cluster = LocalCluster::new(LinkModel::ideal());
        let daemon = cluster.add_node("srv", &Platform::test_platform(1)).unwrap();
        let client = cluster.detached_client("app", gcf::SimClock::new());
        let server = cl_connect_server_wwu(&client, daemon.address()).unwrap();
        let info = cl_get_server_info_wwu(&client, server).unwrap();
        assert_eq!(info.device_count, 1);
        cl_disconnect_server_wwu(&client, server).unwrap();
        assert!(client.devices().is_empty());
    }
}
