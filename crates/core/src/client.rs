//! The dOpenCL client driver.
//!
//! The client driver is the library an OpenCL application links against
//! (Section III-B of the paper).  It presents all devices of every connected
//! server as if they were installed locally (the *dOpenCL platform*,
//! Section III-E), intercepts API calls, and forwards them to the daemons
//! owning the referenced remote objects.  Object stubs are identified by
//! client-assigned [`ObjectId`]s; *compound stubs* (contexts, programs,
//! kernels, buffers, events) replicate calls to every participating server
//! and keep the copies consistent:
//!
//! * memory objects through the directory-based MSI protocol in
//!   [`crate::coherence`], and
//! * events through the original-event/user-event completion-forwarding
//!   protocol (the daemon notifies the client on completion, the client
//!   completes the user events it created on the other servers).
//!
//! All modelled costs (network transfer times from the [`LinkModel`],
//! remote PCIe/bus and kernel execution times reported by the daemons) are
//! charged to the client's [`SimClock`], split into the initialization /
//! execution / data-transfer phases the paper's figures use.

use crate::coherence::{BufferDirectory, ValidationPlan};
use crate::config;
use crate::error::{DclError, Result};
use crate::protocol::{
    DeviceDescriptor, Notification, ObjectId, Request, Response, ServerInfo, WireNdRange,
    WireValue,
};
use gcf::rpc::{Endpoint, EndpointHandler};
use gcf::simtime::{Phase, SimClock};
use gcf::transport::Transport;
use gcf::wire::{Decode, Encode};
use gcf::LinkModel;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use vocl::{NdRange, Value};

/// Identifies a connected server within one client (index into the server
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(pub usize);

/// A remote device stub (simple stub: owned by exactly one server).
#[derive(Debug, Clone)]
pub struct Device {
    server: usize,
    descriptor: DeviceDescriptor,
}

impl Device {
    /// The server this device lives on.
    pub fn server(&self) -> ServerId {
        ServerId(self.server)
    }

    /// Daemon-local device id.
    pub fn remote_id(&self) -> ObjectId {
        self.descriptor.remote_id
    }

    /// `CL_DEVICE_NAME`.
    pub fn name(&self) -> &str {
        &self.descriptor.name
    }

    /// `CL_DEVICE_VENDOR`.
    pub fn vendor(&self) -> &str {
        &self.descriptor.vendor
    }

    /// `CL_DEVICE_TYPE` as a string (`CPU`, `GPU`, ...).
    pub fn device_type(&self) -> &str {
        &self.descriptor.device_type
    }

    /// `CL_DEVICE_MAX_COMPUTE_UNITS`.
    pub fn compute_units(&self) -> u32 {
        self.descriptor.compute_units
    }

    /// `CL_DEVICE_GLOBAL_MEM_SIZE`.
    pub fn global_mem_bytes(&self) -> u64 {
        self.descriptor.global_mem_bytes
    }
}

/// A context stub (compound stub spanning every server that hosts one of its
/// devices).
#[derive(Debug, Clone)]
pub struct Context {
    id: ObjectId,
    devices: Vec<Device>,
    servers: Vec<usize>,
}

impl Context {
    /// The context's devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The servers participating in this context.
    pub fn servers(&self) -> Vec<ServerId> {
        self.servers.iter().copied().map(ServerId).collect()
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }
}

/// A buffer stub (compound stub with an MSI coherence directory).
#[derive(Debug, Clone)]
pub struct Buffer {
    id: ObjectId,
    size: usize,
    directory: Arc<Mutex<BufferDirectory>>,
}

impl Buffer {
    /// Buffer size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Current coherence state of the copy on `server` (for tests and
    /// diagnostics).
    pub fn coherence_state(&self, server: ServerId) -> crate::coherence::CoherenceState {
        self.directory.lock().server_state(server.0)
    }
}

/// A program stub (compound stub).
#[derive(Debug, Clone)]
pub struct Program {
    id: ObjectId,
    servers: Vec<usize>,
    source_len: usize,
}

impl Program {
    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }
}

/// A kernel stub (compound stub).  Remembers which arguments are buffers so
/// kernel launches can run the coherence protocol for them.
#[derive(Debug, Clone)]
pub struct Kernel {
    id: ObjectId,
    name: String,
    servers: Vec<usize>,
    buffer_args: Arc<Mutex<HashMap<u32, Buffer>>>,
}

impl Kernel {
    /// Kernel function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }
}

/// A command queue stub (simple stub: tied to one device on one server).
#[derive(Debug, Clone)]
pub struct CommandQueue {
    id: ObjectId,
    server: usize,
    device: Device,
    context_servers: Vec<usize>,
}

impl CommandQueue {
    /// The device this queue feeds.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The server the queue lives on.
    pub fn server(&self) -> ServerId {
        ServerId(self.server)
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }
}

struct EventRecord {
    owner: usize,
    user_event_servers: Vec<usize>,
    phase: Phase,
    status: Mutex<Option<i32>>,
    modeled: Mutex<Duration>,
    cond: Condvar,
}

impl EventRecord {
    fn new(owner: usize, user_event_servers: Vec<usize>, phase: Phase) -> Arc<Self> {
        Arc::new(EventRecord {
            owner,
            user_event_servers,
            phase,
            status: Mutex::new(None),
            modeled: Mutex::new(Duration::ZERO),
            cond: Condvar::new(),
        })
    }
}

/// An event stub (compound stub: the original event lives on the owning
/// server, user events replace it on the others).
#[derive(Clone)]
pub struct Event {
    id: ObjectId,
    record: Arc<EventRecord>,
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id)
            .field("status", &*self.record.status.lock())
            .finish()
    }
}

impl Event {
    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The server owning the original event.
    pub fn owner(&self) -> ServerId {
        ServerId(self.record.owner)
    }

    /// Whether the event reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        self.record.status.lock().is_some()
    }

    /// Block until the command completes; errors if the command failed.
    pub fn wait(&self) -> Result<()> {
        let mut status = self.record.status.lock();
        while status.is_none() {
            self.record.cond.wait(&mut status);
        }
        match status.unwrap() {
            0 => Ok(()),
            code => Err(DclError::Cl(vocl::ClError::ExecutionFailure(format!(
                "remote command failed with status {code}"
            )))),
        }
    }

    /// Wait with a timeout; `Ok(false)` means it expired.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<bool> {
        let mut status = self.record.status.lock();
        let deadline = std::time::Instant::now() + timeout;
        while status.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            self.record.cond.wait_for(&mut status, deadline - now);
        }
        match status.unwrap() {
            0 => Ok(true),
            code => Err(DclError::Cl(vocl::ClError::ExecutionFailure(format!(
                "remote command failed with status {code}"
            )))),
        }
    }

    /// Modelled duration reported by the owning server (kernel execution or
    /// PCIe transfer time).
    pub fn modeled_duration(&self) -> Duration {
        *self.record.modeled.lock()
    }
}

struct ServerConn {
    name: String,
    endpoint: Arc<Endpoint>,
    devices: Vec<DeviceDescriptor>,
}

struct ClientInner {
    name: String,
    transport: Arc<dyn Transport>,
    link: LinkModel,
    clock: SimClock,
    next_id: AtomicU64,
    servers: Mutex<Vec<Option<Arc<ServerConn>>>>,
    events: Mutex<HashMap<ObjectId, Arc<EventRecord>>>,
    auth_id: Mutex<Option<String>>,
}

impl ClientInner {
    fn server(&self, index: usize) -> Result<Arc<ServerConn>> {
        self.servers
            .lock()
            .get(index)
            .and_then(|s| s.clone())
            .ok_or_else(|| DclError::ServerUnavailable(format!("server #{index}")))
    }

    fn allocate_id(&self) -> ObjectId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn complete_event(&self, event_id: ObjectId, status: i32, modeled_nanos: u64) {
        let record = self.events.lock().get(&event_id).cloned();
        let Some(record) = record else { return };
        let modeled = Duration::from_nanos(modeled_nanos);
        self.clock.charge(record.phase, modeled);
        {
            let mut slot = record.status.lock();
            if slot.is_none() {
                *slot = Some(status);
                *record.modeled.lock() = modeled;
                record.cond.notify_all();
            }
        }
        // Event consistency: complete the user events on every other server.
        //
        // This runs on the notification-receiver thread of the owning
        // server's endpoint.  The completions are sent from a detached
        // thread so that this receiver thread never blocks waiting for a
        // response from another server whose own receiver thread may, at the
        // same moment, be forwarding a completion towards us (the classic
        // cross-forwarding deadlock).
        if record.user_event_servers.is_empty() {
            return;
        }
        let servers = record.user_event_servers.clone();
        let connections: Vec<_> = servers
            .iter()
            .filter_map(|server| self.server(*server).ok())
            .collect();
        std::thread::Builder::new()
            .name("dcl-event-forward".to_string())
            .spawn(move || {
                for conn in connections {
                    let request = Request::SetUserEventComplete { event_id };
                    let _ = conn.endpoint.call(request.to_bytes());
                }
            })
            .ok();
    }
}

struct ClientHandler {
    inner: Weak<ClientInner>,
}

impl EndpointHandler for ClientHandler {
    fn handle_request(&self, _payload: &[u8]) -> Vec<u8> {
        // Daemons never issue requests to the client in the current
        // protocol; answer with an empty payload.
        Vec::new()
    }

    fn handle_notification(&self, payload: &[u8]) {
        let Some(inner) = self.inner.upgrade() else { return };
        let Ok(notification) = Notification::from_bytes(payload) else { return };
        match notification {
            Notification::EventCompleted { event_id, status, modeled_nanos, .. } => {
                inner.complete_event(event_id, status, modeled_nanos);
            }
        }
    }
}

/// The dOpenCL client driver: the application-facing entry point.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ClientInner>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("name", &self.inner.name)
            .field("servers", &self.inner.servers.lock().iter().filter(|s| s.is_some()).count())
            .finish()
    }
}

impl Client {
    /// Create a client driver that reaches its servers through `transport`
    /// over a network modelled by `link`, charging modelled time to `clock`.
    pub fn new(
        name: impl Into<String>,
        transport: Arc<dyn Transport>,
        link: LinkModel,
        clock: SimClock,
    ) -> Client {
        Client {
            inner: Arc::new(ClientInner {
                name: name.into(),
                transport,
                link,
                clock,
                next_id: AtomicU64::new(1),
                servers: Mutex::new(Vec::new()),
                events: Mutex::new(HashMap::new()),
                auth_id: Mutex::new(None),
            }),
        }
    }

    /// The dOpenCL platform name (`CL_PLATFORM_NAME` of the uniform platform
    /// of Section III-E).
    pub fn platform_name(&self) -> &'static str {
        "dOpenCL"
    }

    /// The dOpenCL platform vendor.
    pub fn platform_vendor(&self) -> &'static str {
        "University of Muenster (reproduction)"
    }

    /// The simulation clock this client charges modelled time to.
    pub fn clock(&self) -> SimClock {
        self.inner.clock.clone()
    }

    /// The link model used between this client and its servers.
    pub fn link(&self) -> LinkModel {
        self.inner.link.clone()
    }

    /// Set the lease authentication id obtained from the device manager
    /// (presented to every server connected afterwards).
    pub fn set_auth_id(&self, auth_id: Option<String>) {
        *self.inner.auth_id.lock() = auth_id;
    }

    // ----- server management (Listing 1: the WWU API extension) -----------

    /// `clConnectServerWWU`: connect to the daemon at `address`, adding its
    /// devices to the application's device list.
    pub fn connect_server(&self, address: &str) -> Result<ServerId> {
        let conn = self.inner.transport.connect(address)?;
        let handler = Arc::new(ClientHandler { inner: Arc::downgrade(&self.inner) });
        let endpoint = Endpoint::new(conn, handler, format!("client-{}", self.inner.name));

        let hello = Request::Hello {
            client_name: self.inner.name.clone(),
            auth_id: self.inner.auth_id.lock().clone(),
        };
        self.charge_message(Phase::Initialization, &hello);
        let response = Response::from_bytes(&endpoint.call(hello.to_bytes())?)
            .map_err(|e| DclError::Protocol(e.to_string()))?;
        response.into_result()?;

        let list_req = Request::GetDeviceList;
        self.charge_message(Phase::Initialization, &list_req);
        let response = Response::from_bytes(&endpoint.call(list_req.to_bytes())?)
            .map_err(|e| DclError::Protocol(e.to_string()))?;
        let devices = match response.into_result()? {
            Response::DeviceList { devices } => devices,
            other => return Err(DclError::Protocol(format!("unexpected response {other:?}"))),
        };

        let mut servers = self.inner.servers.lock();
        let index = servers.len();
        servers.push(Some(Arc::new(ServerConn {
            name: address.to_string(),
            endpoint,
            devices,
        })));
        Ok(ServerId(index))
    }

    /// Connect to every server listed in a configuration file's contents
    /// (Listing 2), as the automatic connection mechanism does during
    /// application initialization.
    pub fn connect_from_config(&self, contents: &str) -> Result<Vec<ServerId>> {
        let mut ids = Vec::new();
        for entry in config::parse_server_list(contents)? {
            ids.push(self.connect_server(&entry.address())?);
        }
        Ok(ids)
    }

    /// `clDisconnectServerWWU`: disconnect a server; its devices become
    /// unavailable.
    pub fn disconnect_server(&self, server: ServerId) -> Result<()> {
        let conn = self.inner.server(server.0)?;
        let request = Request::Disconnect;
        self.charge_message(Phase::Initialization, &request);
        let _ = conn.endpoint.call(request.to_bytes());
        conn.endpoint.close();
        self.inner.servers.lock()[server.0] = None;
        Ok(())
    }

    /// `clGetServerInfoWWU`: query information about a connected server.
    pub fn server_info(&self, server: ServerId) -> Result<ServerInfo> {
        let response = self.call_server(server.0, Request::GetServerInfo, Phase::Initialization)?;
        match response {
            Response::ServerInfo(info) => Ok(info),
            other => Err(DclError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Ids of the currently connected servers.
    pub fn servers(&self) -> Vec<ServerId> {
        self.inner
            .servers
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| ServerId(i)))
            .collect()
    }

    /// All devices of all connected servers, merged into the single device
    /// list of the dOpenCL platform.
    pub fn devices(&self) -> Vec<Device> {
        let servers = self.inner.servers.lock();
        let mut out = Vec::new();
        for (index, server) in servers.iter().enumerate() {
            if let Some(server) = server {
                for d in &server.devices {
                    out.push(Device { server: index, descriptor: d.clone() });
                }
            }
        }
        out
    }

    /// Devices of a given type (`"CPU"`, `"GPU"`, ...).
    pub fn devices_of_type(&self, device_type: &str) -> Vec<Device> {
        self.devices()
            .into_iter()
            .filter(|d| d.device_type().eq_ignore_ascii_case(device_type))
            .collect()
    }

    // ----- object creation (compound stubs) --------------------------------

    /// `clCreateContext` over any mix of devices from any servers.
    pub fn create_context(&self, devices: &[Device]) -> Result<Context> {
        if devices.is_empty() {
            return Err(DclError::InvalidArgument("a context needs at least one device".into()));
        }
        let id = self.inner.allocate_id();
        let mut per_server: HashMap<usize, Vec<ObjectId>> = HashMap::new();
        for d in devices {
            per_server.entry(d.server).or_default().push(d.descriptor.remote_id);
        }
        let mut servers: Vec<usize> = per_server.keys().copied().collect();
        servers.sort_unstable();
        for (&server, device_ids) in &per_server {
            self.call_server(
                server,
                Request::CreateContext { context_id: id, devices: device_ids.clone() },
                Phase::Initialization,
            )?;
        }
        Ok(Context { id, devices: devices.to_vec(), servers })
    }

    /// `clCreateCommandQueue` for `device` within `context`.
    pub fn create_command_queue(&self, context: &Context, device: &Device) -> Result<CommandQueue> {
        if !context.devices.iter().any(|d| {
            d.server == device.server && d.descriptor.remote_id == device.descriptor.remote_id
        }) {
            return Err(DclError::InvalidArgument(
                "the device is not part of the context".into(),
            ));
        }
        let id = self.inner.allocate_id();
        self.call_server(
            device.server,
            Request::CreateCommandQueue {
                queue_id: id,
                context_id: context.id,
                device: device.descriptor.remote_id,
            },
            Phase::Initialization,
        )?;
        Ok(CommandQueue {
            id,
            server: device.server,
            device: device.clone(),
            context_servers: context.servers.clone(),
        })
    }

    /// `clCreateBuffer` of `size` bytes.
    pub fn create_buffer(&self, context: &Context, size: usize) -> Result<Buffer> {
        if size == 0 {
            return Err(DclError::InvalidArgument("buffer size must be non-zero".into()));
        }
        let id = self.inner.allocate_id();
        for &server in &context.servers {
            self.call_server(
                server,
                Request::CreateBuffer {
                    buffer_id: id,
                    context_id: context.id,
                    size: size as u64,
                    readable: true,
                    writable: true,
                },
                Phase::Initialization,
            )?;
        }
        Ok(Buffer {
            id,
            size,
            directory: Arc::new(Mutex::new(BufferDirectory::new(
                context.servers.iter().copied(),
                size,
            ))),
        })
    }

    /// `clCreateProgramWithSource`.
    pub fn create_program_with_source(&self, context: &Context, source: &str) -> Result<Program> {
        let id = self.inner.allocate_id();
        for &server in &context.servers {
            // Program code is shipped to every server: charge the transfer.
            self.inner.clock.charge(
                Phase::Initialization,
                self.inner.link.transfer_time(source.len() as u64),
            );
            self.call_server(
                server,
                Request::CreateProgramWithSource {
                    program_id: id,
                    context_id: context.id,
                    source: source.to_string(),
                },
                Phase::Initialization,
            )?;
        }
        Ok(Program { id, servers: context.servers.clone(), source_len: source.len() })
    }

    /// `clCreateProgramWithBuiltInKernels` (OpenCL 1.2-style), used by the
    /// evaluation workloads for their throughput-critical kernels.
    pub fn create_program_with_built_in_kernels(
        &self,
        context: &Context,
        names: &str,
    ) -> Result<Program> {
        let id = self.inner.allocate_id();
        for &server in &context.servers {
            self.call_server(
                server,
                Request::CreateProgramWithBuiltInKernels {
                    program_id: id,
                    context_id: context.id,
                    names: names.to_string(),
                },
                Phase::Initialization,
            )?;
        }
        Ok(Program { id, servers: context.servers.clone(), source_len: 0 })
    }

    /// `clBuildProgram` on every participating server.
    pub fn build_program(&self, program: &Program) -> Result<()> {
        for &server in &program.servers {
            match self.call_server(server, Request::BuildProgram { program_id: program.id }, Phase::Initialization) {
                Ok(_) => {}
                Err(e) => {
                    let log = self.get_build_log(program).unwrap_or_default();
                    return Err(DclError::Cl(vocl::ClError::BuildProgramFailure(format!(
                        "{e}\n{log}"
                    ))));
                }
            }
        }
        let _ = program.source_len;
        Ok(())
    }

    /// `clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)` from the first server.
    pub fn get_build_log(&self, program: &Program) -> Result<String> {
        let server = *program
            .servers
            .first()
            .ok_or_else(|| DclError::InvalidArgument("program has no servers".into()))?;
        match self.call_server(server, Request::GetBuildLog { program_id: program.id }, Phase::Initialization)? {
            Response::BuildLog { log } => Ok(log),
            other => Err(DclError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// `clCreateKernel`.
    pub fn create_kernel(&self, program: &Program, name: &str) -> Result<Kernel> {
        let id = self.inner.allocate_id();
        for &server in &program.servers {
            self.call_server(
                server,
                Request::CreateKernel { kernel_id: id, program_id: program.id, name: name.to_string() },
                Phase::Initialization,
            )?;
        }
        Ok(Kernel {
            id,
            name: name.to_string(),
            servers: program.servers.clone(),
            buffer_args: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// `clSetKernelArg` with a by-value argument.
    pub fn set_kernel_arg_scalar(&self, kernel: &Kernel, index: u32, value: Value) -> Result<()> {
        kernel.buffer_args.lock().remove(&index);
        for &server in &kernel.servers {
            self.call_server(
                server,
                Request::SetKernelArgScalar {
                    kernel_id: kernel.id,
                    index,
                    value: WireValue(value.clone()),
                },
                Phase::Initialization,
            )?;
        }
        Ok(())
    }

    /// `clSetKernelArg` with a buffer argument.
    pub fn set_kernel_arg_buffer(&self, kernel: &Kernel, index: u32, buffer: &Buffer) -> Result<()> {
        for &server in &kernel.servers {
            self.call_server(
                server,
                Request::SetKernelArgBuffer { kernel_id: kernel.id, index, buffer_id: buffer.id },
                Phase::Initialization,
            )?;
        }
        kernel.buffer_args.lock().insert(index, buffer.clone());
        Ok(())
    }

    /// `clSetKernelArg` with a `__local` memory argument.
    pub fn set_kernel_arg_local(&self, kernel: &Kernel, index: u32, bytes: usize) -> Result<()> {
        kernel.buffer_args.lock().remove(&index);
        for &server in &kernel.servers {
            self.call_server(
                server,
                Request::SetKernelArgLocal { kernel_id: kernel.id, index, bytes: bytes as u64 },
                Phase::Initialization,
            )?;
        }
        Ok(())
    }

    // ----- command execution -----------------------------------------------

    /// `clEnqueueWriteBuffer`: upload `data` into `buffer` through `queue`.
    pub fn enqueue_write_buffer(
        &self,
        queue: &CommandQueue,
        buffer: &Buffer,
        offset: usize,
        data: &[u8],
        wait_list: &[Event],
    ) -> Result<Event> {
        let server = queue.server;
        let conn = self.inner.server(server)?;
        let event_id = self.inner.allocate_id();
        let stream_id = conn.endpoint.allocate_id();

        // Stream-based communication: the payload crosses the network.
        self.inner
            .clock
            .charge(Phase::DataTransfer, self.inner.link.transfer_time(data.len() as u64));
        conn.endpoint.send_bulk(stream_id, data)?;

        let request = Request::EnqueueWriteBuffer {
            queue_id: queue.id,
            buffer_id: buffer.id,
            offset: offset as u64,
            size: data.len() as u64,
            event_id,
            stream_id,
            wait_events: wait_list.iter().map(|e| e.id).collect(),
        };
        let event = self.register_event(event_id, server, &queue.context_servers, Phase::DataTransfer)?;
        self.call_server_on(&conn, &request, Phase::DataTransfer)?;
        buffer.directory.lock().record_host_write(server, offset, data);
        Ok(event)
    }

    /// `clEnqueueReadBuffer` (blocking): download `len` bytes at `offset`.
    ///
    /// Returns the data together with the completion event (already
    /// terminal), mirroring a blocking `clEnqueueReadBuffer` call.
    pub fn enqueue_read_buffer(
        &self,
        queue: &CommandQueue,
        buffer: &Buffer,
        offset: usize,
        len: usize,
        wait_list: &[Event],
    ) -> Result<(Vec<u8>, Event)> {
        let server = queue.server;
        self.ensure_valid_on(server, buffer)?;
        let conn = self.inner.server(server)?;
        let event_id = self.inner.allocate_id();
        let stream_id = conn.endpoint.allocate_id();
        let request = Request::EnqueueReadBuffer {
            queue_id: queue.id,
            buffer_id: buffer.id,
            offset: offset as u64,
            size: len as u64,
            event_id,
            stream_id,
            wait_events: wait_list.iter().map(|e| e.id).collect(),
        };
        let event = self.register_event(event_id, server, &queue.context_servers, Phase::DataTransfer)?;
        self.call_server_on(&conn, &request, Phase::DataTransfer)?;
        let data = conn.endpoint.wait_bulk(stream_id, Duration::from_secs(300))?;
        // Stream-based communication back to the client.
        self.inner
            .clock
            .charge(Phase::DataTransfer, self.inner.link.transfer_time(len as u64));
        buffer.directory.lock().record_host_read(server, offset, &data);
        Ok((data, event))
    }

    /// `clEnqueueNDRangeKernel`.
    pub fn enqueue_nd_range_kernel(
        &self,
        queue: &CommandQueue,
        kernel: &Kernel,
        range: NdRange,
        wait_list: &[Event],
    ) -> Result<Event> {
        let server = queue.server;
        // Memory consistency: the target server needs a valid copy of every
        // memory object the kernel may read.
        let buffer_args: Vec<Buffer> = kernel.buffer_args.lock().values().cloned().collect();
        for buffer in &buffer_args {
            self.ensure_valid_on(server, buffer)?;
        }
        let conn = self.inner.server(server)?;
        let event_id = self.inner.allocate_id();
        let request = Request::EnqueueNdRange {
            queue_id: queue.id,
            kernel_id: kernel.id,
            event_id,
            range: WireNdRange(range),
            wait_events: wait_list.iter().map(|e| e.id).collect(),
        };
        let event = self.register_event(event_id, server, &queue.context_servers, Phase::Execution)?;
        self.call_server_on(&conn, &request, Phase::Execution)?;
        // The kernel may have written any of its buffer arguments.
        for buffer in &buffer_args {
            buffer.directory.lock().record_device_write(server);
        }
        Ok(event)
    }

    /// `clEnqueueMarkerWithWaitList`.
    pub fn enqueue_marker(&self, queue: &CommandQueue, wait_list: &[Event]) -> Result<Event> {
        let conn = self.inner.server(queue.server)?;
        let event_id = self.inner.allocate_id();
        let request = Request::EnqueueMarker {
            queue_id: queue.id,
            event_id,
            wait_events: wait_list.iter().map(|e| e.id).collect(),
        };
        let event = self.register_event(event_id, queue.server, &queue.context_servers, Phase::Execution)?;
        self.call_server_on(&conn, &request, Phase::Execution)?;
        Ok(event)
    }

    /// `clFinish`: block until every command previously enqueued on `queue`
    /// has completed.
    pub fn finish(&self, queue: &CommandQueue) -> Result<()> {
        let marker = self.enqueue_marker(queue, &[])?;
        marker.wait()
    }

    /// `clWaitForEvents`.
    pub fn wait_for_events(&self, events: &[Event]) -> Result<()> {
        for e in events {
            e.wait()?;
        }
        Ok(())
    }

    // ----- internals --------------------------------------------------------

    fn register_event(
        &self,
        event_id: ObjectId,
        owner: usize,
        context_servers: &[usize],
        phase: Phase,
    ) -> Result<Event> {
        // Event consistency (Section III-D): create user events as
        // replacements for the original event on every other server of the
        // context.
        let mut user_event_servers = Vec::new();
        for &server in context_servers {
            if server != owner {
                self.call_server(server, Request::CreateUserEvent { event_id }, Phase::Execution)?;
                user_event_servers.push(server);
            }
        }
        let record = EventRecord::new(owner, user_event_servers, phase);
        self.inner.events.lock().insert(event_id, Arc::clone(&record));
        Ok(Event { id: event_id, record })
    }

    /// Run the MSI validation plan so that `server` holds a valid copy of
    /// `buffer` before a command reads it there.
    fn ensure_valid_on(&self, server: usize, buffer: &Buffer) -> Result<()> {
        let plan = buffer.directory.lock().plan_validation(server);
        match plan {
            ValidationPlan::AlreadyValid => Ok(()),
            ValidationPlan::UploadFromClient => {
                let data = buffer.directory.lock().client_data();
                self.upload_buffer_data(server, buffer, &data)?;
                buffer.directory.lock().record_upload(server);
                Ok(())
            }
            ValidationPlan::FetchThenUpload { source } => {
                let data = self.download_buffer_data(source, buffer)?;
                buffer.directory.lock().record_client_fetch(source, data.clone());
                self.upload_buffer_data(server, buffer, &data)?;
                buffer.directory.lock().record_upload(server);
                Ok(())
            }
        }
    }

    fn upload_buffer_data(&self, server: usize, buffer: &Buffer, data: &[u8]) -> Result<()> {
        let conn = self.inner.server(server)?;
        let stream_id = conn.endpoint.allocate_id();
        self.inner
            .clock
            .charge(Phase::DataTransfer, self.inner.link.transfer_time(data.len() as u64));
        conn.endpoint.send_bulk(stream_id, data)?;
        let request = Request::UploadBufferData {
            buffer_id: buffer.id,
            stream_id,
            size: data.len() as u64,
        };
        match self.call_server_on(&conn, &request, Phase::DataTransfer)? {
            Response::OkTimed { modeled_nanos } => {
                self.inner
                    .clock
                    .charge(Phase::DataTransfer, Duration::from_nanos(modeled_nanos));
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn download_buffer_data(&self, server: usize, buffer: &Buffer) -> Result<Vec<u8>> {
        let conn = self.inner.server(server)?;
        let stream_id = conn.endpoint.allocate_id();
        let request = Request::DownloadBufferData { buffer_id: buffer.id, stream_id };
        let response = self.call_server_on(&conn, &request, Phase::DataTransfer)?;
        if let Response::OkTimed { modeled_nanos } = response {
            self.inner
                .clock
                .charge(Phase::DataTransfer, Duration::from_nanos(modeled_nanos));
        }
        let data = conn.endpoint.wait_bulk(stream_id, Duration::from_secs(300))?;
        self.inner
            .clock
            .charge(Phase::DataTransfer, self.inner.link.transfer_time(data.len() as u64));
        Ok(data)
    }

    fn charge_message(&self, phase: Phase, request: &Request) {
        let size = crate::protocol::request_wire_size(request);
        self.inner.clock.charge(phase, self.inner.link.round_trip_time(size, 64));
    }

    fn call_server(&self, server: usize, request: Request, phase: Phase) -> Result<Response> {
        let conn = self.inner.server(server)?;
        self.call_server_on(&conn, &request, phase)
    }

    fn call_server_on(
        &self,
        conn: &Arc<ServerConn>,
        request: &Request,
        phase: Phase,
    ) -> Result<Response> {
        self.charge_message(phase, request);
        let bytes = conn.endpoint.call(request.to_bytes()).map_err(|e| {
            DclError::ServerUnavailable(format!("{}: {e}", conn.name))
        })?;
        let response =
            Response::from_bytes(&bytes).map_err(|e| DclError::Protocol(e.to_string()))?;
        response.into_result()
    }
}
