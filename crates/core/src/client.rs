//! The dOpenCL client driver: handle-based object API.
//!
//! The client driver is the library an OpenCL application links against
//! (Section III-B of the paper).  It presents all devices of every connected
//! server as if they were installed locally (the *dOpenCL platform*,
//! Section III-E), intercepts API calls, and forwards them to the daemons
//! owning the referenced remote objects.
//!
//! # The object model
//!
//! [`Client`] owns the connection state (server table, event registry,
//! simulation clock) and exposes only *platform-level* operations: server
//! management (the WWU extension of [`crate::ext`]) and device enumeration.
//! Everything else lives on the object that owns the operation, exactly like
//! a native OpenCL binding:
//!
//! ```text
//! Client ──► Context::new(&client, &devices)
//!               │
//!               ├─ context.create_command_queue(&device) ──► CommandQueue
//!               ├─ context.create_buffer(size)           ──► Buffer
//!               └─ context.create_program_with_source(s) ──► Program
//!                     ├─ program.build()
//!                     └─ program.create_kernel(name)     ──► Kernel
//!                           └─ kernel.set_arg(i, arg)
//! ```
//!
//! Enqueue operations are builders on [`CommandQueue`], so new options
//! (batching, async submission) can be added without signature churn:
//!
//! ```text
//! queue.write_buffer(&buf, &data).at_offset(64).after(&[e]).submit()?;
//! let (bytes, event) = queue.read_buffer(&buf).submit()?;
//! queue.launch(&kernel, NdRange::linear(1024)).after(&[e]).submit()?;
//! queue.marker().submit()?;
//! queue.finish()?;
//! ```
//!
//! Every stub holds a weak reference to the client's internals: once the
//! last [`Client`] clone is dropped, using a surviving stub fails with
//! [`DclError::ClientDropped`] instead of panicking or hanging.
//!
//! # Batching & flush semantics
//!
//! Enqueue operations do **not** cross the network one by one.  Each
//! [`CommandQueue`] accumulates its commands client-side and ships the whole
//! run as a single `EnqueueBatch` request — one round trip for N commands
//! instead of N round trips, which is the dominant cost on a
//! gigabit-Ethernet link (Section V of the paper measures exactly this
//! overhead).  Completion comes back asynchronously: the daemon pushes a
//! one-way notification per command that resolves the client-side
//! [`Event`].
//!
//! A queue's pending batch is flushed by:
//!
//! * a **blocking operation** — `write_buffer(..).blocking()`, the blocking
//!   [`ReadBufferOp::submit`], or [`CommandQueue::finish`];
//! * **waiting on an event** — [`Event::wait`], [`Event::wait_timeout`],
//!   [`Event::wait_all`] flush every pending batch of the client first;
//! * a **marker** — [`CommandQueue::marker`] ships the batch so the marker
//!   observes everything enqueued before it;
//! * an explicit [`CommandQueue::flush`] (`clFlush`);
//! * **dropping** the last clone of the queue (nothing enqueued is ever
//!   silently discarded);
//! * coherence traffic that must observe queued commands: validating a
//!   buffer on another server flushes the source/target servers first, and
//!   [`Client::disconnect_server`] flushes the server being disconnected.
//!
//! Ordering within a batch is preserved, and the daemon chains each entry
//! on its queue predecessor, so an entry that fails mid-batch fails every
//! later entry of that queue (wait-list error, status `-14`) while earlier
//! entries stay completed.  Non-blocking reads are available through
//! [`ReadBufferOp::submit_async`], which returns a [`PendingRead`] whose
//! data is collected at [`PendingRead::wait`] time.  [`Client::set_batching`]
//! disables accumulation (every command ships as a batch of one) for A/B
//! measurements, and [`Client::traffic_stats`] exposes the wire-message
//! counters the `fig7`/`fig8` harnesses record.
//!
//! # Migration from the retired `Client` god-object
//!
//! The pre-0.2 API funnelled all ~30 operations through `Client` methods.
//! Those methods remain as `#[deprecated]` forwarding shims for one release;
//! migrate as follows:
//!
//! | old (deprecated) | new |
//! |---|---|
//! | `client.create_context(&devs)` | [`Context::new`]`(&client, &devs)` |
//! | `client.create_command_queue(&ctx, &dev)` | `ctx.create_command_queue(&dev)` |
//! | `client.create_buffer(&ctx, n)` | `ctx.create_buffer(n)` |
//! | `client.create_program_with_source(&ctx, src)` | `ctx.create_program_with_source(src)` |
//! | `client.create_program_with_built_in_kernels(&ctx, names)` | `ctx.create_program_with_built_in_kernels(names)` |
//! | `client.build_program(&prog)` | `prog.build()` |
//! | `client.get_build_log(&prog)` | `prog.build_log()` |
//! | `client.create_kernel(&prog, name)` | `prog.create_kernel(name)` |
//! | `client.set_kernel_arg_scalar(&k, i, v)` | `k.set_arg(i, v)` |
//! | `client.set_kernel_arg_buffer(&k, i, &buf)` | `k.set_arg(i, &buf)` |
//! | `client.set_kernel_arg_local(&k, i, n)` | `k.set_arg(i, Arg::local(n))` |
//! | `client.enqueue_write_buffer(&q, &b, off, data, &ws)` | `q.write_buffer(&b, data).at_offset(off).after(&ws).submit()` |
//! | `client.enqueue_read_buffer(&q, &b, off, len, &ws)` | `q.read_buffer(&b).at_offset(off).len(len).after(&ws).submit()` |
//! | `client.enqueue_nd_range_kernel(&q, &k, r, &ws)` | `q.launch(&k, r).after(&ws).submit()` |
//! | `client.enqueue_marker(&q, &ws)` | `q.marker().after(&ws).submit()` |
//! | `client.finish(&q)` | `q.finish()` |
//! | `client.wait_for_events(&es)` | [`Event::wait_all`]`(&es)` |
//! | `client.devices_of_type("GPU")` | `client.devices_of(DeviceType::Gpu)` |
//!
//! # Consistency protocols
//!
//! *Compound stubs* (contexts, programs, kernels, buffers, events) replicate
//! calls to every participating server and keep the copies consistent:
//!
//! * memory objects through the directory-based MSI protocol in
//!   [`crate::coherence`], and
//! * events through the original-event/user-event completion-forwarding
//!   protocol (the daemon notifies the client on completion, the client
//!   completes the user events it created on the other servers).
//!
//! ## Range coherence
//!
//! The buffer directory tracks validity per **byte range** (an interval map
//! of `range → per-server state`; see the [`crate::coherence`] module docs
//! for the full semantics).  Before a command reads a buffer on a server,
//! the driver asks the directory for a [`crate::coherence::DeltaPlan`] and
//! moves *only the stale ranges*: it downloads the ranges its own copy
//! lacks from their current owners (`DownloadBufferRange`), then uploads
//! the server's stale ranges (`UploadBufferRange`).  Host writes dirty
//! exactly the written range; kernel launches dirty the whole buffer unless
//! the launch declares its access slice with [`LaunchOp::writes_slice`]
//! (or opts out of dirtying entirely with [`LaunchOp::reads_only`]) — which
//! is what lets a buffer be partitioned across daemons, each device owning
//! the slice its launches touch.  When a plan would fragment into more wire
//! operations than the directory's fragmentation cap, it collapses to a
//! whole-buffer transfer.
//!
//! Setting `DCL_COHERENCE=whole` (or [`Client::set_coherence_mode`])
//! restores the pre-range whole-buffer protocol — full-copy transfers on
//! every ownership change — which serves as the differential-testing oracle
//! for the range directory, mirroring the `DCL_INTERP=tree` interpreter
//! oracle.  After a failover to a restarted daemon, the supervisor
//! invalidates only that server's ranges, so re-validation traffic is
//! limited to the ranges that were actually lost.
//!
//! All modelled costs (network transfer times from the [`LinkModel`],
//! remote PCIe/bus and kernel execution times reported by the daemons) are
//! charged to the client's [`SimClock`], split into the initialization /
//! execution / data-transfer phases the paper's figures use.
//!
//! # Failure semantics
//!
//! A server connection can die at any moment (daemon crash, network
//! partition, process kill).  The client driver recovers as follows
//! (Section IV-C of the paper describes the daemon-side half):
//!
//! * **Detection** — every endpoint's receiver thread reports its own death
//!   through a supervisor callback; callers additionally detect death
//!   through failed calls.  Both paths converge on one single-flight
//!   recovery routine per server, so concurrent detections reconnect once.
//! * **Reconnect** — governed by the client's [`FailoverPolicy`]: the
//!   supervisor redials the server's address with exponential backoff
//!   ([`gcf::retry_with_backoff`]) and re-handshakes with a bumped *session
//!   epoch*.  The daemon parks session state by client identity; a `Hello`
//!   with `epoch > 0` adopts the parked state (`resumed = true`) so every
//!   remote object — and the command dedup window — survives the
//!   connection.
//! * **Re-creation** — when the daemon does *not* resume the session (the
//!   daemon process itself was restarted), the client replays its recorded
//!   setup log (context / queue / buffer / program / kernel creation and
//!   kernel-argument calls) against the fresh daemon, then invalidates the
//!   server's buffer copies in the MSI directory.  The next command that
//!   reads a buffer there re-validates it from a surviving copy through the
//!   normal [`crate::coherence::DeltaPlan`] machinery — in range mode
//!   re-uploading only the ranges that are stale there.
//! * **Exactly-once replay** — every batch entry carries a client-generated
//!   `command_id`.  A batch whose response was lost is re-sent verbatim
//!   after the reconnect; the daemon's bounded dedup window recognises ids
//!   it already executed, suppresses re-execution, and re-arms the
//!   completion notification instead.
//! * **Giving up** — if redialling exhausts the backoff budget and
//!   [`FailoverPolicy::drop_lost_servers`] is set, the server is dropped
//!   like an explicit `clDisconnectServerWWU`: its outstanding events fail
//!   with the wait-list error (`-14`), its pending batches are discarded,
//!   and the application continues on the surviving servers.  Otherwise the
//!   failure surfaces as [`DclError::ServerUnavailable`].
//!
//! Bulk transfers that were *in flight* across the failure are not
//! replayed: a write's stream data and a read's reply stream die with the
//! connection, so the affected events fail (`-14`) and the operation must
//! be re-issued by the application.  Everything request/response-shaped —
//! including whole command batches — is retried transparently.

use crate::coherence::{BufferDirectory, ByteRange, CoherenceMode};
use crate::config;
use crate::error::{DclError, Result};
use crate::protocol::{
    BatchCommand, BatchEntry, DeviceDescriptor, Notification, ObjectId, Request, Response,
    ServerInfo, SessionInfo, WireNdRange, WireValue,
};
use gcf::retry::{retry_with_backoff, Backoff};
use gcf::rpc::{Endpoint, EndpointHandler, TrafficStats};
use gcf::simtime::{Phase, SimClock};
use gcf::transport::Transport;
use gcf::wire::{Decode, Encode};
use gcf::LinkModel;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use vocl::{NdRange, Value};

/// Identifies a connected server within one client (index into the server
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(pub usize);

/// `CL_DEVICE_TYPE_*` as seen through the dOpenCL platform.
///
/// Replaces the stringly-typed `devices_of_type("GPU")` filter of the old
/// API; parse daemon-reported descriptor strings with [`DeviceType::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// `CL_DEVICE_TYPE_CPU`
    Cpu,
    /// `CL_DEVICE_TYPE_GPU`
    Gpu,
    /// `CL_DEVICE_TYPE_ACCELERATOR`
    Accelerator,
    /// `CL_DEVICE_TYPE_CUSTOM` — anything a daemon reports that is not one
    /// of the three standard kinds.
    Custom,
}

impl DeviceType {
    /// Parse a descriptor string (`"CPU"`, `"GPU"`, `"ACCELERATOR"`, case
    /// insensitive); anything else maps to [`DeviceType::Custom`].
    pub fn parse(s: &str) -> DeviceType {
        match s.to_ascii_uppercase().as_str() {
            "CPU" => DeviceType::Cpu,
            "GPU" => DeviceType::Gpu,
            "ACCELERATOR" => DeviceType::Accelerator,
            _ => DeviceType::Custom,
        }
    }

    /// The canonical descriptor spelling (`"CPU"`, `"GPU"`, ...).
    pub fn as_str(&self) -> &'static str {
        match self {
            DeviceType::Cpu => "CPU",
            DeviceType::Gpu => "GPU",
            DeviceType::Accelerator => "ACCELERATOR",
            DeviceType::Custom => "CUSTOM",
        }
    }
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A remote device stub (simple stub: owned by exactly one server).
#[derive(Debug, Clone)]
pub struct Device {
    server: usize,
    descriptor: DeviceDescriptor,
}

impl Device {
    /// The server this device lives on.
    pub fn server(&self) -> ServerId {
        ServerId(self.server)
    }

    /// Daemon-local device id.
    pub fn remote_id(&self) -> ObjectId {
        self.descriptor.remote_id
    }

    /// `CL_DEVICE_NAME`.
    pub fn name(&self) -> &str {
        &self.descriptor.name
    }

    /// `CL_DEVICE_VENDOR`.
    pub fn vendor(&self) -> &str {
        &self.descriptor.vendor
    }

    /// `CL_DEVICE_TYPE`.
    pub fn kind(&self) -> DeviceType {
        DeviceType::parse(&self.descriptor.device_type)
    }

    /// `CL_DEVICE_TYPE` as the raw descriptor string (`CPU`, `GPU`, ...).
    #[deprecated(since = "0.2.0", note = "use `kind()` and the `DeviceType` enum instead")]
    pub fn device_type(&self) -> &str {
        &self.descriptor.device_type
    }

    /// `CL_DEVICE_MAX_COMPUTE_UNITS`.
    pub fn compute_units(&self) -> u32 {
        self.descriptor.compute_units
    }

    /// `CL_DEVICE_GLOBAL_MEM_SIZE`.
    pub fn global_mem_bytes(&self) -> u64 {
        self.descriptor.global_mem_bytes
    }
}

/// A context stub (compound stub spanning every server that hosts one of its
/// devices).  Created with [`Context::new`]; owns buffer, queue and program
/// creation.
#[derive(Debug, Clone)]
pub struct Context {
    client: Weak<ClientInner>,
    id: ObjectId,
    devices: Vec<Device>,
    servers: Vec<usize>,
}

impl Context {
    /// `clCreateContext` over any mix of devices from any servers of
    /// `client`.
    pub fn new(client: &Client, devices: &[Device]) -> Result<Context> {
        client.inner.create_context(devices)
    }

    /// The context's devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The servers participating in this context.
    pub fn servers(&self) -> Vec<ServerId> {
        self.servers.iter().copied().map(ServerId).collect()
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// `clCreateCommandQueue` for `device` (which must be part of this
    /// context).
    pub fn create_command_queue(&self, device: &Device) -> Result<CommandQueue> {
        self.inner()?.create_command_queue(self, device)
    }

    /// `clCreateBuffer` of `size` bytes, replicated on every participating
    /// server and kept consistent by the MSI directory.
    pub fn create_buffer(&self, size: usize) -> Result<Buffer> {
        self.inner()?.create_buffer(self, size)
    }

    /// `clCreateProgramWithSource`: ship `source` to every participating
    /// server.
    pub fn create_program_with_source(&self, source: &str) -> Result<Program> {
        self.inner()?.create_program_with_source(self, source)
    }

    /// `clCreateProgramWithBuiltInKernels` (OpenCL 1.2-style), used by the
    /// evaluation workloads for their throughput-critical kernels.
    pub fn create_program_with_built_in_kernels(&self, names: &str) -> Result<Program> {
        self.inner()?.create_program_with_built_in_kernels(self, names)
    }

    fn inner(&self) -> Result<Arc<ClientInner>> {
        upgrade(&self.client)
    }
}

/// A buffer stub (compound stub with an MSI coherence directory).
///
/// Buffers are pure data handles: every operation on their contents goes
/// through a [`CommandQueue`], which carries the client back-reference, so
/// the buffer itself does not need one.
#[derive(Debug, Clone)]
pub struct Buffer {
    id: ObjectId,
    size: usize,
    directory: Arc<Mutex<BufferDirectory>>,
}

impl Buffer {
    /// Buffer size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Current coherence state of the copy on `server` (for tests and
    /// diagnostics).  In range mode this is the whole-buffer summary: the
    /// uniform state if every range agrees, `Invalid` otherwise.
    pub fn coherence_state(&self, server: ServerId) -> crate::coherence::CoherenceState {
        self.directory.lock().server_state(server.0)
    }

    /// Coalesced byte ranges of this buffer that are valid on `server` (for
    /// tests and diagnostics).
    pub fn valid_ranges(&self, server: ServerId) -> Vec<ByteRange> {
        self.directory.lock().valid_ranges(server.0)
    }

    /// Coalesced byte ranges of this buffer that are stale on `server` (for
    /// tests and diagnostics).
    pub fn stale_ranges(&self, server: ServerId) -> Vec<ByteRange> {
        self.directory.lock().stale_ranges(server.0)
    }

    /// Number of interval-map segments in the coherence directory (1 in
    /// whole mode) — a fragmentation diagnostic.
    pub fn segment_count(&self) -> usize {
        self.directory.lock().segment_count()
    }
}

/// A program stub (compound stub).  Owns building and kernel creation.
#[derive(Debug, Clone)]
pub struct Program {
    client: Weak<ClientInner>,
    id: ObjectId,
    servers: Vec<usize>,
    source_len: usize,
    /// Parse-only kernel-argument access analysis of the program source
    /// (empty for built-in kernels or unparsable sources).  Kernels created
    /// from this program use it to *derive* coherence launch hints when the
    /// caller gives none.
    access: Arc<Vec<oclc::access::KernelAccess>>,
}

impl Program {
    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// `clBuildProgram` on every participating server.  On failure the
    /// first server's build log is appended to the error.
    pub fn build(&self) -> Result<()> {
        upgrade(&self.client)?.build_program(self)
    }

    /// `clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)` from the first server.
    pub fn build_log(&self) -> Result<String> {
        upgrade(&self.client)?.get_build_log(self)
    }

    /// `clCreateKernel`.
    pub fn create_kernel(&self, name: &str) -> Result<Kernel> {
        upgrade(&self.client)?.create_kernel(self, name)
    }
}

/// A kernel argument, as accepted by [`Kernel::set_arg`].
///
/// Scalars and buffers convert implicitly (`kernel.set_arg(0, &buffer)?`,
/// `kernel.set_arg(1, Value::uint(42))?`); `__local` memory is requested
/// explicitly with [`Arg::local`].
#[derive(Debug, Clone)]
pub enum Arg {
    /// A by-value scalar argument.
    Scalar(Value),
    /// A memory-object argument.
    Buffer(Buffer),
    /// A `__local` memory allocation of the given size in bytes.
    Local(usize),
}

impl Arg {
    /// A `__local` memory argument of `bytes` bytes.
    pub fn local(bytes: usize) -> Arg {
        Arg::Local(bytes)
    }
}

impl From<Value> for Arg {
    fn from(value: Value) -> Arg {
        Arg::Scalar(value)
    }
}

impl From<&Buffer> for Arg {
    fn from(buffer: &Buffer) -> Arg {
        Arg::Buffer(buffer.clone())
    }
}

impl From<Buffer> for Arg {
    fn from(buffer: Buffer) -> Arg {
        Arg::Buffer(buffer)
    }
}

/// A kernel stub (compound stub).  Remembers which arguments are buffers so
/// kernel launches can run the coherence protocol for them.
#[derive(Debug, Clone)]
pub struct Kernel {
    client: Weak<ClientInner>,
    id: ObjectId,
    name: String,
    servers: Vec<usize>,
    buffer_args: Arc<Mutex<HashMap<u32, Buffer>>>,
    /// Per-argument access derived from the program source (declaration
    /// order = `clSetKernelArg` indices); empty when nothing was derivable.
    derived_access: Arc<Vec<oclc::access::ArgAccess>>,
}

impl Kernel {
    /// The statically derived access classification of argument `index`
    /// (diagnostics; [`ArgAccess::WrittenWhole`] when unknown is the
    /// conservative answer launches fall back to).
    ///
    /// [`ArgAccess::WrittenWhole`]: oclc::access::ArgAccess::WrittenWhole
    pub fn derived_access(&self, index: u32) -> oclc::access::ArgAccess {
        self.derived_access
            .get(index as usize)
            .copied()
            .unwrap_or(oclc::access::ArgAccess::WrittenWhole)
    }
}

impl Kernel {
    /// Kernel function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// `clSetKernelArg`: set argument `index` to `arg` on every
    /// participating server.
    pub fn set_arg(&self, index: u32, arg: impl Into<Arg>) -> Result<()> {
        upgrade(&self.client)?.set_kernel_arg(self, index, arg.into())
    }
}

/// A command queue stub (simple stub: tied to one device on one server).
/// Owns the enqueue builders.
///
/// Commands accumulate client-side and ship as one batched request; see the
/// [module docs](self#batching--flush-semantics) for when the batch is
/// flushed.
#[derive(Debug, Clone)]
pub struct CommandQueue {
    client: Weak<ClientInner>,
    id: ObjectId,
    server: usize,
    device: Device,
    context_servers: Vec<usize>,
    // RAII guard: flushes the pending batch when the last clone drops.
    _flusher: Arc<QueueFlusher>,
}

/// Flushes a queue's pending batch when the last clone of the queue stub is
/// dropped, so nothing enqueued is ever silently discarded.
#[derive(Debug)]
struct QueueFlusher {
    client: Weak<ClientInner>,
    queue_id: ObjectId,
}

impl Drop for QueueFlusher {
    fn drop(&mut self) {
        if let Some(inner) = self.client.upgrade() {
            let _ = inner.flush_queue(self.queue_id);
        }
    }
}

impl CommandQueue {
    /// The device this queue feeds.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The server the queue lives on.
    pub fn server(&self) -> ServerId {
        ServerId(self.server)
    }

    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// `clEnqueueWriteBuffer`: build an upload of `data` into `buffer`.
    ///
    /// Defaults: offset 0, empty wait list, non-blocking.  Finish with
    /// [`WriteBufferOp::submit`].
    pub fn write_buffer<'a>(&'a self, buffer: &'a Buffer, data: &'a [u8]) -> WriteBufferOp<'a> {
        WriteBufferOp { queue: self, buffer, data, offset: 0, wait: Vec::new(), blocking: false }
    }

    /// `clEnqueueReadBuffer` (blocking): build a download from `buffer`.
    ///
    /// Defaults: offset 0, the whole buffer, empty wait list.  Finish with
    /// [`ReadBufferOp::submit`].
    pub fn read_buffer<'a>(&'a self, buffer: &'a Buffer) -> ReadBufferOp<'a> {
        ReadBufferOp { queue: self, buffer, offset: 0, len: None, wait: Vec::new() }
    }

    /// `clEnqueueNDRangeKernel`: build a launch of `kernel` over `range`.
    ///
    /// Defaults: empty wait list.  Finish with [`LaunchOp::submit`].
    pub fn launch<'a>(&'a self, kernel: &'a Kernel, range: NdRange) -> LaunchOp<'a> {
        LaunchOp { queue: self, kernel, range, wait: Vec::new(), access: Vec::new() }
    }

    /// `clEnqueueMarkerWithWaitList`: build a marker command.
    pub fn marker(&self) -> MarkerOp<'_> {
        MarkerOp { queue: self, wait: Vec::new() }
    }

    /// `clFlush`: ship this queue's pending batch to its server without
    /// waiting for completion.  A no-op if nothing is pending.
    pub fn flush(&self) -> Result<()> {
        self.inner()?.flush_queue(self.id)
    }

    /// Number of commands accumulated client-side and not yet shipped.
    pub fn pending_commands(&self) -> usize {
        self.inner().map(|inner| inner.pending_commands(self.id)).unwrap_or(0)
    }

    /// `clFinish`: block until every command previously enqueued on this
    /// queue has completed.
    pub fn finish(&self) -> Result<()> {
        let marker = self.marker().submit()?;
        marker.wait()
    }

    fn inner(&self) -> Result<Arc<ClientInner>> {
        upgrade(&self.client)
    }
}

/// Builder for `clEnqueueWriteBuffer` (see [`CommandQueue::write_buffer`]).
#[must_use = "the write is not enqueued until submit() is called"]
#[derive(Debug)]
pub struct WriteBufferOp<'a> {
    queue: &'a CommandQueue,
    buffer: &'a Buffer,
    data: &'a [u8],
    offset: usize,
    wait: Vec<ObjectId>,
    blocking: bool,
}

impl WriteBufferOp<'_> {
    /// Write starting at `offset` bytes into the buffer (default 0).
    pub fn at_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    /// Wait for `events` before executing (appends to the wait list).
    pub fn after(mut self, events: &[Event]) -> Self {
        self.wait.extend(events.iter().map(|e| e.id));
        self
    }

    /// Block until the upload completes before returning (the returned
    /// event is then already terminal), mirroring `blocking_write = CL_TRUE`.
    pub fn blocking(mut self) -> Self {
        self.blocking = true;
        self
    }

    /// Enqueue the write; returns its completion event.
    pub fn submit(self) -> Result<Event> {
        let inner = self.queue.inner()?;
        let event =
            inner.enqueue_write(self.queue, self.buffer, self.offset, self.data, &self.wait)?;
        if self.blocking {
            event.wait()?;
        }
        Ok(event)
    }
}

/// Builder for `clEnqueueReadBuffer` (see [`CommandQueue::read_buffer`]).
///
/// [`ReadBufferOp::submit`] mirrors a blocking read (`blocking_read =
/// CL_TRUE`); [`ReadBufferOp::submit_async`] enqueues without blocking and
/// returns a [`PendingRead`] resolved at wait time.
#[must_use = "the read is not enqueued until submit() is called"]
#[derive(Debug)]
pub struct ReadBufferOp<'a> {
    queue: &'a CommandQueue,
    buffer: &'a Buffer,
    offset: usize,
    len: Option<usize>,
    wait: Vec<ObjectId>,
}

impl ReadBufferOp<'_> {
    /// Read starting at `offset` bytes into the buffer (default 0).
    pub fn at_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    /// Read `len` bytes (default: the whole buffer from the offset on).
    pub fn len(mut self, len: usize) -> Self {
        self.len = Some(len);
        self
    }

    /// Wait for `events` before executing (appends to the wait list).
    pub fn after(mut self, events: &[Event]) -> Self {
        self.wait.extend(events.iter().map(|e| e.id));
        self
    }

    /// Enqueue the read and block for the data; returns it together with
    /// the (already terminal) completion event, mirroring a blocking
    /// `clEnqueueReadBuffer`.  Flushes the queue's pending batch.
    pub fn submit(self) -> Result<(Vec<u8>, Event)> {
        self.submit_async()?.wait()
    }

    /// Enqueue the read without blocking (`blocking_read = CL_FALSE`): the
    /// command joins the queue's pending batch and the returned
    /// [`PendingRead`] yields the data once awaited.
    pub fn submit_async(self) -> Result<PendingRead> {
        let inner = self.queue.inner()?;
        let len = self.len.unwrap_or_else(|| self.buffer.size().saturating_sub(self.offset));
        inner.enqueue_read_async(self.queue, self.buffer, self.offset, len, &self.wait)
    }
}

/// A non-blocking buffer read in flight (see [`ReadBufferOp::submit_async`]).
///
/// The daemon streams the data to the client when the command executes;
/// [`PendingRead::wait`] flushes the owning queue's batch (via the event),
/// blocks for completion, and collects the stream.
#[must_use = "the data is not received until wait() is called"]
#[derive(Debug)]
pub struct PendingRead {
    client: Weak<ClientInner>,
    server: usize,
    stream_id: u64,
    offset: usize,
    len: usize,
    buffer: Buffer,
    event: Event,
}

impl PendingRead {
    /// The read command's completion event (not yet terminal until the
    /// batch is flushed and the daemon executes the command).
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Block until the read completes and return the data together with the
    /// (now terminal) completion event.
    pub fn wait(self) -> Result<(Vec<u8>, Event)> {
        self.event.wait()?;
        let inner = upgrade(&self.client)?;
        let conn = inner.server(self.server)?;
        let data = conn.endpoint.wait_bulk(self.stream_id, Duration::from_secs(300))?;
        // Stream-based communication back to the client.
        inner.clock.charge(Phase::DataTransfer, inner.link.transfer_time(self.len as u64));
        self.buffer.directory.lock().record_host_read(self.server, self.offset, &data);
        Ok((data, self.event))
    }
}

/// Builder for `clEnqueueNDRangeKernel` (see [`CommandQueue::launch`]).
#[must_use = "the launch is not enqueued until submit() is called"]
#[derive(Debug)]
pub struct LaunchOp<'a> {
    queue: &'a CommandQueue,
    kernel: &'a Kernel,
    range: NdRange,
    wait: Vec<ObjectId>,
    access: Vec<(ObjectId, AccessHint)>,
}

/// A launch's declared access to one buffer argument (see
/// [`LaunchOp::writes_slice`] / [`LaunchOp::reads_only`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessHint {
    /// The kernel reads and writes only this byte range of the buffer.
    Touches(ByteRange),
    /// The kernel only reads the buffer; it dirties nothing.
    ReadsOnly,
}

impl LaunchOp<'_> {
    /// Wait for `events` before executing (appends to the wait list).
    pub fn after(mut self, events: &[Event]) -> Self {
        self.wait.extend(events.iter().map(|e| e.id));
        self
    }

    /// Declare that this launch accesses (reads *and* writes) only
    /// `[offset, offset + len)` of `buffer` — typically the output slice
    /// implied by the NDRange, e.g. the rows a `mandelbrot_rows` launch
    /// renders.  The coherence protocol then validates and dirties only
    /// that range, so a buffer partitioned across daemons stays put: each
    /// device remains the owner of its own slice and no full-buffer round
    /// trips occur.
    ///
    /// The declaration is a contract: bytes the kernel touches outside the
    /// slice are silently stale.  Without a declaration the launch falls
    /// back to the conservative whole-buffer treatment.
    pub fn writes_slice(mut self, buffer: &Buffer, offset: usize, len: usize) -> Self {
        let range = ByteRange::new(offset, offset.saturating_add(len)).clamp_to(buffer.size());
        self.access.push((buffer.id, AccessHint::Touches(range)));
        self
    }

    /// Declare that this launch only *reads* `buffer`: the whole buffer is
    /// still validated on the target server, but nothing is marked dirty
    /// afterwards, so other copies stay valid.
    pub fn reads_only(mut self, buffer: &Buffer) -> Self {
        self.access.push((buffer.id, AccessHint::ReadsOnly));
        self
    }

    /// Enqueue the kernel launch; returns its completion event.
    pub fn submit(self) -> Result<Event> {
        let inner = self.queue.inner()?;
        inner.enqueue_launch(self.queue, self.kernel, self.range, &self.wait, &self.access)
    }
}

/// Builder for `clEnqueueMarkerWithWaitList` (see [`CommandQueue::marker`]).
#[must_use = "the marker is not enqueued until submit() is called"]
#[derive(Debug)]
pub struct MarkerOp<'a> {
    queue: &'a CommandQueue,
    wait: Vec<ObjectId>,
}

impl MarkerOp<'_> {
    /// Wait for `events` before completing (appends to the wait list).
    pub fn after(mut self, events: &[Event]) -> Self {
        self.wait.extend(events.iter().map(|e| e.id));
        self
    }

    /// Enqueue the marker; returns its completion event.  Ships the queue's
    /// pending batch so the marker observes every command enqueued before
    /// it.
    pub fn submit(self) -> Result<Event> {
        let inner = self.queue.inner()?;
        let event = inner.enqueue_marker(self.queue, &self.wait)?;
        inner.flush_queue(self.queue.id)?;
        Ok(event)
    }
}

struct EventRecord {
    // Back-reference so that waiting on an event can flush the pending
    // batches the event's command may still be sitting in.
    client: Weak<ClientInner>,
    owner: usize,
    user_event_servers: Vec<usize>,
    phase: Phase,
    status: Mutex<Option<i32>>,
    modeled: Mutex<Duration>,
    cond: Condvar,
}

impl EventRecord {
    fn new(
        client: Weak<ClientInner>,
        owner: usize,
        user_event_servers: Vec<usize>,
        phase: Phase,
    ) -> Arc<Self> {
        Arc::new(EventRecord {
            client,
            owner,
            user_event_servers,
            phase,
            status: Mutex::new(None),
            modeled: Mutex::new(Duration::ZERO),
            cond: Condvar::new(),
        })
    }
}

/// An event stub (compound stub: the original event lives on the owning
/// server, user events replace it on the others).
#[derive(Clone)]
pub struct Event {
    id: ObjectId,
    record: Arc<EventRecord>,
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id)
            .field("status", &*self.record.status.lock())
            .finish()
    }
}

impl Event {
    /// Stub object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The server owning the original event.
    pub fn owner(&self) -> ServerId {
        ServerId(self.record.owner)
    }

    /// Whether the event reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        self.record.status.lock().is_some()
    }

    /// Block until the command completes; errors if the command failed.
    ///
    /// Flushes every pending command batch of the client first: the command
    /// this event belongs to (or one it transitively waits on) may not have
    /// been shipped yet.
    pub fn wait(&self) -> Result<()> {
        self.flush_if_pending();
        let mut status = self.record.status.lock();
        while status.is_none() {
            self.record.cond.wait(&mut status);
        }
        match status.unwrap() {
            0 => Ok(()),
            code => Err(DclError::Cl(vocl::ClError::ExecutionFailure(format!(
                "remote command failed with status {code}"
            )))),
        }
    }

    /// Wait with a timeout; `Ok(false)` means it expired.  Flushes pending
    /// batches like [`Event::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<bool> {
        self.flush_if_pending();
        let mut status = self.record.status.lock();
        let deadline = std::time::Instant::now() + timeout;
        while status.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            self.record.cond.wait_for(&mut status, deadline - now);
        }
        match status.unwrap() {
            0 => Ok(true),
            code => Err(DclError::Cl(vocl::ClError::ExecutionFailure(format!(
                "remote command failed with status {code}"
            )))),
        }
    }

    /// `clWaitForEvents`: wait for every event in `events`.
    pub fn wait_all(events: &[Event]) -> Result<()> {
        for e in events {
            e.wait()?;
        }
        Ok(())
    }

    /// Modelled duration reported by the owning server (kernel execution or
    /// PCIe transfer time).
    pub fn modeled_duration(&self) -> Duration {
        *self.record.modeled.lock()
    }

    /// Ship every pending batch if this event is not terminal yet (its
    /// command, or a dependency, may still be accumulating client-side).
    /// Transport failures surface through the event status, not here.
    fn flush_if_pending(&self) {
        if !self.is_terminal() {
            if let Some(inner) = self.record.client.upgrade() {
                inner.flush_all();
            }
        }
    }
}

fn upgrade(client: &Weak<ClientInner>) -> Result<Arc<ClientInner>> {
    client.upgrade().ok_or(DclError::ClientDropped)
}

/// How the client reacts to a dead server connection (see the
/// [module docs](self#failure-semantics)).
#[derive(Debug, Clone, Copy)]
pub struct FailoverPolicy {
    /// Attempt to reconnect at all.  With `false` a dead connection
    /// immediately surfaces as [`DclError::ServerUnavailable`].
    pub reconnect: bool,
    /// Redial schedule (exponential backoff with deterministic jitter).
    pub backoff: Backoff,
    /// When redialling gives up, drop the server like an explicit
    /// disconnect and continue on the survivors instead of erroring every
    /// subsequent operation.
    pub drop_lost_servers: bool,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        FailoverPolicy { reconnect: true, backoff: Backoff::default(), drop_lost_servers: false }
    }
}

impl FailoverPolicy {
    /// No recovery at all: any connection failure is immediately fatal for
    /// the affected server (the pre-fault-tolerance behaviour).
    pub fn fail_fast() -> Self {
        FailoverPolicy { reconnect: false, backoff: Backoff::default(), drop_lost_servers: false }
    }
}

/// Per-server recovery bookkeeping (parallel to the `servers` table).
struct SlotRecovery {
    /// The address originally dialled, redialled on reconnect.
    address: String,
    /// Session epoch of the current connection; bumped on every reconnect
    /// so the daemon can tell a revival from a fresh client.
    epoch: u64,
    /// Initialization-phase requests replayed verbatim when the daemon did
    /// not park our session (it was restarted): re-creates every remote
    /// object in original order.
    setup_log: Vec<Request>,
    /// A reconnect is in flight; other detections wait on `recovery_cond`.
    reconnecting: bool,
    /// The server was dropped permanently (redial gave up under
    /// [`FailoverPolicy::drop_lost_servers`]).
    lost: bool,
}

struct ServerConn {
    name: String,
    endpoint: Arc<Endpoint>,
    devices: Vec<DeviceDescriptor>,
}

/// A queue's accumulated, not-yet-shipped commands.
struct PendingBatch {
    server: usize,
    entries: Vec<BatchEntry>,
}

/// Client-side command accumulation across all queues.
///
/// `event_queue` maps each pending entry's event to the queue holding it, so
/// a wait list referencing an event of *another* queue can flush that queue
/// first (the daemon resolves wait lists at enqueue time).
#[derive(Default)]
struct BatchState {
    queues: HashMap<ObjectId, PendingBatch>,
    event_queue: HashMap<ObjectId, ObjectId>,
}

struct ClientInner {
    name: String,
    // Needed to hand batches and event records a weak back-reference.
    self_weak: Weak<ClientInner>,
    transport: Arc<dyn Transport>,
    link: LinkModel,
    clock: SimClock,
    next_id: AtomicU64,
    servers: Mutex<Vec<Option<Arc<ServerConn>>>>,
    events: Mutex<HashMap<ObjectId, Arc<EventRecord>>>,
    batches: Mutex<BatchState>,
    batching: AtomicBool,
    auth_id: Mutex<Option<String>>,
    /// Per-server recovery state (same indexing as `servers`).
    recovery: Mutex<Vec<SlotRecovery>>,
    /// Signalled when a reconnect attempt (any server) finishes.
    recovery_cond: Condvar,
    failover: Mutex<FailoverPolicy>,
    /// Counters of endpoints that were replaced or closed, plus the
    /// client-level `reconnects`/`retries` counts; added to the live
    /// endpoints' stats by `traffic_stats` so totals stay monotonic across
    /// reconnects.
    retired: Mutex<TrafficStats>,
    /// Directories of every live buffer, so a reconnect to a restarted
    /// daemon can invalidate that server's copies.
    buffer_dirs: Mutex<Vec<Weak<Mutex<BufferDirectory>>>>,
    /// Coherence tracking granularity for buffers created from now on
    /// (initialised from `DCL_COHERENCE`; see
    /// [`crate::coherence::CoherenceMode`]).
    coherence_mode: Mutex<CoherenceMode>,
}

impl ClientInner {
    fn server(&self, index: usize) -> Result<Arc<ServerConn>> {
        self.servers
            .lock()
            .get(index)
            .and_then(|s| s.clone())
            .ok_or_else(|| DclError::ServerUnavailable(format!("server #{index}")))
    }

    fn allocate_id(&self) -> ObjectId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn complete_event(&self, event_id: ObjectId, status: i32, modeled_nanos: u64) {
        let record = self.events.lock().get(&event_id).cloned();
        let Some(record) = record else { return };
        let modeled = Duration::from_nanos(modeled_nanos);
        self.clock.charge(record.phase, modeled);
        {
            let mut slot = record.status.lock();
            if slot.is_none() {
                *slot = Some(status);
                *record.modeled.lock() = modeled;
                record.cond.notify_all();
            }
        }
        // Event consistency: complete the user events on every other server.
        //
        // This runs on the notification-receiver thread of the owning
        // server's endpoint.  The completions are sent from a detached
        // thread so that this receiver thread never blocks waiting for a
        // response from another server whose own receiver thread may, at the
        // same moment, be forwarding a completion towards us (the classic
        // cross-forwarding deadlock).
        if record.user_event_servers.is_empty() {
            return;
        }
        let servers = record.user_event_servers.clone();
        let connections: Vec<_> =
            servers.iter().filter_map(|server| self.server(*server).ok()).collect();
        std::thread::Builder::new()
            .name("dcl-event-forward".to_string())
            .spawn(move || {
                for conn in connections {
                    let request = Request::SetUserEventComplete { event_id };
                    let _ = conn.endpoint.call(request.to_bytes());
                }
            })
            .ok();
    }

    // ----- object creation (compound stubs) --------------------------------

    fn create_context(self: &Arc<Self>, devices: &[Device]) -> Result<Context> {
        if devices.is_empty() {
            return Err(DclError::InvalidArgument("a context needs at least one device".into()));
        }
        let id = self.allocate_id();
        let mut per_server: HashMap<usize, Vec<ObjectId>> = HashMap::new();
        for d in devices {
            per_server.entry(d.server).or_default().push(d.descriptor.remote_id);
        }
        let mut servers: Vec<usize> = per_server.keys().copied().collect();
        servers.sort_unstable();
        for (&server, device_ids) in &per_server {
            self.call_server(
                server,
                Request::CreateContext { context_id: id, devices: device_ids.clone() },
                Phase::Initialization,
            )?;
        }
        Ok(Context { client: Arc::downgrade(self), id, devices: devices.to_vec(), servers })
    }

    fn create_command_queue(
        self: &Arc<Self>,
        context: &Context,
        device: &Device,
    ) -> Result<CommandQueue> {
        if !context.devices.iter().any(|d| {
            d.server == device.server && d.descriptor.remote_id == device.descriptor.remote_id
        }) {
            return Err(DclError::InvalidArgument("the device is not part of the context".into()));
        }
        let id = self.allocate_id();
        self.call_server(
            device.server,
            Request::CreateCommandQueue {
                queue_id: id,
                context_id: context.id,
                device: device.descriptor.remote_id,
            },
            Phase::Initialization,
        )?;
        Ok(CommandQueue {
            client: Arc::downgrade(self),
            id,
            server: device.server,
            device: device.clone(),
            context_servers: context.servers.clone(),
            _flusher: Arc::new(QueueFlusher { client: Arc::downgrade(self), queue_id: id }),
        })
    }

    fn create_buffer(self: &Arc<Self>, context: &Context, size: usize) -> Result<Buffer> {
        if size == 0 {
            return Err(DclError::InvalidArgument("buffer size must be non-zero".into()));
        }
        let id = self.allocate_id();
        for &server in &context.servers {
            self.call_server(
                server,
                Request::CreateBuffer {
                    buffer_id: id,
                    context_id: context.id,
                    size: size as u64,
                    readable: true,
                    writable: true,
                },
                Phase::Initialization,
            )?;
        }
        let directory = Arc::new(Mutex::new(BufferDirectory::new_with_mode(
            context.servers.iter().copied(),
            size,
            *self.coherence_mode.lock(),
        )));
        // Track the directory so a reconnect to a restarted daemon can
        // invalidate that server's copies.
        self.buffer_dirs.lock().push(Arc::downgrade(&directory));
        Ok(Buffer { id, size, directory })
    }

    fn create_program_with_source(
        self: &Arc<Self>,
        context: &Context,
        source: &str,
    ) -> Result<Program> {
        let id = self.allocate_id();
        for &server in &context.servers {
            // Program code is shipped to every server: charge the transfer.
            self.clock.charge(Phase::Initialization, self.link.transfer_time(source.len() as u64));
            self.call_server(
                server,
                Request::CreateProgramWithSource {
                    program_id: id,
                    context_id: context.id,
                    source: source.to_string(),
                },
                Phase::Initialization,
            )?;
        }
        Ok(Program {
            client: Arc::downgrade(self),
            id,
            servers: context.servers.clone(),
            source_len: source.len(),
            // Parse-only (never bumps the build counter); a source the
            // parser rejects simply derives no hints — the build on the
            // daemon reports the real error.
            access: Arc::new(oclc::access::analyze(source).unwrap_or_default()),
        })
    }

    fn create_program_with_built_in_kernels(
        self: &Arc<Self>,
        context: &Context,
        names: &str,
    ) -> Result<Program> {
        let id = self.allocate_id();
        for &server in &context.servers {
            self.call_server(
                server,
                Request::CreateProgramWithBuiltInKernels {
                    program_id: id,
                    context_id: context.id,
                    names: names.to_string(),
                },
                Phase::Initialization,
            )?;
        }
        Ok(Program {
            client: Arc::downgrade(self),
            id,
            servers: context.servers.clone(),
            source_len: 0,
            access: Arc::new(Vec::new()),
        })
    }

    fn build_program(&self, program: &Program) -> Result<()> {
        for &server in &program.servers {
            match self.call_server(
                server,
                Request::BuildProgram { program_id: program.id },
                Phase::Initialization,
            ) {
                Ok(_) => {}
                Err(e) => {
                    let log = self.get_build_log(program).unwrap_or_default();
                    return Err(DclError::Cl(vocl::ClError::BuildProgramFailure(format!(
                        "{e}\n{log}"
                    ))));
                }
            }
        }
        let _ = program.source_len;
        Ok(())
    }

    fn get_build_log(&self, program: &Program) -> Result<String> {
        let server = *program
            .servers
            .first()
            .ok_or_else(|| DclError::InvalidArgument("program has no servers".into()))?;
        match self.call_server(
            server,
            Request::GetBuildLog { program_id: program.id },
            Phase::Initialization,
        )? {
            Response::BuildLog { log } => Ok(log),
            other => Err(DclError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    fn create_kernel(self: &Arc<Self>, program: &Program, name: &str) -> Result<Kernel> {
        let id = self.allocate_id();
        for &server in &program.servers {
            self.call_server(
                server,
                Request::CreateKernel {
                    kernel_id: id,
                    program_id: program.id,
                    name: name.to_string(),
                },
                Phase::Initialization,
            )?;
        }
        let derived_access = program
            .access
            .iter()
            .find(|k| k.name == name)
            .map(|k| Arc::new(k.args.clone()))
            .unwrap_or_default();
        Ok(Kernel {
            client: Arc::downgrade(self),
            id,
            name: name.to_string(),
            servers: program.servers.clone(),
            buffer_args: Arc::new(Mutex::new(HashMap::new())),
            derived_access,
        })
    }

    fn set_kernel_arg(&self, kernel: &Kernel, index: u32, arg: Arg) -> Result<()> {
        match arg {
            Arg::Scalar(value) => {
                kernel.buffer_args.lock().remove(&index);
                for &server in &kernel.servers {
                    self.call_server(
                        server,
                        Request::SetKernelArgScalar {
                            kernel_id: kernel.id,
                            index,
                            value: WireValue(value.clone()),
                        },
                        Phase::Initialization,
                    )?;
                }
            }
            Arg::Buffer(buffer) => {
                for &server in &kernel.servers {
                    self.call_server(
                        server,
                        Request::SetKernelArgBuffer {
                            kernel_id: kernel.id,
                            index,
                            buffer_id: buffer.id,
                        },
                        Phase::Initialization,
                    )?;
                }
                kernel.buffer_args.lock().insert(index, buffer);
            }
            Arg::Local(bytes) => {
                kernel.buffer_args.lock().remove(&index);
                for &server in &kernel.servers {
                    self.call_server(
                        server,
                        Request::SetKernelArgLocal {
                            kernel_id: kernel.id,
                            index,
                            bytes: bytes as u64,
                        },
                        Phase::Initialization,
                    )?;
                }
            }
        }
        Ok(())
    }

    // ----- command batching -------------------------------------------------

    /// Append an entry to its queue's pending batch.
    ///
    /// If the entry waits on events whose commands are still pending in
    /// *other* queues, those queues are flushed first: the daemon resolves
    /// wait lists at enqueue time, so every dependency must be on its server
    /// before this entry arrives.  With batching disabled the entry ships
    /// immediately as a batch of one (the pre-batching wire behaviour).
    fn push_batch_entry(&self, server: usize, entry: BatchEntry) -> Result<()> {
        let queue_id = entry.queue_id;
        let cross_queues: Vec<ObjectId> = {
            let state = self.batches.lock();
            entry
                .wait_events
                .iter()
                .filter_map(|event| state.event_queue.get(event).copied())
                .filter(|q| *q != queue_id)
                .collect()
        };
        for q in cross_queues {
            self.flush_queue(q)?;
        }
        {
            let mut state = self.batches.lock();
            state.event_queue.insert(entry.event_id, queue_id);
            state
                .queues
                .entry(queue_id)
                .or_insert_with(|| PendingBatch { server, entries: Vec::new() })
                .entries
                .push(entry);
        }
        if !self.batching.load(Ordering::Relaxed) {
            self.flush_queue(queue_id)?;
        }
        Ok(())
    }

    /// Ship a queue's pending batch as one `EnqueueBatch` request.  A no-op
    /// if the queue has nothing pending.
    fn flush_queue(&self, queue_id: ObjectId) -> Result<()> {
        let batch = {
            let mut state = self.batches.lock();
            let Some(batch) = state.queues.remove(&queue_id) else { return Ok(()) };
            for entry in &batch.entries {
                state.event_queue.remove(&entry.event_id);
            }
            batch
        };
        self.ship_batch(batch)
    }

    /// Ship every pending batch of `server` (used before coherence traffic
    /// and disconnects that must observe queued commands).
    fn flush_server(&self, server: usize) -> Result<()> {
        loop {
            let queue_id = {
                let state = self.batches.lock();
                state.queues.iter().find(|(_, b)| b.server == server).map(|(id, _)| *id)
            };
            match queue_id {
                Some(q) => self.flush_queue(q)?,
                None => return Ok(()),
            }
        }
    }

    /// Ship every pending batch, best effort: transport failures fail the
    /// affected events locally and are not propagated.
    fn flush_all(&self) {
        loop {
            let queue_id = { self.batches.lock().queues.keys().next().copied() };
            match queue_id {
                Some(q) => {
                    let _ = self.flush_queue(q);
                }
                None => return,
            }
        }
    }

    fn pending_commands(&self, queue_id: ObjectId) -> usize {
        self.batches.lock().queues.get(&queue_id).map_or(0, |b| b.entries.len())
    }

    fn ship_batch(&self, batch: PendingBatch) -> Result<()> {
        if batch.entries.is_empty() {
            return Ok(());
        }
        let event_ids: Vec<ObjectId> = batch.entries.iter().map(|e| e.event_id).collect();
        let has_transfer = batch.entries.iter().any(|e| {
            matches!(e.command, BatchCommand::WriteBuffer { .. } | BatchCommand::ReadBuffer { .. })
        });
        let phase = if has_transfer { Phase::DataTransfer } else { Phase::Execution };
        let conn = match self.server(batch.server) {
            Ok(conn) => conn,
            Err(e) => {
                self.fail_events(&event_ids, -14);
                return Err(e);
            }
        };
        drop(conn);
        let request = Request::EnqueueBatch { entries: batch.entries };
        // One round trip for the whole batch — the point of accumulating.
        // Goes through the recovery path: if the connection dies mid-call
        // the batch is re-sent verbatim after the reconnect, and the
        // daemon's dedup window (keyed by the entries' command ids) makes
        // the replay execute exactly once.
        self.charge_message(phase, &request);
        let response = match self.call_with_recovery(batch.server, &request) {
            Ok(response) => response,
            Err(e) => {
                self.fail_events(&event_ids, -14);
                return Err(e);
            }
        };
        let statuses = match response {
            Response::BatchEnqueued { statuses } => statuses,
            Response::Error { code, message } => {
                self.fail_events(&event_ids, code);
                return Err(DclError::Protocol(format!("server error {code}: {message}")));
            }
            other => {
                self.fail_events(&event_ids, -14);
                return Err(DclError::Protocol(format!("unexpected response {other:?}")));
            }
        };
        // The daemon stops at the first entry that fails to *enqueue*; its
        // status carries the error, entries past it were never attempted and
        // fail with the wait-list error code.
        let mut first_error = None;
        for (index, event_id) in event_ids.iter().enumerate() {
            match statuses.get(index) {
                Some(status) if status.code == 0 => {}
                Some(status) => {
                    self.complete_event(*event_id, status.code, 0);
                    if first_error.is_none() {
                        first_error = Some(DclError::Protocol(format!(
                            "batch entry {index} failed: {} (code {})",
                            status.message, status.code
                        )));
                    }
                }
                None => self.complete_event(*event_id, -14, 0),
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn fail_events(&self, event_ids: &[ObjectId], code: i32) {
        for &event_id in event_ids {
            self.complete_event(event_id, code, 0);
        }
    }

    // ----- command execution -----------------------------------------------

    fn enqueue_write(
        &self,
        queue: &CommandQueue,
        buffer: &Buffer,
        offset: usize,
        data: &[u8],
        wait: &[ObjectId],
    ) -> Result<Event> {
        if offset.checked_add(data.len()).is_none_or(|end| end > buffer.size) {
            return Err(DclError::InvalidArgument(format!(
                "write of {} bytes at offset {offset} exceeds buffer size {}",
                data.len(),
                buffer.size
            )));
        }
        let server = queue.server;
        // A partial write leaves the rest of the server's copy untouched,
        // but the whole-buffer directory marks the target fully valid
        // afterwards — bring the remainder up to date first.  The range
        // directory tracks the unwritten bytes precisely and never asks
        // for this.
        if buffer.directory.lock().needs_write_validation(server, offset, data.len()) {
            self.ensure_valid_on(server, buffer)?;
        }
        let conn = self.server(server)?;
        let event_id = self.allocate_id();
        let stream_id = conn.endpoint.allocate_id();

        // Stream-based communication: the payload crosses the network now;
        // FIFO ordering guarantees it reaches the daemon ahead of the
        // batched request that references it.
        self.clock.charge(Phase::DataTransfer, self.link.transfer_time(data.len() as u64));
        conn.endpoint.send_bulk(stream_id, data)?;

        let event =
            self.register_event(event_id, server, &queue.context_servers, Phase::DataTransfer)?;
        let entry = BatchEntry {
            command_id: self.allocate_id(),
            queue_id: queue.id,
            event_id,
            wait_events: wait.to_vec(),
            command: BatchCommand::WriteBuffer {
                buffer_id: buffer.id,
                offset: offset as u64,
                size: data.len() as u64,
                stream_id,
            },
        };
        if let Err(e) = self.push_batch_entry(server, entry) {
            self.complete_event(event_id, -14, 0);
            return Err(e);
        }
        buffer.directory.lock().record_host_write(server, offset, data);
        Ok(event)
    }

    fn enqueue_read_async(
        &self,
        queue: &CommandQueue,
        buffer: &Buffer,
        offset: usize,
        len: usize,
        wait: &[ObjectId],
    ) -> Result<PendingRead> {
        if offset.checked_add(len).is_none_or(|end| end > buffer.size) {
            return Err(DclError::InvalidArgument(format!(
                "read of {len} bytes at offset {offset} exceeds buffer size {}",
                buffer.size
            )));
        }
        let server = queue.server;
        self.ensure_valid_on(server, buffer)?;
        let conn = self.server(server)?;
        let event_id = self.allocate_id();
        let stream_id = conn.endpoint.allocate_id();
        let event =
            self.register_event(event_id, server, &queue.context_servers, Phase::DataTransfer)?;
        let entry = BatchEntry {
            command_id: self.allocate_id(),
            queue_id: queue.id,
            event_id,
            wait_events: wait.to_vec(),
            command: BatchCommand::ReadBuffer {
                buffer_id: buffer.id,
                offset: offset as u64,
                size: len as u64,
                stream_id,
            },
        };
        if let Err(e) = self.push_batch_entry(server, entry) {
            self.complete_event(event_id, -14, 0);
            return Err(e);
        }
        Ok(PendingRead {
            client: self.self_weak.clone(),
            server,
            stream_id,
            offset,
            len,
            buffer: buffer.clone(),
            event,
        })
    }

    fn enqueue_launch(
        &self,
        queue: &CommandQueue,
        kernel: &Kernel,
        range: NdRange,
        wait: &[ObjectId],
        access: &[(ObjectId, AccessHint)],
    ) -> Result<Event> {
        let server = queue.server;
        let explicit = |id: ObjectId| access.iter().rev().find(|(b, _)| *b == id).map(|(_, h)| *h);
        // Derived hints: where the caller gave no explicit hint, fall back
        // to the parse-time access analysis of the kernel source.  A
        // provably read-only argument skips dirtying; an argument whose
        // every access is indexed by the linear global id touches exactly
        // the byte slice a 1-D launch implies.
        let (work_dim, offset0, global0) = (range.work_dim, range.offset[0], range.global[0]);
        let derived = move |index: u32, buffer: &Buffer| -> Option<AccessHint> {
            match kernel.derived_access.get(index as usize)? {
                oclc::access::ArgAccess::ReadOnly => Some(AccessHint::ReadsOnly),
                oclc::access::ArgAccess::WrittenLinear { elem_bytes } if work_dim == 1 => {
                    let start = offset0.saturating_mul(*elem_bytes);
                    let end = offset0.saturating_add(global0).saturating_mul(*elem_bytes);
                    Some(AccessHint::Touches(ByteRange::new(start, end).clamp_to(buffer.size)))
                }
                _ => None,
            }
        };
        let hint_for =
            |index: u32, buffer: &Buffer| explicit(buffer.id).or_else(|| derived(index, buffer));
        // Memory consistency: the target server needs a valid copy of every
        // memory object the kernel may read — only the declared slice for
        // launches carrying an access hint.
        let buffer_args: Vec<(u32, Buffer)> =
            kernel.buffer_args.lock().iter().map(|(i, b)| (*i, b.clone())).collect();
        for (index, buffer) in &buffer_args {
            match hint_for(*index, buffer) {
                Some(AccessHint::Touches(slice)) => {
                    self.ensure_valid_range_on(server, buffer, Some(slice))?
                }
                _ => self.ensure_valid_range_on(server, buffer, None)?,
            }
        }
        let event_id = self.allocate_id();
        let event =
            self.register_event(event_id, server, &queue.context_servers, Phase::Execution)?;
        let entry = BatchEntry {
            command_id: self.allocate_id(),
            queue_id: queue.id,
            event_id,
            wait_events: wait.to_vec(),
            command: BatchCommand::NdRange { kernel_id: kernel.id, range: WireNdRange(range) },
        };
        if let Err(e) = self.push_batch_entry(server, entry) {
            self.complete_event(event_id, -14, 0);
            return Err(e);
        }
        // The kernel may have written any of its buffer arguments — only
        // the declared (or derived) slice when the launch carries an access
        // hint, and nothing at all for read-only arguments.
        for (index, buffer) in &buffer_args {
            match hint_for(*index, buffer) {
                Some(AccessHint::ReadsOnly) => {}
                Some(AccessHint::Touches(slice)) => {
                    buffer.directory.lock().record_device_write_range(server, slice)
                }
                None => buffer.directory.lock().record_device_write(server),
            }
        }
        Ok(event)
    }

    fn enqueue_marker(&self, queue: &CommandQueue, wait: &[ObjectId]) -> Result<Event> {
        let event_id = self.allocate_id();
        let event =
            self.register_event(event_id, queue.server, &queue.context_servers, Phase::Execution)?;
        let entry = BatchEntry {
            command_id: self.allocate_id(),
            queue_id: queue.id,
            event_id,
            wait_events: wait.to_vec(),
            command: BatchCommand::Marker,
        };
        if let Err(e) = self.push_batch_entry(queue.server, entry) {
            self.complete_event(event_id, -14, 0);
            return Err(e);
        }
        Ok(event)
    }

    // ----- internals --------------------------------------------------------

    fn register_event(
        &self,
        event_id: ObjectId,
        owner: usize,
        context_servers: &[usize],
        phase: Phase,
    ) -> Result<Event> {
        // Event consistency (Section III-D): create user events as
        // replacements for the original event on every other server of the
        // context.  A permanently lost server needs no replacement events —
        // skipping it keeps a context shared across daemons usable after a
        // crash (the survivors re-validate buffers from the remaining
        // copies).
        let mut user_event_servers = Vec::new();
        for &server in context_servers {
            if server != owner {
                match self.call_server(
                    server,
                    Request::CreateUserEvent { event_id },
                    Phase::Execution,
                ) {
                    Ok(_) => user_event_servers.push(server),
                    Err(_) if self.server_lost(server) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        let record = EventRecord::new(self.self_weak.clone(), owner, user_event_servers, phase);
        self.events.lock().insert(event_id, Arc::clone(&record));
        Ok(Event { id: event_id, record })
    }

    /// Run the coherence delta plan so that `server` holds a valid copy of
    /// `buffer` before a command reads it there.
    fn ensure_valid_on(&self, server: usize, buffer: &Buffer) -> Result<()> {
        self.ensure_valid_range_on(server, buffer, None)
    }

    /// Run the coherence delta plan so that `server` holds a valid copy of
    /// `range` of `buffer` (`None` = the whole buffer): download the ranges
    /// the client copy lacks from their owners, then upload exactly the
    /// server's stale ranges.
    ///
    /// Coherence traffic bypasses the command queues, so any pending batch
    /// on a server whose copy participates (the fetch sources, the upload
    /// target) is flushed first — the queued commands logically precede this
    /// validation and must reach the daemon before it.
    fn ensure_valid_range_on(
        &self,
        server: usize,
        buffer: &Buffer,
        range: Option<ByteRange>,
    ) -> Result<()> {
        let plan = {
            let dir = buffer.directory.lock();
            match range {
                Some(r) => dir.plan_delta_range(server, r),
                None => dir.plan_delta(server),
            }
        };
        if plan.is_noop() {
            return Ok(());
        }
        self.flush_server(server)?;
        for fetch in &plan.fetches {
            if fetch.source != server {
                self.flush_server(fetch.source)?;
            }
        }
        for fetch in &plan.fetches {
            let data = self.download_buffer_range(fetch.source, buffer, fetch.span)?;
            buffer.directory.lock().record_client_fetch_ranges(
                fetch.source,
                fetch.span,
                &fetch.apply,
                &data,
            );
        }
        for upload in &plan.uploads {
            let data = buffer.directory.lock().client_data_range(*upload);
            self.upload_buffer_range(server, buffer, *upload, &data)?;
            buffer.directory.lock().record_upload_range(server, *upload);
        }
        Ok(())
    }

    /// Upload `range` of `buffer` to `server`.  Whole-buffer ranges use the
    /// original `UploadBufferData` message, partial ranges the range
    /// variant — so the `DCL_COHERENCE=whole` oracle exercises exactly the
    /// pre-range wire protocol.
    fn upload_buffer_range(
        &self,
        server: usize,
        buffer: &Buffer,
        range: ByteRange,
        data: &[u8],
    ) -> Result<()> {
        let conn = self.server(server)?;
        let stream_id = conn.endpoint.allocate_id();
        self.clock.charge(Phase::DataTransfer, self.link.transfer_time(data.len() as u64));
        conn.endpoint.send_bulk(stream_id, data)?;
        let request = if range.start == 0 && range.end == buffer.size {
            Request::UploadBufferData { buffer_id: buffer.id, stream_id, size: data.len() as u64 }
        } else {
            Request::UploadBufferRange {
                buffer_id: buffer.id,
                offset: range.start as u64,
                size: data.len() as u64,
                stream_id,
            }
        };
        match self.call_server_on(&conn, &request, Phase::DataTransfer)? {
            Response::OkTimed { modeled_nanos } => {
                self.clock.charge(Phase::DataTransfer, Duration::from_nanos(modeled_nanos));
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Download `range` of `buffer` from `server`.  Whole-buffer ranges use
    /// the original `DownloadBufferData` message, partial ranges the range
    /// variant.
    fn download_buffer_range(
        &self,
        server: usize,
        buffer: &Buffer,
        range: ByteRange,
    ) -> Result<Vec<u8>> {
        let conn = self.server(server)?;
        let stream_id = conn.endpoint.allocate_id();
        let request = if range.start == 0 && range.end == buffer.size {
            Request::DownloadBufferData { buffer_id: buffer.id, stream_id }
        } else {
            Request::DownloadBufferRange {
                buffer_id: buffer.id,
                offset: range.start as u64,
                size: range.len() as u64,
                stream_id,
            }
        };
        let response = self.call_server_on(&conn, &request, Phase::DataTransfer)?;
        match response {
            Response::OkTimed { modeled_nanos } | Response::BufferRange { modeled_nanos, .. } => {
                self.clock.charge(Phase::DataTransfer, Duration::from_nanos(modeled_nanos));
            }
            _ => {}
        }
        let data = conn.endpoint.wait_bulk(stream_id, Duration::from_secs(300))?;
        self.clock.charge(Phase::DataTransfer, self.link.transfer_time(data.len() as u64));
        Ok(data)
    }

    fn charge_message(&self, phase: Phase, request: &Request) {
        let size = crate::protocol::request_wire_size(request);
        self.clock.charge(phase, self.link.round_trip_time(size, 64));
    }

    fn call_server(&self, server: usize, request: Request, phase: Phase) -> Result<Response> {
        self.charge_message(phase, &request);
        let response = self.call_with_recovery(server, &request)?.into_result()?;
        // Record setup requests so a reconnect to a restarted daemon can
        // re-create the remote objects (see the recovery path).
        if Self::is_setup_request(&request) {
            if let Some(slot) = self.recovery.lock().get_mut(server) {
                slot.setup_log.push(request);
            }
        }
        Ok(response)
    }

    // ----- connection supervision & failover --------------------------------

    /// Requests replayed on a fresh daemon to rebuild the session: object
    /// creation and kernel-argument state, in original order.
    fn is_setup_request(request: &Request) -> bool {
        matches!(
            request,
            Request::CreateContext { .. }
                | Request::CreateCommandQueue { .. }
                | Request::CreateBuffer { .. }
                | Request::CreateProgramWithSource { .. }
                | Request::CreateProgramWithBuiltInKernels { .. }
                | Request::BuildProgram { .. }
                | Request::CreateKernel { .. }
                | Request::SetKernelArgScalar { .. }
                | Request::SetKernelArgBuffer { .. }
                | Request::SetKernelArgLocal { .. }
        )
    }

    /// Whether `server` is permanently gone: its recovery slot gave up (the
    /// redial budget ran out under `drop_lost_servers`) or its connection
    /// entry was dropped.
    fn server_lost(&self, index: usize) -> bool {
        self.recovery.lock().get(index).is_some_and(|slot| slot.lost)
            || self.servers.lock().get(index).is_none_or(|conn| conn.is_none())
    }

    /// Call `request` on `server`, transparently reconnecting and retrying
    /// when the connection dies mid-call.  Safe because every request the
    /// protocol retries this way is idempotent — batches through their
    /// command ids, creation calls because they overwrite the same object
    /// id.  (Bulk-transfer requests bypass this path; their stream dies
    /// with the connection.)
    fn call_with_recovery(&self, server: usize, request: &Request) -> Result<Response> {
        let mut recoveries = 0u32;
        loop {
            let conn = self.server(server)?;
            match conn.endpoint.call(request.to_bytes()) {
                Ok(bytes) => {
                    return Response::from_bytes(&bytes)
                        .map_err(|e| DclError::Protocol(e.to_string()))
                }
                Err(e) if e.is_retryable() && recoveries < 3 => {
                    recoveries += 1;
                    self.retired.lock().retries += 1;
                    self.recover_server(server)
                        .map_err(|_| DclError::ServerUnavailable(format!("{}: {e}", conn.name)))?;
                }
                Err(e) => return Err(DclError::ServerUnavailable(format!("{}: {e}", conn.name))),
            }
        }
    }

    /// Single-flight reconnect for `server`: the first caller redials, all
    /// concurrent detections (supervisor callback, failing calls) wait for
    /// its outcome.  Returns once the slot holds a live connection again.
    fn recover_server(&self, index: usize) -> Result<()> {
        if !self.failover.lock().reconnect {
            return Err(DclError::ServerUnavailable(format!(
                "server #{index} disconnected (failover disabled)"
            )));
        }
        loop {
            {
                let servers = self.servers.lock();
                match servers.get(index).and_then(|s| s.as_ref()) {
                    Some(conn) if conn.endpoint.is_open() => return Ok(()),
                    None => {
                        return Err(DclError::ServerUnavailable(format!(
                            "server #{index} was dropped"
                        )))
                    }
                    _ => {}
                }
            }
            let (address, epoch, log) = {
                let mut recovery = self.recovery.lock();
                let Some(slot) = recovery.get_mut(index) else {
                    return Err(DclError::ServerUnavailable(format!("server #{index}")));
                };
                if slot.lost {
                    return Err(DclError::ServerUnavailable(format!(
                        "server #{index} is permanently lost"
                    )));
                }
                if slot.reconnecting {
                    self.recovery_cond.wait(&mut recovery);
                    continue;
                }
                slot.reconnecting = true;
                (slot.address.clone(), slot.epoch + 1, slot.setup_log.clone())
            };
            let result = self.reconnect_attempt(index, &address, epoch, &log);
            {
                let mut recovery = self.recovery.lock();
                recovery[index].reconnecting = false;
                if result.is_ok() {
                    recovery[index].epoch = epoch;
                } else if self.failover.lock().drop_lost_servers {
                    recovery[index].lost = true;
                }
            }
            // Drop the lost server *before* waking waiters: a caller that
            // blocked on this recovery must observe the updated roster (and
            // invalidated directory entries) when its call returns.
            if result.is_err() && self.failover.lock().drop_lost_servers {
                self.drop_server(index);
            }
            self.recovery_cond.notify_all();
            return result;
        }
    }

    /// One full redial: retire the dead endpoint, reconnect with backoff,
    /// re-handshake with the bumped epoch, and — if the daemon did not park
    /// our session — replay the setup log and invalidate the server's
    /// buffer copies.
    fn reconnect_attempt(
        &self,
        index: usize,
        address: &str,
        epoch: u64,
        log: &[Request],
    ) -> Result<()> {
        // Close the dead endpoint but leave it in the roster: its traffic
        // counters are retired exactly once, at the point the slot is
        // actually vacated (replaced below on success, or by `drop_server`
        // on permanent loss) — retiring here too would double-count.
        if let Ok(old) = self.server(index) {
            old.endpoint.close();
        }
        let backoff = self.failover.lock().backoff;
        let (endpoint, devices, resumed) = retry_with_backoff(&backoff, |_attempt| {
            self.handshake(address, epoch).map_err(|e| match e {
                DclError::Network(g) => g,
                other => gcf::GcfError::Disconnected(other.to_string()),
            })
        })
        .map_err(DclError::Network)?;
        self.retired.lock().reconnects += 1;
        if !resumed {
            // The daemon lost our session (restart): rebuild every remote
            // object, then mark this server's buffer copies stale so the
            // MSI directory re-validates them from a surviving copy.
            for request in log {
                self.charge_message(Phase::Initialization, request);
                let bytes = endpoint.call(request.to_bytes()).map_err(DclError::Network)?;
                Response::from_bytes(&bytes)
                    .map_err(|e| DclError::Protocol(e.to_string()))?
                    .into_result()?;
            }
            let mut dirs = self.buffer_dirs.lock();
            dirs.retain(|d| d.strong_count() > 0);
            for dir in dirs.iter().filter_map(Weak::upgrade) {
                dir.lock().invalidate_server(index);
            }
        }
        let conn = Arc::new(ServerConn {
            name: address.to_string(),
            endpoint: Arc::clone(&endpoint),
            devices,
        });
        if let Some(old) = self.servers.lock()[index].replace(conn) {
            *self.retired.lock() += old.endpoint.stats();
        }
        self.install_supervisor(index, &endpoint);
        Ok(())
    }

    /// Dial `address`, handshake (`Hello` with `epoch`), fetch the device
    /// list.  Shared by first connect and reconnect.
    fn handshake(
        &self,
        address: &str,
        epoch: u64,
    ) -> Result<(Arc<Endpoint>, Vec<DeviceDescriptor>, bool)> {
        let conn = self.transport.connect(address)?;
        let handler = Arc::new(ClientHandler { inner: self.self_weak.clone() });
        let endpoint = Endpoint::new(conn, handler, format!("client-{}", self.name));

        let hello = Request::Hello {
            client_name: self.name.clone(),
            auth_id: self.auth_id.lock().clone(),
            epoch,
        };
        self.charge_message(Phase::Initialization, &hello);
        let response = Response::from_bytes(&endpoint.call(hello.to_bytes())?)
            .map_err(|e| DclError::Protocol(e.to_string()))?;
        let resumed = match response.into_result()? {
            Response::SessionInfo(info) => info.resumed,
            _ => false,
        };

        let list_req = Request::GetDeviceList;
        self.charge_message(Phase::Initialization, &list_req);
        let response = Response::from_bytes(&endpoint.call(list_req.to_bytes())?)
            .map_err(|e| DclError::Protocol(e.to_string()))?;
        let devices = match response.into_result()? {
            Response::DeviceList { devices } => devices,
            other => return Err(DclError::Protocol(format!("unexpected response {other:?}"))),
        };
        Ok((endpoint, devices, resumed))
    }

    /// Wire the endpoint's death notification to the recovery routine.  The
    /// callback runs on the dying endpoint's receiver thread, so the actual
    /// redial is pushed to a fresh thread.
    fn install_supervisor(&self, index: usize, endpoint: &Arc<Endpoint>) {
        let weak = self.self_weak.clone();
        endpoint.set_supervisor(Arc::new(move |_reason: &str| {
            let Some(inner) = weak.upgrade() else { return };
            std::thread::Builder::new()
                .name("dcl-reconnect".to_string())
                .spawn(move || {
                    let _ = inner.recover_server(index);
                })
                .ok();
        }));
    }

    /// Permanently drop `server`: retire its endpoint, fail its outstanding
    /// events and pending batches with the wait-list error, keep going on
    /// the survivors.
    fn drop_server(&self, index: usize) {
        if let Some(conn) = self.servers.lock()[index].take() {
            *self.retired.lock() += conn.endpoint.stats();
            conn.endpoint.close();
        }
        let doomed: Vec<ObjectId> = {
            let mut state = self.batches.lock();
            let queues: Vec<ObjectId> =
                state.queues.iter().filter(|(_, b)| b.server == index).map(|(id, _)| *id).collect();
            let mut events = Vec::new();
            for q in queues {
                if let Some(batch) = state.queues.remove(&q) {
                    for entry in batch.entries {
                        state.event_queue.remove(&entry.event_id);
                        events.push(entry.event_id);
                    }
                }
            }
            events
        };
        self.fail_events(&doomed, -14);
        let orphaned: Vec<ObjectId> = self
            .events
            .lock()
            .iter()
            .filter(|(_, r)| r.owner == index && r.status.lock().is_none())
            .map(|(id, _)| *id)
            .collect();
        self.fail_events(&orphaned, -14);
        // The dead server's buffer copies are gone with it: mark them
        // invalid so delta plans re-validate from the surviving copies —
        // in range mode moving only the ranges that actually lived there.
        let mut dirs = self.buffer_dirs.lock();
        dirs.retain(|d| d.strong_count() > 0);
        for dir in dirs.iter().filter_map(Weak::upgrade) {
            dir.lock().invalidate_server(index);
        }
    }

    fn call_server_on(
        &self,
        conn: &Arc<ServerConn>,
        request: &Request,
        phase: Phase,
    ) -> Result<Response> {
        self.charge_message(phase, request);
        let bytes = conn
            .endpoint
            .call(request.to_bytes())
            .map_err(|e| DclError::ServerUnavailable(format!("{}: {e}", conn.name)))?;
        let response =
            Response::from_bytes(&bytes).map_err(|e| DclError::Protocol(e.to_string()))?;
        response.into_result()
    }
}

struct ClientHandler {
    inner: Weak<ClientInner>,
}

impl EndpointHandler for ClientHandler {
    fn handle_request(&self, _payload: &[u8]) -> Vec<u8> {
        // Daemons never issue requests to the client in the current
        // protocol; answer with an empty payload.
        Vec::new()
    }

    fn handle_notification(&self, payload: &[u8]) {
        let Some(inner) = self.inner.upgrade() else { return };
        let Ok(notification) = Notification::from_bytes(payload) else { return };
        match notification {
            Notification::EventCompleted { event_id, status, modeled_nanos, .. } => {
                inner.complete_event(event_id, status, modeled_nanos);
            }
        }
    }
}

/// The dOpenCL client driver: the application-facing entry point.
///
/// `Client` owns platform- and server-level state; object-level operations
/// live on the stubs it hands out (see the [module docs](self) for the full
/// object model and the migration table from the pre-0.2 god-object API).
#[derive(Clone)]
pub struct Client {
    inner: Arc<ClientInner>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("name", &self.inner.name)
            .field("servers", &self.inner.servers.lock().iter().filter(|s| s.is_some()).count())
            .finish()
    }
}

impl Client {
    /// Create a client driver that reaches its servers through `transport`
    /// over a network modelled by `link`, charging modelled time to `clock`.
    pub fn new(
        name: impl Into<String>,
        transport: Arc<dyn Transport>,
        link: LinkModel,
        clock: SimClock,
    ) -> Client {
        let name = name.into();
        Client {
            inner: Arc::new_cyclic(|self_weak| ClientInner {
                name,
                self_weak: self_weak.clone(),
                transport,
                link,
                clock,
                next_id: AtomicU64::new(1),
                servers: Mutex::new(Vec::new()),
                events: Mutex::new(HashMap::new()),
                batches: Mutex::new(BatchState::default()),
                batching: AtomicBool::new(true),
                auth_id: Mutex::new(None),
                recovery: Mutex::new(Vec::new()),
                recovery_cond: Condvar::new(),
                failover: Mutex::new(FailoverPolicy::default()),
                retired: Mutex::new(TrafficStats::default()),
                buffer_dirs: Mutex::new(Vec::new()),
                coherence_mode: Mutex::new(CoherenceMode::from_env()),
            }),
        }
    }

    /// The dOpenCL platform name (`CL_PLATFORM_NAME` of the uniform platform
    /// of Section III-E).
    pub fn platform_name(&self) -> &'static str {
        "dOpenCL"
    }

    /// The dOpenCL platform vendor.
    pub fn platform_vendor(&self) -> &'static str {
        "University of Muenster (reproduction)"
    }

    /// The simulation clock this client charges modelled time to.
    pub fn clock(&self) -> SimClock {
        self.inner.clock.clone()
    }

    /// The link model used between this client and its servers.
    pub fn link(&self) -> LinkModel {
        self.inner.link.clone()
    }

    /// Set the lease authentication id obtained from the device manager
    /// (presented to every server connected afterwards).
    pub fn set_auth_id(&self, auth_id: Option<String>) {
        *self.inner.auth_id.lock() = auth_id;
    }

    /// Enable or disable client-side command batching (enabled by default).
    ///
    /// With batching off every enqueue ships immediately as a batch of one —
    /// the per-command round-trip behaviour the figure harnesses use as the
    /// "before" measurement.  Disabling flushes everything pending.
    pub fn set_batching(&self, enabled: bool) {
        self.inner.batching.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.inner.flush_all();
        }
    }

    /// Coherence tracking granularity for buffers created from now on:
    /// range-granular delta transfers ([`CoherenceMode::Range`], the
    /// default) or the whole-buffer oracle ([`CoherenceMode::Whole`],
    /// also selectable with `DCL_COHERENCE=whole`).  Existing buffers keep
    /// the mode they were created with.
    pub fn set_coherence_mode(&self, mode: CoherenceMode) {
        *self.inner.coherence_mode.lock() = mode;
    }

    /// The coherence mode buffers are currently created with.
    pub fn coherence_mode(&self) -> CoherenceMode {
        *self.inner.coherence_mode.lock()
    }

    /// Aggregated wire-traffic counters over every connected server's
    /// endpoint (requests, notifications, bulk stream bytes).
    pub fn traffic_stats(&self) -> TrafficStats {
        // Start from the retired counters (replaced endpoints, reconnects,
        // retries) so totals stay monotonic across connection failures.
        let mut total = *self.inner.retired.lock();
        let servers = self.inner.servers.lock();
        for conn in servers.iter().flatten() {
            total += conn.endpoint.stats();
        }
        total
    }

    /// Set how this client reacts to dead server connections (see the
    /// [module docs](self#failure-semantics)).
    pub fn set_failover_policy(&self, policy: FailoverPolicy) {
        *self.inner.failover.lock() = policy;
    }

    /// The current failover policy.
    pub fn failover_policy(&self) -> FailoverPolicy {
        *self.inner.failover.lock()
    }

    /// Query the daemon-side session of `server`: epoch, identity and the
    /// dedup-window counters (exactly-once bookkeeping).
    pub fn session_info(&self, server: ServerId) -> Result<SessionInfo> {
        let response =
            self.inner.call_server(server.0, Request::GetSessionInfo, Phase::Initialization)?;
        match response {
            Response::SessionInfo(info) => Ok(info),
            other => Err(DclError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    // ----- server management (Listing 1: the WWU API extension) -----------

    /// `clConnectServerWWU`: connect to the daemon at `address`, adding its
    /// devices to the application's device list.
    pub fn connect_server(&self, address: &str) -> Result<ServerId> {
        let (endpoint, devices, _resumed) = self.inner.handshake(address, 0)?;
        let index = {
            let mut servers = self.inner.servers.lock();
            let index = servers.len();
            servers.push(Some(Arc::new(ServerConn {
                name: address.to_string(),
                endpoint: Arc::clone(&endpoint),
                devices,
            })));
            self.inner.recovery.lock().push(SlotRecovery {
                address: address.to_string(),
                epoch: 0,
                setup_log: Vec::new(),
                reconnecting: false,
                lost: false,
            });
            index
        };
        self.inner.install_supervisor(index, &endpoint);
        Ok(ServerId(index))
    }

    /// Connect to every server listed in a configuration file's contents
    /// (Listing 2), as the automatic connection mechanism does during
    /// application initialization.
    pub fn connect_from_config(&self, contents: &str) -> Result<Vec<ServerId>> {
        let mut ids = Vec::new();
        for entry in config::parse_server_list(contents)? {
            ids.push(self.connect_server(&entry.address())?);
        }
        Ok(ids)
    }

    /// `clDisconnectServerWWU`: disconnect a server; its devices become
    /// unavailable.  Pending command batches for the server are flushed
    /// first.
    pub fn disconnect_server(&self, server: ServerId) -> Result<()> {
        let _ = self.inner.flush_server(server.0);
        let conn = self.inner.server(server.0)?;
        let request = Request::Disconnect;
        self.inner.charge_message(Phase::Initialization, &request);
        let _ = conn.endpoint.call(request.to_bytes());
        conn.endpoint.close();
        self.inner.servers.lock()[server.0] = None;
        Ok(())
    }

    /// `clGetServerInfoWWU`: query information about a connected server.
    pub fn server_info(&self, server: ServerId) -> Result<ServerInfo> {
        let response =
            self.inner.call_server(server.0, Request::GetServerInfo, Phase::Initialization)?;
        match response {
            Response::ServerInfo(info) => Ok(info),
            other => Err(DclError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Ids of the currently connected servers.
    pub fn servers(&self) -> Vec<ServerId> {
        self.inner
            .servers
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| ServerId(i)))
            .collect()
    }

    /// The id of the connected server at `address`, if any.
    pub fn server_by_address(&self, address: &str) -> Option<ServerId> {
        self.inner
            .servers
            .lock()
            .iter()
            .enumerate()
            .find(|(_, s)| s.as_ref().map(|s| s.name == address).unwrap_or(false))
            .map(|(i, _)| ServerId(i))
    }

    /// Reconcile the connected-server set with a lease's current server
    /// list — the client half of a resource-manager `LeaseChanged` notice
    /// (migration, preemption, failover).  Servers in `addresses` that are
    /// not yet connected are connected; connected servers *not* in the list
    /// are disconnected (their buffer copies are already invalid — the
    /// coherence directory re-validates from the survivors on next use).
    /// Returns the ids now backing the lease, in `addresses` order.
    pub fn sync_servers(&self, addresses: &[String]) -> Result<Vec<ServerId>> {
        let mut ids = Vec::new();
        for address in addresses {
            match self.server_by_address(address) {
                Some(id) => ids.push(id),
                None => ids.push(self.connect_server(address)?),
            }
        }
        for id in self.servers() {
            let name = self.inner.server(id.0)?.name.clone();
            if !addresses.contains(&name) {
                let _ = self.disconnect_server(id);
            }
        }
        Ok(ids)
    }

    /// All devices of all connected servers, merged into the single device
    /// list of the dOpenCL platform.
    pub fn devices(&self) -> Vec<Device> {
        let servers = self.inner.servers.lock();
        let mut out = Vec::new();
        for (index, server) in servers.iter().enumerate() {
            if let Some(server) = server {
                for d in &server.devices {
                    out.push(Device { server: index, descriptor: d.clone() });
                }
            }
        }
        out
    }

    /// Devices of the given [`DeviceType`].
    pub fn devices_of(&self, kind: DeviceType) -> Vec<Device> {
        self.devices().into_iter().filter(|d| d.kind() == kind).collect()
    }

    // ----- deprecated god-object forwarding shims --------------------------
    //
    // The pre-0.2 API routed every object operation through `Client`.  The
    // shims below keep those call sites compiling for one release; they
    // forward to the handle methods, which are the only implementation.

    /// Devices of a given type (`"CPU"`, `"GPU"`, ...).
    #[deprecated(since = "0.2.0", note = "use `devices_of(DeviceType::...)` instead")]
    pub fn devices_of_type(&self, device_type: &str) -> Vec<Device> {
        self.devices_of(DeviceType::parse(device_type))
    }

    /// `clCreateContext` over any mix of devices from any servers.
    #[deprecated(since = "0.2.0", note = "use `Context::new(&client, &devices)` instead")]
    pub fn create_context(&self, devices: &[Device]) -> Result<Context> {
        Context::new(self, devices)
    }

    /// `clCreateCommandQueue` for `device` within `context`.
    #[deprecated(since = "0.2.0", note = "use `context.create_command_queue(&device)` instead")]
    pub fn create_command_queue(&self, context: &Context, device: &Device) -> Result<CommandQueue> {
        self.inner.create_command_queue(context, device)
    }

    /// `clCreateBuffer` of `size` bytes.
    #[deprecated(since = "0.2.0", note = "use `context.create_buffer(size)` instead")]
    pub fn create_buffer(&self, context: &Context, size: usize) -> Result<Buffer> {
        self.inner.create_buffer(context, size)
    }

    /// `clCreateProgramWithSource`.
    #[deprecated(
        since = "0.2.0",
        note = "use `context.create_program_with_source(source)` instead"
    )]
    pub fn create_program_with_source(&self, context: &Context, source: &str) -> Result<Program> {
        self.inner.create_program_with_source(context, source)
    }

    /// `clCreateProgramWithBuiltInKernels` (OpenCL 1.2-style).
    #[deprecated(
        since = "0.2.0",
        note = "use `context.create_program_with_built_in_kernels(names)` instead"
    )]
    pub fn create_program_with_built_in_kernels(
        &self,
        context: &Context,
        names: &str,
    ) -> Result<Program> {
        self.inner.create_program_with_built_in_kernels(context, names)
    }

    /// `clBuildProgram` on every participating server.
    #[deprecated(since = "0.2.0", note = "use `program.build()` instead")]
    pub fn build_program(&self, program: &Program) -> Result<()> {
        self.inner.build_program(program)
    }

    /// `clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)` from the first server.
    #[deprecated(since = "0.2.0", note = "use `program.build_log()` instead")]
    pub fn get_build_log(&self, program: &Program) -> Result<String> {
        self.inner.get_build_log(program)
    }

    /// `clCreateKernel`.
    #[deprecated(since = "0.2.0", note = "use `program.create_kernel(name)` instead")]
    pub fn create_kernel(&self, program: &Program, name: &str) -> Result<Kernel> {
        self.inner.create_kernel(program, name)
    }

    /// `clSetKernelArg` with a by-value argument.
    #[deprecated(since = "0.2.0", note = "use `kernel.set_arg(index, value)` instead")]
    pub fn set_kernel_arg_scalar(&self, kernel: &Kernel, index: u32, value: Value) -> Result<()> {
        self.inner.set_kernel_arg(kernel, index, Arg::Scalar(value))
    }

    /// `clSetKernelArg` with a buffer argument.
    #[deprecated(since = "0.2.0", note = "use `kernel.set_arg(index, &buffer)` instead")]
    pub fn set_kernel_arg_buffer(
        &self,
        kernel: &Kernel,
        index: u32,
        buffer: &Buffer,
    ) -> Result<()> {
        self.inner.set_kernel_arg(kernel, index, Arg::Buffer(buffer.clone()))
    }

    /// `clSetKernelArg` with a `__local` memory argument.
    #[deprecated(since = "0.2.0", note = "use `kernel.set_arg(index, Arg::local(bytes))` instead")]
    pub fn set_kernel_arg_local(&self, kernel: &Kernel, index: u32, bytes: usize) -> Result<()> {
        self.inner.set_kernel_arg(kernel, index, Arg::Local(bytes))
    }

    /// `clEnqueueWriteBuffer`: upload `data` into `buffer` through `queue`.
    #[deprecated(
        since = "0.2.0",
        note = "use `queue.write_buffer(&buffer, data).at_offset(o).after(&ws).submit()` instead"
    )]
    pub fn enqueue_write_buffer(
        &self,
        queue: &CommandQueue,
        buffer: &Buffer,
        offset: usize,
        data: &[u8],
        wait_list: &[Event],
    ) -> Result<Event> {
        queue.write_buffer(buffer, data).at_offset(offset).after(wait_list).submit()
    }

    /// `clEnqueueReadBuffer` (blocking): download `len` bytes at `offset`.
    #[deprecated(
        since = "0.2.0",
        note = "use `queue.read_buffer(&buffer).at_offset(o).len(n).after(&ws).submit()` instead"
    )]
    pub fn enqueue_read_buffer(
        &self,
        queue: &CommandQueue,
        buffer: &Buffer,
        offset: usize,
        len: usize,
        wait_list: &[Event],
    ) -> Result<(Vec<u8>, Event)> {
        queue.read_buffer(buffer).at_offset(offset).len(len).after(wait_list).submit()
    }

    /// `clEnqueueNDRangeKernel`.
    #[deprecated(
        since = "0.2.0",
        note = "use `queue.launch(&kernel, range).after(&ws).submit()` instead"
    )]
    pub fn enqueue_nd_range_kernel(
        &self,
        queue: &CommandQueue,
        kernel: &Kernel,
        range: NdRange,
        wait_list: &[Event],
    ) -> Result<Event> {
        queue.launch(kernel, range).after(wait_list).submit()
    }

    /// `clEnqueueMarkerWithWaitList`.
    #[deprecated(since = "0.2.0", note = "use `queue.marker().after(&ws).submit()` instead")]
    pub fn enqueue_marker(&self, queue: &CommandQueue, wait_list: &[Event]) -> Result<Event> {
        queue.marker().after(wait_list).submit()
    }

    /// `clFinish`: block until every command previously enqueued on `queue`
    /// has completed.
    #[deprecated(since = "0.2.0", note = "use `queue.finish()` instead")]
    pub fn finish(&self, queue: &CommandQueue) -> Result<()> {
        queue.finish()
    }

    /// `clWaitForEvents`.
    #[deprecated(since = "0.2.0", note = "use `Event::wait_all(&events)` instead")]
    pub fn wait_for_events(&self, events: &[Event]) -> Result<()> {
        Event::wait_all(events)
    }
}
