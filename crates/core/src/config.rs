//! Server configuration files.
//!
//! Section III-C of the paper: "The user can specify a list of available
//! servers by a configuration file ... placed into the application's
//! execution directory.  During the application's initialization phase ...
//! the client driver automatically connects to the servers specified in the
//! configuration file."  The format is one server per line (host name or IP
//! address with an optional port), `#` starts a comment (Listing 2).

use crate::error::{DclError, Result};

/// A parsed server entry from a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerEntry {
    /// Host name or IP address (or an in-process node name).
    pub host: String,
    /// Optional port; `None` means the daemon's default port.
    pub port: Option<u16>,
}

impl ServerEntry {
    /// The address string used to connect through a transport: `host` or
    /// `host:port`.
    pub fn address(&self) -> String {
        match self.port {
            Some(p) => format!("{}:{p}", self.host),
            None => self.host.clone(),
        }
    }
}

/// Parse the contents of a server configuration file (Listing 2 of the
/// paper).
pub fn parse_server_list(contents: &str) -> Result<Vec<ServerEntry>> {
    let mut entries = Vec::new();
    for (line_no, raw_line) in contents.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Strip trailing comments.
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.contains(char::is_whitespace) {
            return Err(DclError::Config(format!(
                "line {}: a server entry must not contain whitespace: '{line}'",
                line_no + 1
            )));
        }
        let entry = match line.rsplit_once(':') {
            Some((host, port_text)) if !host.is_empty() => match port_text.parse::<u16>() {
                Ok(port) => ServerEntry { host: host.to_string(), port: Some(port) },
                Err(_) => {
                    return Err(DclError::Config(format!(
                        "line {}: invalid port '{port_text}'",
                        line_no + 1
                    )))
                }
            },
            _ => ServerEntry { host: line.to_string(), port: None },
        };
        entries.push(entry);
    }
    Ok(entries)
}

/// Read and parse a server configuration file from disk.
pub fn load_server_list(path: &std::path::Path) -> Result<Vec<ServerEntry>> {
    let contents = std::fs::read_to_string(path)
        .map_err(|e| DclError::Config(format!("cannot read {}: {e}", path.display())))?;
    parse_server_list(&contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let contents = r#"
            # connect to server 'gpuserver.example.com'
            gpuserver.example.com
            # connect to server in local network
            128.129.1.1:7079
        "#;
        let entries = parse_server_list(contents).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].host, "gpuserver.example.com");
        assert_eq!(entries[0].port, None);
        assert_eq!(entries[0].address(), "gpuserver.example.com");
        assert_eq!(entries[1].host, "128.129.1.1");
        assert_eq!(entries[1].port, Some(7079));
        assert_eq!(entries[1].address(), "128.129.1.1:7079");
    }

    #[test]
    fn trailing_comments_and_blank_lines_are_ignored() {
        let entries = parse_server_list("node0   # primary\n\n   \nnode1:80\n").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].host, "node0");
    }

    #[test]
    fn invalid_port_is_an_error() {
        assert!(parse_server_list("host:notaport").is_err());
        assert!(parse_server_list("host:99999").is_err());
    }

    #[test]
    fn whitespace_inside_entry_is_an_error() {
        assert!(parse_server_list("two words").is_err());
    }

    #[test]
    fn empty_file_yields_no_servers() {
        assert!(parse_server_list("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn missing_file_is_a_config_error() {
        let err = load_server_list(std::path::Path::new("/definitely/not/here.conf")).unwrap_err();
        assert!(matches!(err, DclError::Config(_)));
    }
}
