//! # dopencl — distributed OpenCL middleware (the paper's contribution)
//!
//! This crate reproduces **dOpenCL** (Kegel, Steuwer, Gorlatch, IPDPSW
//! 2012): a middleware that makes the OpenCL devices installed on any node
//! of a distributed system usable by a single application as if they were
//! local.
//!
//! The pieces map to the paper as follows:
//!
//! | Paper concept (section) | Module |
//! |---|---|
//! | Client driver, dOpenCL platform, stubs & compound stubs (III-B, III-D, III-E) | [`client`] |
//! | Daemon forwarding calls to the native OpenCL implementation (III-B) | [`daemon`] |
//! | Message-based / stream-based communication (III-B) | [`protocol`] over [`gcf`] |
//! | Directory-based MSI consistency of memory objects (III-D) | [`coherence`] |
//! | Event consistency via user events + completion callbacks (III-D) | [`client`] + [`daemon`] |
//! | Server configuration file & automatic connection (III-C, Listing 2) | [`config`] |
//! | `clConnectServerWWU` / `clDisconnectServerWWU` / `clGetServerInfoWWU` (Listing 1) | [`ext`] |
//! | Device manager integration hooks (IV) | [`daemon::AccessPolicy`] (implemented by the `devmgr` crate) |
//!
//! The [`cluster`] module provides an in-process harness that assembles
//! clients and daemons into the three hardware setups of the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod coherence;
pub mod config;
pub mod daemon;
pub mod error;
pub mod ext;
pub mod protocol;

pub use client::{Buffer, Client, CommandQueue, Context, Device, Event, Kernel, Program, ServerId};
pub use cluster::{desktop_and_gpu_server, infiniband_cpu_cluster, LocalCluster};
pub use daemon::{AccessPolicy, Daemon, DaemonStats, OpenAccess};
pub use error::{DclError, Result};
pub use protocol::{DeviceDescriptor, ObjectId, ServerInfo};

// Re-export the types that appear in the public API so that applications
// only need this crate plus `vocl` for device-side values.
pub use gcf::simtime::{Phase, PhaseBreakdown, SimClock};
pub use gcf::LinkModel;
pub use vocl::{NdRange, Value};
