//! # dopencl — distributed OpenCL middleware (the paper's contribution)
//!
//! This crate reproduces **dOpenCL** (Kegel, Steuwer, Gorlatch, IPDPSW
//! 2012): a middleware that makes the OpenCL devices installed on any node
//! of a distributed system usable by a single application as if they were
//! local.
//!
//! # The handle-based object API
//!
//! The public API mirrors the object model of a native OpenCL binding:
//! operations live on the object that owns them, not on a central
//! god-object.  A [`Client`] only manages servers and enumerates devices;
//! everything else hangs off the handles it creates:
//!
//! ```no_run
//! use dopencl::{Client, Context, DeviceType, Event, NdRange, Value};
//! # fn run(client: Client) -> dopencl::Result<()> {
//! let gpus = client.devices_of(DeviceType::Gpu);
//! let context = Context::new(&client, &gpus)?;
//! let queue = context.create_command_queue(&gpus[0])?;
//! let buffer = context.create_buffer(4096)?;
//! let program = context.create_program_with_source("__kernel void f() {}")?;
//! program.build()?;
//! let kernel = program.create_kernel("f")?;
//! kernel.set_arg(0, &buffer)?;
//! kernel.set_arg(1, Value::uint(42))?;
//!
//! let written = queue.write_buffer(&buffer, &[0u8; 4096]).submit()?;
//! let ran = queue.launch(&kernel, NdRange::linear(1024)).after(&[written]).submit()?;
//! let (bytes, _read) = queue.read_buffer(&buffer).after(&[ran]).submit()?;
//! queue.finish()?;
//! # let _ = bytes; Ok(())
//! # }
//! ```
//!
//! Handles stay valid as long as *any* clone of their [`Client`] lives;
//! afterwards operations return [`DclError::ClientDropped`].  The enqueue
//! builders ([`client::WriteBufferOp`], [`client::ReadBufferOp`],
//! [`client::LaunchOp`], [`client::MarkerOp`]) carry offset / wait-list /
//! blocking options so future capabilities (batching, async submission) can
//! be added without changing any signatures.  The old `Client` methods
//! survive one release as `#[deprecated]` forwarding shims; the migration
//! table lives in the [`client`] module docs.
//!
//! # Mapping to the paper
//!
//! | Paper concept (section) | Module |
//! |---|---|
//! | Client driver, dOpenCL platform, stubs & compound stubs (III-B, III-D, III-E) | [`client`] |
//! | Daemon forwarding calls to the native OpenCL implementation (III-B) | [`daemon`] |
//! | Message-based / stream-based communication (III-B) | [`protocol`] over [`gcf`] |
//! | Directory-based MSI consistency of memory objects (III-D) | [`coherence`] |
//! | Event consistency via user events + completion callbacks (III-D) | [`client`] + [`daemon`] |
//! | Server configuration file & automatic connection (III-C, Listing 2) | [`config`] |
//! | `clConnectServerWWU` / `clDisconnectServerWWU` / `clGetServerInfoWWU` (Listing 1) | [`ext`] |
//! | Device manager integration hooks (IV) | [`daemon::AccessPolicy`] (implemented by the `devmgr` crate) |
//!
//! The [`cluster`] module provides an in-process harness that assembles
//! clients and daemons into the three hardware setups of the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod coherence;
pub mod config;
pub mod daemon;
pub mod error;
pub mod ext;
pub mod protocol;

pub use client::{
    Arg, Buffer, Client, CommandQueue, Context, Device, DeviceType, Event, FailoverPolicy, Kernel,
    LaunchOp, MarkerOp, PendingRead, Program, ReadBufferOp, ServerId, WriteBufferOp,
};
pub use cluster::{desktop_and_gpu_server, infiniband_cpu_cluster, LocalCluster};
pub use daemon::{AccessPolicy, Daemon, DaemonStats, OpenAccess};
pub use error::{DclError, Result};
pub use protocol::{DeviceDescriptor, ObjectId, ServerInfo, SessionInfo};

// Re-export the types that appear in the public API so that applications
// only need this crate plus `vocl` for device-side values.
pub use gcf::simtime::{Phase, PhaseBreakdown, SimClock};
pub use gcf::LinkModel;
pub use vocl::{NdRange, Value};
