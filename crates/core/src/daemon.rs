//! The dOpenCL daemon.
//!
//! A daemon runs on every server of the distributed system.  It accepts
//! connections from client drivers, receives forwarded OpenCL API calls
//! ([`crate::protocol::Request`]) and replays them against the server's
//! native OpenCL implementation (the `vocl` runtime).  For every remote
//! object the client refers to by id, the daemon keeps the id → object
//! mapping in a per-connection session table, exactly as described in
//! Section III-D of the paper ("the daemon replaces these IDs by the
//! associated remote objects and calls the corresponding function of its
//! standard OpenCL implementation").
//!
//! In *managed mode* (Section IV-A) the daemon only exposes devices that the
//! device manager has associated with the client's lease authentication id;
//! this is abstracted behind the [`AccessPolicy`] trait so that the device
//! manager crate can plug in without a dependency cycle.

use crate::protocol::{
    BatchCommand, BatchEntryStatus, DeviceDescriptor, Notification, ObjectId, Request, Response,
    ServerInfo, SessionInfo, WireNdRange,
};
use crate::Result;
use gcf::rpc::{Endpoint, EndpointHandler};
use gcf::transport::{Listener, Transport};
use gcf::wire::{Decode, Encode};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use vocl::{
    Buffer, ClError, CommandQueue, Context, Device, DeviceInfoParam, DeviceInfoValue, Event,
    EventStatus, Kernel, KernelArg, MemFlags, Platform, Program, QueueProperties,
};

/// Controls which devices a connecting client may see and use.
///
/// The default [`OpenAccess`] policy exposes every device.  The device
/// manager installs a lease-checking policy on daemons running in managed
/// mode.
pub trait AccessPolicy: Send + Sync {
    /// The devices (out of `all`) visible to a client presenting `auth_id`.
    fn visible_devices(&self, auth_id: Option<&str>, all: &[Arc<Device>]) -> Vec<Arc<Device>>;

    /// Whether this daemon runs in managed mode.
    fn managed(&self) -> bool {
        false
    }

    /// Called when a client disconnects (normally or abnormally); managed
    /// daemons report the invalidated authentication id to the device
    /// manager so its devices return to the free set.
    fn client_disconnected(&self, _auth_id: Option<&str>) {}
}

/// The default policy: every client sees every device.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpenAccess;

impl AccessPolicy for OpenAccess {
    fn visible_devices(&self, _auth_id: Option<&str>, all: &[Arc<Device>]) -> Vec<Arc<Device>> {
        all.to_vec()
    }
}

/// Counters of daemon activity, useful for tests and ablation benches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStats {
    /// Number of requests handled (all sessions).
    pub requests: u64,
    /// Number of kernel launches executed.
    pub kernel_launches: u64,
    /// Bytes received through buffer uploads.
    pub bytes_uploaded: u64,
    /// Bytes sent through buffer downloads.
    pub bytes_downloaded: u64,
    /// Number of client sessions accepted.
    pub sessions: u64,
}

/// A dOpenCL daemon serving the devices of one node.
pub struct Daemon {
    name: String,
    address: String,
    devices: Vec<Arc<Device>>,
    policy: Arc<dyn AccessPolicy>,
    stats: Arc<Mutex<DaemonStats>>,
    shutdown: Arc<AtomicBool>,
    /// Endpoints of the accepted client sessions.  The daemon keeps them
    /// alive; each endpoint owns its [`DaemonSession`] handler.
    sessions: Arc<Mutex<Vec<Arc<Endpoint>>>>,
    /// The listener, kept so [`Daemon::kill`] can unblock the accept loop.
    listener: Mutex<Option<Arc<dyn Listener>>>,
    /// Parked/live session state keyed by client identity, so a client that
    /// reconnects after a connection failure finds its remote objects and
    /// its command dedup window again.
    registry: Arc<Mutex<SessionRegistry>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("name", &self.name)
            .field("address", &self.address)
            .field("devices", &self.devices.len())
            .finish()
    }
}

impl Daemon {
    /// Start a daemon for `platform`, listening at `address` on `transport`.
    pub fn start(
        name: impl Into<String>,
        platform: &Platform,
        transport: Arc<dyn Transport>,
        address: &str,
        policy: Arc<dyn AccessPolicy>,
    ) -> Result<Arc<Daemon>> {
        let name = name.into();
        let listener: Arc<dyn Listener> = Arc::from(transport.listen(address)?);
        let bound = listener.local_addr();
        let daemon = Arc::new(Daemon {
            name: name.clone(),
            address: bound,
            devices: platform.devices().to_vec(),
            policy,
            stats: Arc::new(Mutex::new(DaemonStats::default())),
            shutdown: Arc::new(AtomicBool::new(false)),
            sessions: Arc::new(Mutex::new(Vec::new())),
            listener: Mutex::new(Some(Arc::clone(&listener))),
            registry: Arc::new(Mutex::new(SessionRegistry::default())),
        });
        let accept_daemon = Arc::downgrade(&daemon);
        std::thread::Builder::new()
            .name(format!("dcl-daemon-{name}"))
            .spawn(move || Self::accept_loop(accept_daemon, listener))
            .map_err(|e| {
                crate::DclError::Protocol(format!("cannot spawn daemon accept thread: {e}"))
            })?;
        Ok(daemon)
    }

    fn accept_loop(daemon: Weak<Daemon>, listener: Arc<dyn Listener>) {
        loop {
            let Some(strong) = daemon.upgrade() else { break };
            if strong.shutdown.load(Ordering::Acquire) {
                break;
            }
            drop(strong);
            let Ok(conn) = listener.accept() else { break };
            let Some(strong) = daemon.upgrade() else { break };
            strong.stats.lock().sessions += 1;
            let session = Arc::new(DaemonSession::new(
                strong.name.clone(),
                strong.devices.clone(),
                Arc::clone(&strong.policy),
                Arc::clone(&strong.stats),
                Arc::clone(&strong.registry),
            ));
            // The session must learn its endpoint before the receiver
            // thread dispatches the first request — a bulk download handled
            // earlier would find no endpoint to stream on.
            let endpoint = Endpoint::new_init(
                conn,
                Arc::clone(&session) as Arc<dyn EndpointHandler>,
                format!("daemon-{}", strong.name),
                |ep| session.set_endpoint(ep),
            );
            let mut sessions = strong.sessions.lock();
            // Prune endpoints whose connection died; their sessions drop
            // here, releasing leases for clients that never came back
            // (Section IV-C) — unless a reconnected session adopted the
            // state (the drop guard checks the epoch).
            sessions.retain(|ep| ep.is_open());
            sessions.push(endpoint);
        }
    }

    /// The node name of this daemon.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The address the daemon is reachable at (resolvable by the client's
    /// transport).
    pub fn address(&self) -> &str {
        &self.address
    }

    /// The devices this daemon manages (unfiltered).
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Activity counters.
    pub fn stats(&self) -> DaemonStats {
        *self.stats.lock()
    }

    /// Stop accepting new connections.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Simulate a crash: stop accepting, unblock the accept loop, and sever
    /// every client connection *without* a goodbye — clients discover the
    /// death through receive errors, exactly like a killed process.
    pub fn kill(&self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(listener) = self.listener.lock().take() {
            listener.shutdown();
        }
        let sessions: Vec<Arc<Endpoint>> = self.sessions.lock().drain(..).collect();
        for endpoint in sessions {
            endpoint.abort();
        }
    }

    /// Simulate a network partition: sever every client connection without
    /// a goodbye, but keep accepting new ones.  Clients reconnect and
    /// resume their parked sessions (the crash-recovery path without the
    /// daemon restart).
    pub fn drop_connections(&self) {
        let sessions: Vec<Arc<Endpoint>> = self.sessions.lock().drain(..).collect();
        for endpoint in sessions {
            endpoint.abort();
        }
    }

    /// Dedup-window counters of the session for `identity` (client name or
    /// auth id) — lets tests assert exactly-once execution numerically.
    pub fn dedup_counters(&self, identity: &str) -> Option<(u64, u64)> {
        let registry = self.registry.lock();
        let state = registry.by_identity.get(identity)?;
        let state = state.lock();
        Some((state.dedup.admitted, state.dedup.replayed))
    }
}

/// Bounded identity → session-state map enabling reconnect revival.
#[derive(Default)]
struct SessionRegistry {
    order: VecDeque<String>,
    by_identity: HashMap<String, Arc<Mutex<SessionState>>>,
}

/// How many distinct client identities a daemon parks state for.
const MAX_PARKED_SESSIONS: usize = 64;

impl SessionRegistry {
    /// Register `fresh` under `identity`, or — when `epoch > 0` and the
    /// identity is known — hand back the existing (parked) state instead.
    fn adopt_or_register(
        &mut self,
        identity: &str,
        epoch: u64,
        fresh: &Arc<Mutex<SessionState>>,
    ) -> (Arc<Mutex<SessionState>>, bool) {
        if epoch > 0 {
            if let Some(existing) = self.by_identity.get(identity) {
                return (Arc::clone(existing), true);
            }
        }
        if !self.by_identity.contains_key(identity) {
            self.order.push_back(identity.to_string());
            while self.order.len() > MAX_PARKED_SESSIONS {
                if let Some(evicted) = self.order.pop_front() {
                    self.by_identity.remove(&evicted);
                }
            }
        }
        self.by_identity.insert(identity.to_string(), Arc::clone(fresh));
        (Arc::clone(fresh), false)
    }
}

/// Bounded window of recently executed command ids (client-generated,
/// idempotent): a batch replayed after a reconnect is recognised here and
/// executes exactly once.
struct DedupWindow {
    capacity: usize,
    order: VecDeque<u64>,
    /// command id → completion event id of the already-executed command.
    seen: HashMap<u64, ObjectId>,
    /// Commands executed for the first time.
    admitted: u64,
    /// Replayed commands suppressed by the window.
    replayed: u64,
}

impl Default for DedupWindow {
    fn default() -> Self {
        DedupWindow {
            capacity: 4096,
            order: VecDeque::new(),
            seen: HashMap::new(),
            admitted: 0,
            replayed: 0,
        }
    }
}

impl DedupWindow {
    /// If `command_id` was executed before, count the replay and return the
    /// original completion event id.
    fn replay_hit(&mut self, command_id: u64) -> Option<ObjectId> {
        if command_id == 0 {
            return None;
        }
        let event_id = self.seen.get(&command_id).copied()?;
        self.replayed += 1;
        Some(event_id)
    }

    /// Record a command executed for the first time.
    fn admit(&mut self, command_id: u64, event_id: ObjectId) {
        if command_id == 0 {
            return;
        }
        self.admitted += 1;
        self.order.push_back(command_id);
        self.seen.insert(command_id, event_id);
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
    }
}

/// Per-connection session: the id → remote-object tables plus the handler
/// that dispatches requests onto the native runtime.
pub struct DaemonSession {
    daemon_name: String,
    all_devices: Vec<Arc<Device>>,
    policy: Arc<dyn AccessPolicy>,
    stats: Arc<Mutex<DaemonStats>>,
    endpoint: Mutex<Option<Weak<Endpoint>>>,
    /// The session state.  Shared through the daemon's [`SessionRegistry`]
    /// so a reconnecting client (re-`Hello` with a bumped epoch) finds its
    /// remote objects and dedup window again; the indirection lets `Hello`
    /// swap in parked state.
    state: Mutex<Arc<Mutex<SessionState>>>,
    /// The epoch this session adopted the state at (from its `Hello`); the
    /// drop guard skips lease release when a newer session took over.
    my_epoch: AtomicU64,
    next_stream: AtomicU64,
    registry: Arc<Mutex<SessionRegistry>>,
}

#[derive(Default)]
struct SessionState {
    client_name: String,
    auth_id: Option<String>,
    epoch: u64,
    contexts: HashMap<ObjectId, Arc<Context>>,
    queues: HashMap<ObjectId, Arc<CommandQueue>>,
    buffers: HashMap<ObjectId, Arc<Buffer>>,
    programs: HashMap<ObjectId, Arc<Program>>,
    kernels: HashMap<ObjectId, Arc<Kernel>>,
    events: HashMap<ObjectId, Arc<Event>>,
    dedup: DedupWindow,
    disconnected: bool,
}

impl DaemonSession {
    fn new(
        daemon_name: String,
        all_devices: Vec<Arc<Device>>,
        policy: Arc<dyn AccessPolicy>,
        stats: Arc<Mutex<DaemonStats>>,
        registry: Arc<Mutex<SessionRegistry>>,
    ) -> Self {
        DaemonSession {
            daemon_name,
            all_devices,
            policy,
            stats,
            endpoint: Mutex::new(None),
            state: Mutex::new(Arc::new(Mutex::new(SessionState::default()))),
            my_epoch: AtomicU64::new(0),
            next_stream: AtomicU64::new(1 << 32),
            registry,
        }
    }

    fn set_endpoint(&self, endpoint: &Arc<Endpoint>) {
        *self.endpoint.lock() = Some(Arc::downgrade(endpoint));
    }

    /// The (possibly adopted) session state.
    fn state(&self) -> Arc<Mutex<SessionState>> {
        Arc::clone(&self.state.lock())
    }

    fn endpoint(&self) -> Option<Arc<Endpoint>> {
        self.endpoint.lock().as_ref().and_then(Weak::upgrade)
    }

    fn visible_devices(&self) -> Vec<Arc<Device>> {
        let auth = self.state().lock().auth_id.clone();
        self.policy.visible_devices(auth.as_deref(), &self.all_devices)
    }

    fn device_by_id(&self, id: ObjectId) -> std::result::Result<Arc<Device>, ClError> {
        self.visible_devices().into_iter().find(|d| d.id() == id).ok_or(ClError::DeviceNotFound)
    }

    fn cl_error(e: &ClError) -> Response {
        Response::Error { code: e.code(), message: e.to_string() }
    }

    /// Drain every queue of `buffer`'s context before coherence traffic
    /// touches the buffer directly (not through a queue): a kernel that was
    /// enqueued earlier may still be writing it, and the MSI protocol
    /// assumes the copy it moves reflects all previously submitted commands.
    ///
    /// The wait is bounded: this runs on the session's receiver thread, and
    /// a queued command could be gated on a user event whose
    /// `SetUserEventComplete` arrives over that very thread — an unbounded
    /// `finish()` would then deadlock.  A queue in that state stalls the
    /// transfer for the full timeout and the data is read as-is (the
    /// pre-quiesce behaviour); the timeout is kept short so that worst case
    /// is a bounded delay, while the common case — a busy but ungated queue
    /// — drains in microseconds.  Command failures surface through their
    /// own events, so they are ignored here.
    fn quiesce_buffer_queues(&self, buffer: &Buffer) {
        let queues: Vec<Arc<CommandQueue>> = {
            let shared = self.state();
            let state = shared.lock();
            state
                .queues
                .values()
                .filter(|q| q.context().id() == buffer.context().id())
                .cloned()
                .collect()
        };
        for queue in queues {
            if let Ok(marker) = queue.enqueue_marker(Vec::new()) {
                let _ = marker.wait_timeout(Duration::from_millis(500));
            }
        }
    }

    fn missing(kind: &str, id: ObjectId) -> Response {
        Response::Error { code: -34, message: format!("unknown {kind} id {id}") }
    }

    /// Register a completion callback on `event` that reports completion to
    /// the client as a notification.
    fn notify_on_completion(&self, event_id: ObjectId, event: &Arc<Event>) {
        let endpoint = self.endpoint.lock().clone();
        let weak_event = Arc::downgrade(event);
        event.on_complete(Box::new(move |status| {
            let Some(endpoint) = endpoint.as_ref().and_then(Weak::upgrade) else { return };
            let Some(event) = weak_event.upgrade() else { return };
            let (modeled_nanos, work_items) = (
                event.modeled_duration().as_nanos() as u64,
                event.counters().map(|c| c.work_items).unwrap_or(0),
            );
            let status_code = match status {
                EventStatus::Complete => 0,
                EventStatus::Error(code) => code,
                other => other.code(),
            };
            let notification = Notification::EventCompleted {
                event_id,
                status: status_code,
                modeled_nanos,
                work_items,
            };
            let _ = endpoint.notify(notification.to_bytes());
        }));
    }

    fn resolve_wait_list(
        state: &SessionState,
        wait_events: &[ObjectId],
    ) -> std::result::Result<Vec<Arc<Event>>, Response> {
        let mut out = Vec::with_capacity(wait_events.len());
        for id in wait_events {
            match state.events.get(id) {
                Some(e) => out.push(Arc::clone(e)),
                None => return Err(Self::missing("event", *id)),
            }
        }
        Ok(out)
    }

    /// Resolve queue + wait list for an enqueue; `chain` is the implicit
    /// extra dependency batch entries carry on their queue's previous entry,
    /// so that an execution-time failure of entry *k* fails entries
    /// *k+1..N* of the same queue (wait-list error propagation, code -14).
    fn resolve_enqueue(
        &self,
        queue_id: ObjectId,
        wait_events: &[ObjectId],
        chain: Option<&Arc<Event>>,
    ) -> std::result::Result<(Arc<CommandQueue>, Vec<Arc<Event>>), Response> {
        let shared = self.state();
        let state = shared.lock();
        let queue = match state.queues.get(&queue_id) {
            Some(q) => Arc::clone(q),
            None => return Err(Self::missing("queue", queue_id)),
        };
        let mut wait = Self::resolve_wait_list(&state, wait_events)?;
        if let Some(prev) = chain {
            wait.push(Arc::clone(prev));
        }
        Ok((queue, wait))
    }

    fn buffer_by_id(&self, buffer_id: ObjectId) -> std::result::Result<Arc<Buffer>, Response> {
        match self.state().lock().buffers.get(&buffer_id) {
            Some(b) => Ok(Arc::clone(b)),
            None => Err(Self::missing("buffer", buffer_id)),
        }
    }

    /// Record a freshly enqueued command's event: push its completion to the
    /// client and remember it for later wait lists.
    fn track_event(&self, event_id: ObjectId, event: &Arc<Event>) {
        self.notify_on_completion(event_id, event);
        self.state().lock().events.insert(event_id, Arc::clone(event));
    }

    // ----- per-command enqueue (shared by the legacy arms and EnqueueBatch) --

    #[allow(clippy::too_many_arguments)]
    fn enqueue_write_entry(
        &self,
        queue_id: ObjectId,
        buffer_id: ObjectId,
        offset: u64,
        size: u64,
        event_id: ObjectId,
        stream_id: u64,
        wait_events: &[ObjectId],
        chain: Option<&Arc<Event>>,
    ) -> std::result::Result<Arc<Event>, Response> {
        let Some(endpoint) = self.endpoint() else {
            return Err(Response::Error { code: -36, message: "no endpoint".into() });
        };
        // The client sends the bulk payload before the request, so the
        // stream has already been reassembled.
        let data = match endpoint.wait_bulk(stream_id, Duration::from_secs(120)) {
            Ok(d) => d,
            Err(e) => {
                return Err(Response::Error {
                    code: -30,
                    message: format!("missing upload stream: {e}"),
                })
            }
        };
        if data.len() as u64 != size {
            return Err(Response::Error {
                code: -30,
                message: format!("upload size mismatch: expected {size}, got {}", data.len()),
            });
        }
        self.stats.lock().bytes_uploaded += size;
        let (queue, wait) = self.resolve_enqueue(queue_id, wait_events, chain)?;
        let buffer = self.buffer_by_id(buffer_id)?;
        let event = queue
            .enqueue_write_buffer(&buffer, offset as usize, data, wait)
            .map_err(|e| Self::cl_error(&e))?;
        self.track_event(event_id, &event);
        Ok(event)
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue_read_entry(
        &self,
        queue_id: ObjectId,
        buffer_id: ObjectId,
        offset: u64,
        size: u64,
        event_id: ObjectId,
        stream_id: u64,
        wait_events: &[ObjectId],
        chain: Option<&Arc<Event>>,
    ) -> std::result::Result<Arc<Event>, Response> {
        let (queue, wait) = self.resolve_enqueue(queue_id, wait_events, chain)?;
        let buffer = self.buffer_by_id(buffer_id)?;
        let event = queue
            .enqueue_read_buffer(&buffer, offset as usize, size as usize, wait)
            .map_err(|e| Self::cl_error(&e))?;
        // When the read completes, ship the data to the client as a bulk
        // stream; the completion notification follows (FIFO), so by the
        // time the client's event resolves the data is en route.
        let endpoint = self.endpoint.lock().clone();
        let weak_event = Arc::downgrade(&event);
        let stats = Arc::clone(&self.stats);
        event.on_complete(Box::new(move |status| {
            let Some(endpoint) = endpoint.as_ref().and_then(Weak::upgrade) else {
                return;
            };
            if status == EventStatus::Complete {
                if let Some(event) = weak_event.upgrade() {
                    if let Some(data) = event.take_result() {
                        stats.lock().bytes_downloaded += data.len() as u64;
                        let _ = endpoint.send_bulk(stream_id, &data);
                    }
                }
            }
        }));
        self.track_event(event_id, &event);
        Ok(event)
    }

    fn enqueue_nd_range_entry(
        &self,
        queue_id: ObjectId,
        kernel_id: ObjectId,
        event_id: ObjectId,
        range: WireNdRange,
        wait_events: &[ObjectId],
        chain: Option<&Arc<Event>>,
    ) -> std::result::Result<Arc<Event>, Response> {
        let (queue, wait) = self.resolve_enqueue(queue_id, wait_events, chain)?;
        let kernel = match self.state().lock().kernels.get(&kernel_id) {
            Some(k) => Arc::clone(k),
            None => return Err(Self::missing("kernel", kernel_id)),
        };
        self.stats.lock().kernel_launches += 1;
        let event = queue
            .enqueue_nd_range_kernel(&kernel, range.0, wait)
            .map_err(|e| Self::cl_error(&e))?;
        self.track_event(event_id, &event);
        Ok(event)
    }

    fn enqueue_marker_entry(
        &self,
        queue_id: ObjectId,
        event_id: ObjectId,
        wait_events: &[ObjectId],
        chain: Option<&Arc<Event>>,
    ) -> std::result::Result<Arc<Event>, Response> {
        let (queue, wait) = self.resolve_enqueue(queue_id, wait_events, chain)?;
        let event = queue.enqueue_marker(wait).map_err(|e| Self::cl_error(&e))?;
        self.track_event(event_id, &event);
        Ok(event)
    }

    fn handle(&self, request: Request) -> Response {
        self.stats.lock().requests += 1;
        match request {
            Request::Hello { client_name, auth_id, epoch } => {
                // A client identifies itself by auth id when it has one (the
                // device manager hands those out), otherwise by name.  A
                // reconnecting client re-sends Hello with a bumped epoch and
                // adopts the state its previous connection parked in the
                // daemon's registry — remote objects and dedup window
                // survive the connection, per Section IV-C.
                let identity = auth_id.clone().unwrap_or_else(|| client_name.clone());
                let fresh = self.state();
                let (shared, resumed) =
                    self.registry.lock().adopt_or_register(&identity, epoch, &fresh);
                *self.state.lock() = Arc::clone(&shared);
                self.my_epoch.store(epoch, Ordering::Release);
                let mut state = shared.lock();
                state.client_name = client_name;
                state.auth_id = auth_id.clone();
                state.epoch = epoch;
                state.disconnected = false;
                Response::SessionInfo(SessionInfo {
                    auth_id,
                    epoch,
                    resumed,
                    dedup_admitted: state.dedup.admitted,
                    dedup_replayed: state.dedup.replayed,
                })
            }
            Request::GetSessionInfo => {
                let shared = self.state();
                let state = shared.lock();
                Response::SessionInfo(SessionInfo {
                    auth_id: state.auth_id.clone(),
                    epoch: state.epoch,
                    resumed: false,
                    dedup_admitted: state.dedup.admitted,
                    dedup_replayed: state.dedup.replayed,
                })
            }
            Request::GetDeviceList => {
                let devices = self
                    .visible_devices()
                    .iter()
                    .map(|d| DeviceDescriptor {
                        remote_id: d.id(),
                        name: d.name().to_string(),
                        vendor: d.vendor().to_string(),
                        device_type: d.device_type().to_string(),
                        compute_units: match d.info(DeviceInfoParam::MaxComputeUnits) {
                            DeviceInfoValue::UInt(v) => v as u32,
                            _ => 0,
                        },
                        global_mem_bytes: d.profile().global_mem_bytes,
                        max_alloc_bytes: d.profile().max_alloc_bytes,
                    })
                    .collect();
                Response::DeviceList { devices }
            }
            Request::GetServerInfo => Response::ServerInfo(ServerInfo {
                name: self.daemon_name.clone(),
                device_count: self.visible_devices().len() as u32,
                managed: self.policy.managed(),
            }),
            Request::CreateContext { context_id, devices } => {
                let mut resolved = Vec::with_capacity(devices.len());
                for id in devices {
                    match self.device_by_id(id) {
                        Ok(d) => resolved.push(d),
                        Err(e) => return Self::cl_error(&e),
                    }
                }
                match Context::new(resolved) {
                    Ok(ctx) => {
                        self.state().lock().contexts.insert(context_id, ctx);
                        Response::Ok
                    }
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::ReleaseContext { context_id } => {
                self.state().lock().contexts.remove(&context_id);
                Response::Ok
            }
            Request::CreateCommandQueue { queue_id, context_id, device } => {
                let context = match self.state().lock().contexts.get(&context_id) {
                    Some(c) => Arc::clone(c),
                    None => return Self::missing("context", context_id),
                };
                let device = match self.device_by_id(device) {
                    Ok(d) => d,
                    Err(e) => return Self::cl_error(&e),
                };
                match CommandQueue::new(
                    context,
                    device,
                    QueueProperties { profiling: true, out_of_order: false },
                ) {
                    Ok(q) => {
                        self.state().lock().queues.insert(queue_id, q);
                        Response::Ok
                    }
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::ReleaseCommandQueue { queue_id } => {
                self.state().lock().queues.remove(&queue_id);
                Response::Ok
            }
            Request::CreateBuffer { buffer_id, context_id, size, readable, writable } => {
                let context = match self.state().lock().contexts.get(&context_id) {
                    Some(c) => Arc::clone(c),
                    None => return Self::missing("context", context_id),
                };
                let flags = MemFlags { readable, writable };
                match Buffer::new(context, size as usize, flags, None) {
                    Ok(b) => {
                        self.state().lock().buffers.insert(buffer_id, b);
                        Response::Ok
                    }
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::ReleaseBuffer { buffer_id } => {
                self.state().lock().buffers.remove(&buffer_id);
                Response::Ok
            }
            Request::CreateProgramWithSource { program_id, context_id, source } => {
                let context = match self.state().lock().contexts.get(&context_id) {
                    Some(c) => Arc::clone(c),
                    None => return Self::missing("context", context_id),
                };
                let program = Program::with_source(context, source);
                self.state().lock().programs.insert(program_id, program);
                Response::Ok
            }
            Request::CreateProgramWithBuiltInKernels { program_id, context_id, names } => {
                let context = match self.state().lock().contexts.get(&context_id) {
                    Some(c) => Arc::clone(c),
                    None => return Self::missing("context", context_id),
                };
                match Program::with_built_in_kernels(context, &names) {
                    Ok(program) => {
                        self.state().lock().programs.insert(program_id, program);
                        Response::Ok
                    }
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::BuildProgram { program_id } => {
                let program = match self.state().lock().programs.get(&program_id) {
                    Some(p) => Arc::clone(p),
                    None => return Self::missing("program", program_id),
                };
                match program.build() {
                    Ok(()) => Response::Ok,
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::GetBuildLog { program_id } => {
                let program = match self.state().lock().programs.get(&program_id) {
                    Some(p) => Arc::clone(p),
                    None => return Self::missing("program", program_id),
                };
                Response::BuildLog { log: program.build_log() }
            }
            Request::CreateKernel { kernel_id, program_id, name } => {
                let program = match self.state().lock().programs.get(&program_id) {
                    Some(p) => Arc::clone(p),
                    None => return Self::missing("program", program_id),
                };
                match program.create_kernel(&name) {
                    Ok(k) => {
                        self.state().lock().kernels.insert(kernel_id, k);
                        Response::Ok
                    }
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::SetKernelArgScalar { kernel_id, index, value } => {
                let kernel = match self.state().lock().kernels.get(&kernel_id) {
                    Some(k) => Arc::clone(k),
                    None => return Self::missing("kernel", kernel_id),
                };
                match kernel.set_arg(index as usize, KernelArg::Scalar(value.0)) {
                    Ok(()) => Response::Ok,
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::SetKernelArgBuffer { kernel_id, index, buffer_id } => {
                let (kernel, buffer) = {
                    let shared = self.state();
                    let state = shared.lock();
                    let kernel = match state.kernels.get(&kernel_id) {
                        Some(k) => Arc::clone(k),
                        None => return Self::missing("kernel", kernel_id),
                    };
                    let buffer = match state.buffers.get(&buffer_id) {
                        Some(b) => Arc::clone(b),
                        None => return Self::missing("buffer", buffer_id),
                    };
                    (kernel, buffer)
                };
                match kernel.set_arg(index as usize, KernelArg::Buffer(buffer)) {
                    Ok(()) => Response::Ok,
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::SetKernelArgLocal { kernel_id, index, bytes } => {
                let kernel = match self.state().lock().kernels.get(&kernel_id) {
                    Some(k) => Arc::clone(k),
                    None => return Self::missing("kernel", kernel_id),
                };
                match kernel.set_arg(index as usize, KernelArg::Local(bytes as usize)) {
                    Ok(()) => Response::Ok,
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::EnqueueWriteBuffer {
                queue_id,
                buffer_id,
                offset,
                size,
                event_id,
                stream_id,
                wait_events,
            } => {
                match self.enqueue_write_entry(
                    queue_id,
                    buffer_id,
                    offset,
                    size,
                    event_id,
                    stream_id,
                    &wait_events,
                    None,
                ) {
                    Ok(_) => Response::Ok,
                    Err(resp) => resp,
                }
            }
            Request::EnqueueReadBuffer {
                queue_id,
                buffer_id,
                offset,
                size,
                event_id,
                stream_id,
                wait_events,
            } => {
                match self.enqueue_read_entry(
                    queue_id,
                    buffer_id,
                    offset,
                    size,
                    event_id,
                    stream_id,
                    &wait_events,
                    None,
                ) {
                    Ok(_) => Response::Ok,
                    Err(resp) => resp,
                }
            }
            Request::EnqueueNdRange { queue_id, kernel_id, event_id, range, wait_events } => {
                match self.enqueue_nd_range_entry(
                    queue_id,
                    kernel_id,
                    event_id,
                    range,
                    &wait_events,
                    None,
                ) {
                    Ok(_) => Response::Ok,
                    Err(resp) => resp,
                }
            }
            Request::EnqueueMarker { queue_id, event_id, wait_events } => {
                match self.enqueue_marker_entry(queue_id, event_id, &wait_events, None) {
                    Ok(_) => Response::Ok,
                    Err(resp) => resp,
                }
            }
            Request::EnqueueBatch { entries } => {
                // Entries are enqueued strictly in order.  Each entry gains an
                // implicit dependency on the previous entry of the *same*
                // queue, so an execution-time failure cascades down the rest
                // of the batch (wait-list error, -14) while completed entries
                // stay completed.  Enqueue-time failures stop the batch: the
                // failing entry's status carries the error and unattempted
                // entries get no status at all (the client fails their events
                // locally).
                let mut statuses = Vec::with_capacity(entries.len());
                let mut prev: HashMap<ObjectId, Arc<Event>> = HashMap::new();
                for entry in entries {
                    // Idempotent replay (client-generated command ids): a
                    // command already executed under this session state is
                    // recognised by the dedup window and NOT re-enqueued.
                    // The completion notification is re-armed instead, so a
                    // client that missed it across a reconnect hears it
                    // again (`on_complete` fires immediately on terminal
                    // events).
                    let hit = {
                        let shared = self.state();
                        let mut state = shared.lock();
                        state
                            .dedup
                            .replay_hit(entry.command_id)
                            .map(|orig| (orig, state.events.get(&orig).cloned()))
                    };
                    if let Some((orig_event, event)) = hit {
                        statuses.push(BatchEntryStatus::ok());
                        if let Some(event) = event {
                            self.notify_on_completion(orig_event, &event);
                            prev.insert(entry.queue_id, event);
                        }
                        continue;
                    }
                    let chain = prev.get(&entry.queue_id).cloned();
                    let result = match entry.command {
                        BatchCommand::WriteBuffer { buffer_id, offset, size, stream_id } => self
                            .enqueue_write_entry(
                                entry.queue_id,
                                buffer_id,
                                offset,
                                size,
                                entry.event_id,
                                stream_id,
                                &entry.wait_events,
                                chain.as_ref(),
                            ),
                        BatchCommand::ReadBuffer { buffer_id, offset, size, stream_id } => self
                            .enqueue_read_entry(
                                entry.queue_id,
                                buffer_id,
                                offset,
                                size,
                                entry.event_id,
                                stream_id,
                                &entry.wait_events,
                                chain.as_ref(),
                            ),
                        BatchCommand::NdRange { kernel_id, range } => self.enqueue_nd_range_entry(
                            entry.queue_id,
                            kernel_id,
                            entry.event_id,
                            range,
                            &entry.wait_events,
                            chain.as_ref(),
                        ),
                        BatchCommand::Marker => self.enqueue_marker_entry(
                            entry.queue_id,
                            entry.event_id,
                            &entry.wait_events,
                            chain.as_ref(),
                        ),
                    };
                    match result {
                        Ok(event) => {
                            statuses.push(BatchEntryStatus::ok());
                            self.state().lock().dedup.admit(entry.command_id, entry.event_id);
                            prev.insert(entry.queue_id, event);
                        }
                        Err(resp) => {
                            let (code, message) = match resp {
                                Response::Error { code, message } => (code, message),
                                other => (-30, format!("unexpected enqueue failure: {other:?}")),
                            };
                            statuses.push(BatchEntryStatus { code, message });
                            break;
                        }
                    }
                }
                Response::BatchEnqueued { statuses }
            }
            Request::CreateUserEvent { event_id } => {
                let event = Event::user();
                self.state().lock().events.insert(event_id, event);
                Response::Ok
            }
            Request::SetUserEventComplete { event_id } => {
                let event = match self.state().lock().events.get(&event_id) {
                    Some(e) => Arc::clone(e),
                    None => return Self::missing("event", event_id),
                };
                event.set_complete();
                Response::Ok
            }
            Request::GetEventStatus { event_id } => {
                let event = match self.state().lock().events.get(&event_id) {
                    Some(e) => Arc::clone(e),
                    None => return Self::missing("event", event_id),
                };
                Response::EventStatus { status: event.status().code() }
            }
            Request::UploadBufferData { buffer_id, stream_id, size } => {
                let Some(endpoint) = self.endpoint() else {
                    return Response::Error { code: -36, message: "no endpoint".into() };
                };
                let data = match endpoint.wait_bulk(stream_id, Duration::from_secs(120)) {
                    Ok(d) => d,
                    Err(e) => {
                        return Response::Error {
                            code: -30,
                            message: format!("missing upload stream: {e}"),
                        }
                    }
                };
                if data.len() as u64 != size {
                    return Response::Error {
                        code: -30,
                        message: "coherence upload size mismatch".into(),
                    };
                }
                let buffer = match self.state().lock().buffers.get(&buffer_id) {
                    Some(b) => Arc::clone(b),
                    None => return Self::missing("buffer", buffer_id),
                };
                self.quiesce_buffer_queues(&buffer);
                self.stats.lock().bytes_uploaded += size;
                // Direct write (not through a queue): coherence traffic still
                // pays the bus cost of the first device of the context.
                let bus_time = buffer
                    .context()
                    .devices()
                    .first()
                    .map(|d| d.profile().bus.write_time(size))
                    .unwrap_or_default();
                match buffer.write(0, &data) {
                    Ok(()) => Response::OkTimed { modeled_nanos: bus_time.as_nanos() as u64 },
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::DownloadBufferData { buffer_id, stream_id } => {
                let Some(endpoint) = self.endpoint() else {
                    return Response::Error { code: -36, message: "no endpoint".into() };
                };
                let buffer = match self.state().lock().buffers.get(&buffer_id) {
                    Some(b) => Arc::clone(b),
                    None => return Self::missing("buffer", buffer_id),
                };
                self.quiesce_buffer_queues(&buffer);
                let data = match buffer.read(0, buffer.size()) {
                    Ok(d) => d,
                    Err(e) => return Self::cl_error(&e),
                };
                self.stats.lock().bytes_downloaded += data.len() as u64;
                let bus_time = buffer
                    .context()
                    .devices()
                    .first()
                    .map(|d| d.profile().bus.read_time(data.len() as u64))
                    .unwrap_or_default();
                let _ = endpoint.send_bulk(stream_id, &data);
                Response::OkTimed { modeled_nanos: bus_time.as_nanos() as u64 }
            }
            Request::UploadBufferRange { buffer_id, offset, size, stream_id } => {
                let Some(endpoint) = self.endpoint() else {
                    return Response::Error { code: -36, message: "no endpoint".into() };
                };
                let data = match endpoint.wait_bulk(stream_id, Duration::from_secs(120)) {
                    Ok(d) => d,
                    Err(e) => {
                        return Response::Error {
                            code: -30,
                            message: format!("missing upload stream: {e}"),
                        }
                    }
                };
                if data.len() as u64 != size {
                    return Response::Error {
                        code: -30,
                        message: "coherence range upload size mismatch".into(),
                    };
                }
                let buffer = match self.state().lock().buffers.get(&buffer_id) {
                    Some(b) => Arc::clone(b),
                    None => return Self::missing("buffer", buffer_id),
                };
                if offset.saturating_add(size) > buffer.size() as u64 {
                    return Response::Error {
                        code: -30,
                        message: format!(
                            "range upload {offset}+{size} exceeds buffer size {}",
                            buffer.size()
                        ),
                    };
                }
                self.quiesce_buffer_queues(&buffer);
                self.stats.lock().bytes_uploaded += size;
                let bus_time = buffer
                    .context()
                    .devices()
                    .first()
                    .map(|d| d.profile().bus.write_time(size))
                    .unwrap_or_default();
                match buffer.write(offset as usize, &data) {
                    Ok(()) => Response::OkTimed { modeled_nanos: bus_time.as_nanos() as u64 },
                    Err(e) => Self::cl_error(&e),
                }
            }
            Request::DownloadBufferRange { buffer_id, offset, size, stream_id } => {
                let Some(endpoint) = self.endpoint() else {
                    return Response::Error { code: -36, message: "no endpoint".into() };
                };
                let buffer = match self.state().lock().buffers.get(&buffer_id) {
                    Some(b) => Arc::clone(b),
                    None => return Self::missing("buffer", buffer_id),
                };
                if offset.saturating_add(size) > buffer.size() as u64 {
                    return Response::Error {
                        code: -30,
                        message: format!(
                            "range download {offset}+{size} exceeds buffer size {}",
                            buffer.size()
                        ),
                    };
                }
                self.quiesce_buffer_queues(&buffer);
                let data = match buffer.read(offset as usize, size as usize) {
                    Ok(d) => d,
                    Err(e) => return Self::cl_error(&e),
                };
                self.stats.lock().bytes_downloaded += data.len() as u64;
                let bus_time = buffer
                    .context()
                    .devices()
                    .first()
                    .map(|d| d.profile().bus.read_time(data.len() as u64))
                    .unwrap_or_default();
                let _ = endpoint.send_bulk(stream_id, &data);
                Response::BufferRange { offset, size, modeled_nanos: bus_time.as_nanos() as u64 }
            }
            Request::Disconnect => {
                let auth = {
                    let shared = self.state();
                    let mut state = shared.lock();
                    state.disconnected = true;
                    state.auth_id.clone()
                };
                self.policy.client_disconnected(auth.as_deref());
                Response::Ok
            }
        }
    }

    /// Allocate a daemon-side stream id (unused by the current protocol but
    /// reserved for server-to-server communication, Section III-F).
    pub fn allocate_stream_id(&self) -> u64 {
        self.next_stream.fetch_add(1, Ordering::Relaxed)
    }
}

impl EndpointHandler for DaemonSession {
    fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
        let response = match Request::from_bytes(payload) {
            Ok(request) => self.handle(request),
            Err(e) => Response::Error { code: -30, message: format!("malformed request: {e}") },
        };
        response.to_bytes()
    }

    fn handle_notification(&self, _payload: &[u8]) {
        // The client never notifies the daemon in the current protocol.
    }
}

impl Drop for DaemonSession {
    fn drop(&mut self) {
        let shared = Arc::clone(self.state.get_mut());
        let state = shared.lock();
        // Abnormal termination releases the lease (Section IV-C) — but only
        // when no newer session has adopted this state.  A reconnected
        // client bumps the epoch in its Hello; the stale session of the dead
        // connection then drops silently and the lease stays held.
        let my_epoch = *self.my_epoch.get_mut();
        if !state.disconnected && state.epoch == my_epoch {
            self.policy.client_disconnected(state.auth_id.as_deref());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcf::rpc::NullHandler;
    use gcf::transport::inproc::InprocTransport;

    fn start_test_daemon() -> (Arc<Daemon>, Arc<Endpoint>, InprocTransport) {
        let transport = InprocTransport::new();
        let platform = Platform::test_platform(2);
        let daemon = Daemon::start(
            "node0",
            &platform,
            Arc::new(transport.clone()),
            "node0",
            Arc::new(OpenAccess),
        )
        .unwrap();
        let conn = transport.connect(daemon.address()).unwrap();
        let endpoint = Endpoint::new(conn, Arc::new(NullHandler), "test-client");
        (daemon, endpoint, transport)
    }

    fn call(endpoint: &Arc<Endpoint>, request: Request) -> Response {
        let bytes = endpoint.call(request.to_bytes()).unwrap();
        Response::from_bytes(&bytes).unwrap()
    }

    #[test]
    fn device_list_and_server_info() {
        let (_daemon, endpoint, _t) = start_test_daemon();
        call(&endpoint, Request::Hello { client_name: "test".into(), auth_id: None, epoch: 0 });
        let Response::DeviceList { devices } = call(&endpoint, Request::GetDeviceList) else {
            panic!("expected device list")
        };
        assert_eq!(devices.len(), 2);
        let Response::ServerInfo(info) = call(&endpoint, Request::GetServerInfo) else {
            panic!("expected server info")
        };
        assert_eq!(info.name, "node0");
        assert_eq!(info.device_count, 2);
        assert!(!info.managed);
    }

    #[test]
    fn full_remote_kernel_round_trip() {
        let (daemon, endpoint, _t) = start_test_daemon();
        call(&endpoint, Request::Hello { client_name: "test".into(), auth_id: None, epoch: 0 });
        let Response::DeviceList { devices } = call(&endpoint, Request::GetDeviceList) else {
            panic!()
        };
        let dev = devices[0].remote_id;
        assert!(matches!(
            call(&endpoint, Request::CreateContext { context_id: 1, devices: vec![dev] }),
            Response::Ok
        ));
        assert!(matches!(
            call(
                &endpoint,
                Request::CreateCommandQueue { queue_id: 2, context_id: 1, device: dev }
            ),
            Response::Ok
        ));
        assert!(matches!(
            call(
                &endpoint,
                Request::CreateBuffer {
                    buffer_id: 3,
                    context_id: 1,
                    size: 64,
                    readable: true,
                    writable: true
                }
            ),
            Response::Ok
        ));
        assert!(matches!(
            call(
                &endpoint,
                Request::CreateProgramWithSource {
                    program_id: 4,
                    context_id: 1,
                    source: "__kernel void fill(__global int* out, int v) { out[get_global_id(0)] = v; }"
                        .into()
                }
            ),
            Response::Ok
        ));
        assert!(matches!(call(&endpoint, Request::BuildProgram { program_id: 4 }), Response::Ok));
        assert!(matches!(
            call(
                &endpoint,
                Request::CreateKernel { kernel_id: 5, program_id: 4, name: "fill".into() }
            ),
            Response::Ok
        ));
        assert!(matches!(
            call(&endpoint, Request::SetKernelArgBuffer { kernel_id: 5, index: 0, buffer_id: 3 }),
            Response::Ok
        ));
        assert!(matches!(
            call(
                &endpoint,
                Request::SetKernelArgScalar {
                    kernel_id: 5,
                    index: 1,
                    value: crate::protocol::WireValue(vocl::Value::int(7))
                }
            ),
            Response::Ok
        ));
        assert!(matches!(
            call(
                &endpoint,
                Request::EnqueueNdRange {
                    queue_id: 2,
                    kernel_id: 5,
                    event_id: 6,
                    range: crate::protocol::WireNdRange(vocl::NdRange::linear(16)),
                    wait_events: vec![]
                }
            ),
            Response::Ok
        ));
        // Download the buffer through the coherence path and check contents.
        let stream_id = 777u64;
        let resp = call(&endpoint, Request::DownloadBufferData { buffer_id: 3, stream_id });
        assert!(matches!(resp, Response::OkTimed { .. }));
        let data = endpoint.wait_bulk(stream_id, Duration::from_secs(5)).unwrap();
        assert_eq!(data.len(), 64);
        for chunk in data.chunks_exact(4) {
            assert_eq!(i32::from_le_bytes(chunk.try_into().unwrap()), 7);
        }
        assert!(daemon.stats().kernel_launches == 1);
    }

    #[test]
    fn upload_stream_then_request_roundtrip() {
        let (_daemon, endpoint, _t) = start_test_daemon();
        call(&endpoint, Request::Hello { client_name: "c".into(), auth_id: None, epoch: 0 });
        let Response::DeviceList { devices } = call(&endpoint, Request::GetDeviceList) else {
            panic!()
        };
        let dev = devices[0].remote_id;
        call(&endpoint, Request::CreateContext { context_id: 1, devices: vec![dev] });
        call(&endpoint, Request::CreateCommandQueue { queue_id: 2, context_id: 1, device: dev });
        call(
            &endpoint,
            Request::CreateBuffer {
                buffer_id: 3,
                context_id: 1,
                size: 8,
                readable: true,
                writable: true,
            },
        );
        // Send the payload first (stream-based communication), then the
        // request (message-based communication).
        endpoint.send_bulk(42, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let resp = call(
            &endpoint,
            Request::EnqueueWriteBuffer {
                queue_id: 2,
                buffer_id: 3,
                offset: 0,
                size: 8,
                event_id: 10,
                stream_id: 42,
                wait_events: vec![],
            },
        );
        assert!(matches!(resp, Response::Ok), "{resp:?}");
        // Read it back.
        let resp = call(
            &endpoint,
            Request::EnqueueReadBuffer {
                queue_id: 2,
                buffer_id: 3,
                offset: 0,
                size: 8,
                event_id: 11,
                stream_id: 43,
                wait_events: vec![10],
            },
        );
        assert!(matches!(resp, Response::Ok), "{resp:?}");
        let data = endpoint.wait_bulk(43, Duration::from_secs(5)).unwrap();
        assert_eq!(data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn user_events_gate_execution() {
        let (_daemon, endpoint, _t) = start_test_daemon();
        call(&endpoint, Request::Hello { client_name: "c".into(), auth_id: None, epoch: 0 });
        let Response::DeviceList { devices } = call(&endpoint, Request::GetDeviceList) else {
            panic!()
        };
        let dev = devices[0].remote_id;
        call(&endpoint, Request::CreateContext { context_id: 1, devices: vec![dev] });
        call(&endpoint, Request::CreateCommandQueue { queue_id: 2, context_id: 1, device: dev });
        call(
            &endpoint,
            Request::CreateBuffer {
                buffer_id: 3,
                context_id: 1,
                size: 4,
                readable: true,
                writable: true,
            },
        );
        assert!(matches!(
            call(&endpoint, Request::CreateUserEvent { event_id: 100 }),
            Response::Ok
        ));
        endpoint.send_bulk(50, &[9, 9, 9, 9]).unwrap();
        call(
            &endpoint,
            Request::EnqueueWriteBuffer {
                queue_id: 2,
                buffer_id: 3,
                offset: 0,
                size: 4,
                event_id: 101,
                stream_id: 50,
                wait_events: vec![100],
            },
        );
        // The write is gated by the user event: its status stays submitted.
        std::thread::sleep(Duration::from_millis(50));
        let Response::EventStatus { status } =
            call(&endpoint, Request::GetEventStatus { event_id: 101 })
        else {
            panic!()
        };
        assert!(status > 0, "write must not have completed yet, status {status}");
        assert!(matches!(
            call(&endpoint, Request::SetUserEventComplete { event_id: 100 }),
            Response::Ok
        ));
        // Now it completes.
        let mut done = false;
        for _ in 0..100 {
            let Response::EventStatus { status } =
                call(&endpoint, Request::GetEventStatus { event_id: 101 })
            else {
                panic!()
            };
            if status == 0 {
                done = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(done, "gated write never completed");
    }

    #[test]
    fn errors_for_unknown_objects_and_malformed_requests() {
        let (_daemon, endpoint, _t) = start_test_daemon();
        let resp = call(&endpoint, Request::BuildProgram { program_id: 999 });
        assert!(matches!(resp, Response::Error { .. }));
        let resp = call(&endpoint, Request::CreateContext { context_id: 1, devices: vec![12345] });
        assert!(matches!(resp, Response::Error { .. }));
        // Malformed payload.
        let bytes = endpoint.call(vec![255, 255]).unwrap();
        let resp = Response::from_bytes(&bytes).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn access_policy_filters_devices() {
        struct OnlyFirst;
        impl AccessPolicy for OnlyFirst {
            fn visible_devices(
                &self,
                auth_id: Option<&str>,
                all: &[Arc<Device>],
            ) -> Vec<Arc<Device>> {
                if auth_id == Some("lease") {
                    all.iter().take(1).cloned().collect()
                } else {
                    Vec::new()
                }
            }
            fn managed(&self) -> bool {
                true
            }
        }
        let transport = InprocTransport::new();
        let platform = Platform::test_platform(3);
        let daemon = Daemon::start(
            "managed-node",
            &platform,
            Arc::new(transport.clone()),
            "managed-node",
            Arc::new(OnlyFirst),
        )
        .unwrap();
        let conn = transport.connect(daemon.address()).unwrap();
        let endpoint = Endpoint::new(conn, Arc::new(NullHandler), "client");
        // Without the right auth id: no devices.
        call(&endpoint, Request::Hello { client_name: "c".into(), auth_id: None, epoch: 0 });
        let Response::DeviceList { devices } = call(&endpoint, Request::GetDeviceList) else {
            panic!()
        };
        assert!(devices.is_empty());
        // With it: one device.
        call(
            &endpoint,
            Request::Hello { client_name: "c".into(), auth_id: Some("lease".into()), epoch: 0 },
        );
        let Response::DeviceList { devices } = call(&endpoint, Request::GetDeviceList) else {
            panic!()
        };
        assert_eq!(devices.len(), 1);
    }

    /// Build the session up to a runnable `fill` kernel: context 1,
    /// queue 2, buffer 3 (64 bytes), program 4, kernel 5 with the buffer
    /// and the value 7 bound.
    fn build_fill_session(endpoint: &Arc<Endpoint>) {
        let Response::DeviceList { devices } = call(endpoint, Request::GetDeviceList) else {
            panic!("expected device list")
        };
        let dev = devices[0].remote_id;
        call(endpoint, Request::CreateContext { context_id: 1, devices: vec![dev] });
        call(endpoint, Request::CreateCommandQueue { queue_id: 2, context_id: 1, device: dev });
        call(
            endpoint,
            Request::CreateBuffer {
                buffer_id: 3,
                context_id: 1,
                size: 64,
                readable: true,
                writable: true,
            },
        );
        call(
            endpoint,
            Request::CreateProgramWithSource {
                program_id: 4,
                context_id: 1,
                source:
                    "__kernel void fill(__global int* out, int v) { out[get_global_id(0)] = v; }"
                        .into(),
            },
        );
        call(endpoint, Request::BuildProgram { program_id: 4 });
        call(endpoint, Request::CreateKernel { kernel_id: 5, program_id: 4, name: "fill".into() });
        call(endpoint, Request::SetKernelArgBuffer { kernel_id: 5, index: 0, buffer_id: 3 });
        call(
            endpoint,
            Request::SetKernelArgScalar {
                kernel_id: 5,
                index: 1,
                value: crate::protocol::WireValue(vocl::Value::int(7)),
            },
        );
    }

    fn fill_batch(command_id: u64, event_id: ObjectId) -> Request {
        Request::EnqueueBatch {
            entries: vec![crate::protocol::BatchEntry {
                command_id,
                queue_id: 2,
                event_id,
                wait_events: vec![],
                command: BatchCommand::NdRange {
                    kernel_id: 5,
                    range: WireNdRange(vocl::NdRange::linear(16)),
                },
            }],
        }
    }

    #[test]
    fn hello_returns_session_info_and_reconnect_resumes_state() {
        let (daemon, endpoint, transport) = start_test_daemon();
        let Response::SessionInfo(info) =
            call(&endpoint, Request::Hello { client_name: "app".into(), auth_id: None, epoch: 0 })
        else {
            panic!("expected session info")
        };
        assert!(!info.resumed);
        assert_eq!(info.epoch, 0);
        build_fill_session(&endpoint);

        // Simulate a connection failure: the client redials and re-Hellos
        // with a bumped epoch; the daemon hands back the parked state.
        endpoint.abort();
        let conn = transport.connect(daemon.address()).unwrap();
        let endpoint2 = Endpoint::new(conn, Arc::new(NullHandler), "test-client-2");
        let Response::SessionInfo(info) =
            call(&endpoint2, Request::Hello { client_name: "app".into(), auth_id: None, epoch: 1 })
        else {
            panic!("expected session info")
        };
        assert!(info.resumed, "epoch > 0 with a known identity must adopt the parked session");
        assert_eq!(info.epoch, 1);
        // The remote objects survived: the kernel enqueues without any
        // re-creation.
        let Response::BatchEnqueued { statuses } = call(&endpoint2, fill_batch(500, 90)) else {
            panic!("expected batch response")
        };
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].code, 0);
        let Response::SessionInfo(info) = call(&endpoint2, Request::GetSessionInfo) else {
            panic!("expected session info")
        };
        assert_eq!(info.epoch, 1);
        assert_eq!(info.dedup_admitted, 1);
    }

    #[test]
    fn fresh_epoch_zero_hello_does_not_resume() {
        let (daemon, endpoint, transport) = start_test_daemon();
        call(&endpoint, Request::Hello { client_name: "app".into(), auth_id: None, epoch: 0 });
        let conn = transport.connect(daemon.address()).unwrap();
        let endpoint2 = Endpoint::new(conn, Arc::new(NullHandler), "test-client-2");
        let Response::SessionInfo(info) =
            call(&endpoint2, Request::Hello { client_name: "app".into(), auth_id: None, epoch: 0 })
        else {
            panic!("expected session info")
        };
        assert!(!info.resumed, "epoch 0 always starts a fresh session");
    }

    #[test]
    fn replayed_batch_executes_exactly_once() {
        let (daemon, endpoint, _t) = start_test_daemon();
        call(&endpoint, Request::Hello { client_name: "app".into(), auth_id: None, epoch: 0 });
        build_fill_session(&endpoint);

        let Response::BatchEnqueued { statuses } = call(&endpoint, fill_batch(77, 10)) else {
            panic!("expected batch response")
        };
        assert_eq!(statuses[0].code, 0);
        let launches_after_first = daemon.stats().kernel_launches;
        assert_eq!(launches_after_first, 1);

        // The client lost the response and replays the identical batch:
        // the dedup window recognises command id 77 and does NOT launch
        // the kernel again.
        let Response::BatchEnqueued { statuses } = call(&endpoint, fill_batch(77, 10)) else {
            panic!("expected batch response")
        };
        assert_eq!(statuses[0].code, 0, "a replayed entry still reports success");
        assert_eq!(daemon.stats().kernel_launches, 1, "replay must not re-execute");
        assert_eq!(daemon.dedup_counters("app"), Some((1, 1)));

        // Command id 0 opts out of deduplication (legacy clients).
        for _ in 0..2 {
            let Response::BatchEnqueued { statuses } = call(&endpoint, fill_batch(0, 11)) else {
                panic!("expected batch response")
            };
            assert_eq!(statuses[0].code, 0);
        }
        assert_eq!(daemon.stats().kernel_launches, 3, "id 0 executes every time");
        assert_eq!(daemon.dedup_counters("app"), Some((1, 1)));
    }

    #[test]
    fn kill_severs_sessions_without_goodbye() {
        let (daemon, endpoint, transport) = start_test_daemon();
        call(&endpoint, Request::Hello { client_name: "app".into(), auth_id: None, epoch: 0 });
        daemon.kill();
        // Wait for the abort to propagate to this endpoint.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while endpoint.is_open() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(endpoint.call(Request::GetServerInfo.to_bytes()).is_err());
        // New connections are refused (the listener is shut down).
        assert!(transport.connect(daemon.address()).is_err());
    }
}
