//! Wire protocol between the dOpenCL client driver and the daemons.
//!
//! Every OpenCL API call that needs a server is turned into a [`Request`]
//! message; the daemon answers with a [`Response`].  Asynchronous state
//! changes (most importantly event completion, the heart of the event
//! consistency protocol of Section III-D) travel as [`Notification`]s.  Bulk
//! data (buffer uploads/downloads, i.e. *stream-based communication*) does
//! not appear here: it is shipped through [`gcf::Endpoint::send_bulk`]
//! streams identified by a `stream_id` carried in the corresponding request.
//!
//! ## Ordering requirement
//!
//! Both gcf transports are FIFO per connection.  The client always sends the
//! bulk data of an upload *before* the `EnqueueWriteBuffer` request that
//! references it, so by the time the daemon handles the request the stream
//! has fully arrived and the daemon never blocks its receive loop.

use crate::error::{DclError, Result};
use gcf::wire::{decode_bytes, encode_bytes, Decode, Encode, Reader};
use gcf::GcfError;
use oclc::{NdRange, Scalar, ScalarType, Value};

/// Identifier the client driver assigns to every stub; the daemon maps it to
/// its local (remote) object.
pub type ObjectId = u64;

fn codec_err(msg: impl Into<String>) -> GcfError {
    GcfError::Codec(msg.into())
}

// ---------------------------------------------------------------------------
// Scalar / value encoding
// ---------------------------------------------------------------------------

fn scalar_type_to_byte(t: ScalarType) -> u8 {
    match t {
        ScalarType::Bool => 0,
        ScalarType::Char => 1,
        ScalarType::UChar => 2,
        ScalarType::Short => 3,
        ScalarType::UShort => 4,
        ScalarType::Int => 5,
        ScalarType::UInt => 6,
        ScalarType::Long => 7,
        ScalarType::ULong => 8,
        ScalarType::SizeT => 9,
        ScalarType::Float => 10,
        ScalarType::Double => 11,
    }
}

fn scalar_type_from_byte(b: u8) -> std::result::Result<ScalarType, GcfError> {
    Ok(match b {
        0 => ScalarType::Bool,
        1 => ScalarType::Char,
        2 => ScalarType::UChar,
        3 => ScalarType::Short,
        4 => ScalarType::UShort,
        5 => ScalarType::Int,
        6 => ScalarType::UInt,
        7 => ScalarType::Long,
        8 => ScalarType::ULong,
        9 => ScalarType::SizeT,
        10 => ScalarType::Float,
        11 => ScalarType::Double,
        other => return Err(codec_err(format!("invalid scalar type byte {other}"))),
    })
}

fn encode_scalar(s: &Scalar, buf: &mut Vec<u8>) {
    match s {
        Scalar::I(v) => {
            buf.push(0);
            v.encode(buf);
        }
        Scalar::U(v) => {
            buf.push(1);
            v.encode(buf);
        }
        Scalar::F(v) => {
            buf.push(2);
            v.encode(buf);
        }
    }
}

fn decode_scalar(r: &mut Reader<'_>) -> std::result::Result<Scalar, GcfError> {
    Ok(match u8::decode(r)? {
        0 => Scalar::I(i64::decode(r)?),
        1 => Scalar::U(u64::decode(r)?),
        2 => Scalar::F(f64::decode(r)?),
        other => return Err(codec_err(format!("invalid scalar payload tag {other}"))),
    })
}

/// A kernel argument value that can travel over the wire (scalars and
/// vectors; buffers and local memory are referenced by id / size instead).
#[derive(Debug, Clone, PartialEq)]
pub struct WireValue(pub Value);

impl Encode for WireValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        match &self.0 {
            Value::Scalar(t, s) => {
                buf.push(0);
                buf.push(scalar_type_to_byte(*t));
                encode_scalar(s, buf);
            }
            Value::Vector(t, lanes) => {
                buf.push(1);
                buf.push(scalar_type_to_byte(*t));
                (lanes.len() as u32).encode(buf);
                for l in lanes {
                    encode_scalar(l, buf);
                }
            }
            Value::Ptr(_) | Value::Void => {
                // Pointers never travel over the wire; encode as void.
                buf.push(2);
            }
        }
    }
}

impl Decode for WireValue {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(WireValue(match u8::decode(r)? {
            0 => {
                let t = scalar_type_from_byte(u8::decode(r)?)?;
                Value::Scalar(t, decode_scalar(r)?)
            }
            1 => {
                let t = scalar_type_from_byte(u8::decode(r)?)?;
                let n = u32::decode(r)? as usize;
                let mut lanes = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    lanes.push(decode_scalar(r)?);
                }
                Value::Vector(t, lanes)
            }
            2 => Value::Void,
            other => return Err(codec_err(format!("invalid value tag {other}"))),
        }))
    }
}

/// NDRange as transmitted with `EnqueueNdRange`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireNdRange(pub NdRange);

impl Encode for WireNdRange {
    fn encode(&self, buf: &mut Vec<u8>) {
        let r = &self.0;
        buf.push(r.work_dim);
        for d in 0..3 {
            (r.global[d] as u64).encode(buf);
        }
        for d in 0..3 {
            (r.offset[d] as u64).encode(buf);
        }
        match r.local {
            None => buf.push(0),
            Some(local) => {
                buf.push(1);
                for v in local {
                    (v as u64).encode(buf);
                }
            }
        }
    }
}

impl Decode for WireNdRange {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        let work_dim = u8::decode(r)?;
        let mut global = [0usize; 3];
        for g in &mut global {
            *g = u64::decode(r)? as usize;
        }
        let mut offset = [0usize; 3];
        for o in &mut offset {
            *o = u64::decode(r)? as usize;
        }
        let local = match u8::decode(r)? {
            0 => None,
            1 => {
                let mut l = [0usize; 3];
                for v in &mut l {
                    *v = u64::decode(r)? as usize;
                }
                Some(l)
            }
            other => return Err(codec_err(format!("invalid local tag {other}"))),
        };
        Ok(WireNdRange(NdRange { global, local, offset, work_dim }))
    }
}

/// Description of a remote device as reported by a daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDescriptor {
    /// The daemon-local device id used in later requests.
    pub remote_id: ObjectId,
    /// `CL_DEVICE_NAME`.
    pub name: String,
    /// `CL_DEVICE_VENDOR`.
    pub vendor: String,
    /// `CL_DEVICE_TYPE` as its display string (`CPU`, `GPU`, ...).
    pub device_type: String,
    /// `CL_DEVICE_MAX_COMPUTE_UNITS`.
    pub compute_units: u32,
    /// `CL_DEVICE_GLOBAL_MEM_SIZE`.
    pub global_mem_bytes: u64,
    /// `CL_DEVICE_MAX_MEM_ALLOC_SIZE`.
    pub max_alloc_bytes: u64,
}

impl Encode for DeviceDescriptor {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.remote_id.encode(buf);
        self.name.encode(buf);
        self.vendor.encode(buf);
        self.device_type.encode(buf);
        self.compute_units.encode(buf);
        self.global_mem_bytes.encode(buf);
        self.max_alloc_bytes.encode(buf);
    }
}

impl Decode for DeviceDescriptor {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(DeviceDescriptor {
            remote_id: ObjectId::decode(r)?,
            name: String::decode(r)?,
            vendor: String::decode(r)?,
            device_type: String::decode(r)?,
            compute_units: u32::decode(r)?,
            global_mem_bytes: u64::decode(r)?,
            max_alloc_bytes: u64::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A request from the client driver to a daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: announce the client and (in managed mode) the lease
    /// authentication id obtained from the device manager.
    ///
    /// The daemon answers with [`Response::SessionInfo`].  A client that
    /// reconnects after a connection failure re-handshakes with the same
    /// identity and a bumped `epoch`; the daemon then revives the parked
    /// session state (including the command dedup window) so replayed
    /// batches execute exactly once.
    Hello {
        /// Client host name.
        client_name: String,
        /// Lease authentication id, if the client got its devices from the
        /// device manager.
        auth_id: Option<String>,
        /// Session epoch: 0 on first connect, incremented by the client on
        /// every reconnect to the same daemon.
        epoch: u64,
    },
    /// List the devices this daemon exposes (filtered by lease in managed
    /// mode).
    GetDeviceList,
    /// Create a remote context over the given remote device ids.
    CreateContext {
        /// Client-assigned id for the context stub.
        context_id: ObjectId,
        /// Daemon-local device ids participating on this server.
        devices: Vec<ObjectId>,
    },
    /// Release a remote context.
    ReleaseContext {
        /// Context id.
        context_id: ObjectId,
    },
    /// Create a command queue for `device` in `context`.
    CreateCommandQueue {
        /// Client-assigned id for the queue stub.
        queue_id: ObjectId,
        /// Owning context id.
        context_id: ObjectId,
        /// Daemon-local device id.
        device: ObjectId,
    },
    /// Release a command queue.
    ReleaseCommandQueue {
        /// Queue id.
        queue_id: ObjectId,
    },
    /// Create a buffer of `size` bytes in `context`.
    CreateBuffer {
        /// Client-assigned id for the buffer stub.
        buffer_id: ObjectId,
        /// Owning context id.
        context_id: ObjectId,
        /// Size in bytes.
        size: u64,
        /// Whether kernels may read the buffer.
        readable: bool,
        /// Whether kernels may write the buffer.
        writable: bool,
    },
    /// Release a buffer.
    ReleaseBuffer {
        /// Buffer id.
        buffer_id: ObjectId,
    },
    /// Create a program from OpenCL C source.
    CreateProgramWithSource {
        /// Client-assigned id for the program stub.
        program_id: ObjectId,
        /// Owning context id.
        context_id: ObjectId,
        /// The source text.
        source: String,
    },
    /// Create a program from registered built-in kernels.
    CreateProgramWithBuiltInKernels {
        /// Client-assigned id for the program stub.
        program_id: ObjectId,
        /// Owning context id.
        context_id: ObjectId,
        /// Semicolon-separated kernel names.
        names: String,
    },
    /// Build a program.
    BuildProgram {
        /// Program id.
        program_id: ObjectId,
    },
    /// Fetch the build log of a program.
    GetBuildLog {
        /// Program id.
        program_id: ObjectId,
    },
    /// Create a kernel from a program.
    CreateKernel {
        /// Client-assigned id for the kernel stub.
        kernel_id: ObjectId,
        /// Owning program id.
        program_id: ObjectId,
        /// Kernel function name.
        name: String,
    },
    /// Set a by-value kernel argument.
    SetKernelArgScalar {
        /// Kernel id.
        kernel_id: ObjectId,
        /// Argument index.
        index: u32,
        /// The value.
        value: WireValue,
    },
    /// Set a buffer kernel argument.
    SetKernelArgBuffer {
        /// Kernel id.
        kernel_id: ObjectId,
        /// Argument index.
        index: u32,
        /// Buffer id.
        buffer_id: ObjectId,
    },
    /// Set a `__local` memory kernel argument.
    SetKernelArgLocal {
        /// Kernel id.
        kernel_id: ObjectId,
        /// Argument index.
        index: u32,
        /// Size in bytes.
        bytes: u64,
    },
    /// Upload data into a buffer (the payload arrives as bulk stream
    /// `stream_id`, sent *before* this request).
    EnqueueWriteBuffer {
        /// Queue id.
        queue_id: ObjectId,
        /// Buffer id.
        buffer_id: ObjectId,
        /// Destination offset in bytes.
        offset: u64,
        /// Payload size in bytes.
        size: u64,
        /// Client-assigned id for the completion event.
        event_id: ObjectId,
        /// Bulk stream carrying the payload.
        stream_id: u64,
        /// Events that must complete before the write executes.
        wait_events: Vec<ObjectId>,
    },
    /// Download data from a buffer (the daemon sends the payload as bulk
    /// stream `stream_id` when the read completes).
    EnqueueReadBuffer {
        /// Queue id.
        queue_id: ObjectId,
        /// Buffer id.
        buffer_id: ObjectId,
        /// Source offset in bytes.
        offset: u64,
        /// Size in bytes.
        size: u64,
        /// Client-assigned id for the completion event.
        event_id: ObjectId,
        /// Bulk stream the daemon will send the data on.
        stream_id: u64,
        /// Events that must complete before the read executes.
        wait_events: Vec<ObjectId>,
    },
    /// Launch a kernel over an NDRange.
    EnqueueNdRange {
        /// Queue id.
        queue_id: ObjectId,
        /// Kernel id.
        kernel_id: ObjectId,
        /// Client-assigned id for the completion event.
        event_id: ObjectId,
        /// The index space.
        range: WireNdRange,
        /// Events that must complete before the kernel executes.
        wait_events: Vec<ObjectId>,
    },
    /// Enqueue a marker (used to implement `clFinish` without blocking the
    /// daemon).
    EnqueueMarker {
        /// Queue id.
        queue_id: ObjectId,
        /// Client-assigned id for the completion event.
        event_id: ObjectId,
        /// Events the marker waits for.
        wait_events: Vec<ObjectId>,
    },
    /// Create a user event (the replacement object of the event-consistency
    /// protocol).
    CreateUserEvent {
        /// Client-assigned event id (same id as the original event on the
        /// owning server).
        event_id: ObjectId,
    },
    /// Complete a user event previously created with `CreateUserEvent`.
    SetUserEventComplete {
        /// Event id.
        event_id: ObjectId,
    },
    /// Query the status of an event.
    GetEventStatus {
        /// Event id.
        event_id: ObjectId,
    },
    /// Query server information (`clGetServerInfoWWU`).
    GetServerInfo,
    /// Orderly disconnect (`clDisconnectServerWWU` or application exit).
    Disconnect,
    /// Coherence traffic: replace the remote buffer's contents with the data
    /// arriving on bulk stream `stream_id` (sent before this request).
    ///
    /// Used by the MSI protocol when a server holds an *invalid* copy and the
    /// client uploads a valid one (Section III-D).
    UploadBufferData {
        /// Buffer id.
        buffer_id: ObjectId,
        /// Bulk stream carrying the payload.
        stream_id: u64,
        /// Payload size in bytes.
        size: u64,
    },
    /// Coherence traffic: send the remote buffer's contents to the client on
    /// bulk stream `stream_id`.
    ///
    /// Used by the MSI protocol when the client needs a valid copy and this
    /// server owns one.
    DownloadBufferData {
        /// Buffer id.
        buffer_id: ObjectId,
        /// Bulk stream the daemon sends the data on.
        stream_id: u64,
    },
    /// A batch of enqueue commands accumulated client-side and shipped in a
    /// single round trip (the batched command pipeline).  Entries are
    /// enqueued strictly in order; completion is reported asynchronously per
    /// entry through [`Notification::EventCompleted`].
    EnqueueBatch {
        /// The commands, in submission order.
        entries: Vec<BatchEntry>,
    },
    /// Query the daemon's view of this session (used by the fault-tolerance
    /// tests and the client supervisor after a reconnect).
    GetSessionInfo,
    /// Coherence delta traffic: overwrite `[offset, offset + size)` of the
    /// remote buffer with the data arriving on bulk stream `stream_id`
    /// (sent before this request).
    ///
    /// Used by the range-granular directory when only some byte ranges of a
    /// server's copy are stale; the whole-buffer variant remains
    /// [`Request::UploadBufferData`].
    UploadBufferRange {
        /// Buffer id.
        buffer_id: ObjectId,
        /// First byte to overwrite.
        offset: u64,
        /// Payload size in bytes.
        size: u64,
        /// Bulk stream carrying the payload.
        stream_id: u64,
    },
    /// Coherence delta traffic: send `[offset, offset + size)` of the
    /// remote buffer to the client on bulk stream `stream_id`.  The daemon
    /// answers with [`Response::BufferRange`].
    DownloadBufferRange {
        /// Buffer id.
        buffer_id: ObjectId,
        /// First byte to send.
        offset: u64,
        /// Number of bytes to send.
        size: u64,
        /// Bulk stream the daemon sends the data on.
        stream_id: u64,
    },
}

/// One command of a [`Request::EnqueueBatch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Client-generated idempotency id, unique per command for the lifetime
    /// of the session.  The daemon keeps a bounded window of recently seen
    /// ids so a batch replayed after a reconnect executes each command
    /// exactly once.
    pub command_id: u64,
    /// Queue the command targets.
    pub queue_id: ObjectId,
    /// Client-assigned id for the completion event.
    pub event_id: ObjectId,
    /// Events that must complete before the command executes.
    pub wait_events: Vec<ObjectId>,
    /// The command itself.
    pub command: BatchCommand,
}

/// The command payload of a [`BatchEntry`].
///
/// Bulk data still travels as streams: a `WriteBuffer` entry's payload is
/// sent *before* the batch request (FIFO ordering guarantees it has arrived),
/// and a `ReadBuffer` entry's data is sent back on `stream_id` when the read
/// completes.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchCommand {
    /// `clEnqueueWriteBuffer`; payload arrives on bulk stream `stream_id`.
    WriteBuffer {
        /// Buffer id.
        buffer_id: ObjectId,
        /// Destination offset in bytes.
        offset: u64,
        /// Payload size in bytes.
        size: u64,
        /// Bulk stream carrying the payload.
        stream_id: u64,
    },
    /// `clEnqueueReadBuffer`; the daemon sends the data on `stream_id` when
    /// the read completes.
    ReadBuffer {
        /// Buffer id.
        buffer_id: ObjectId,
        /// Source offset in bytes.
        offset: u64,
        /// Size in bytes.
        size: u64,
        /// Bulk stream the daemon will send the data on.
        stream_id: u64,
    },
    /// `clEnqueueNDRangeKernel`.
    NdRange {
        /// Kernel id.
        kernel_id: ObjectId,
        /// The index space.
        range: WireNdRange,
    },
    /// `clEnqueueMarkerWithWaitList`.
    Marker,
}

impl Encode for BatchEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.command_id.encode(buf);
        self.queue_id.encode(buf);
        self.event_id.encode(buf);
        self.wait_events.encode(buf);
        self.command.encode(buf);
    }
}

impl Decode for BatchEntry {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(BatchEntry {
            command_id: u64::decode(r)?,
            queue_id: ObjectId::decode(r)?,
            event_id: ObjectId::decode(r)?,
            wait_events: Vec::decode(r)?,
            command: BatchCommand::decode(r)?,
        })
    }
}

impl Encode for BatchCommand {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            BatchCommand::WriteBuffer { buffer_id, offset, size, stream_id } => {
                buf.push(0);
                buffer_id.encode(buf);
                offset.encode(buf);
                size.encode(buf);
                stream_id.encode(buf);
            }
            BatchCommand::ReadBuffer { buffer_id, offset, size, stream_id } => {
                buf.push(1);
                buffer_id.encode(buf);
                offset.encode(buf);
                size.encode(buf);
                stream_id.encode(buf);
            }
            BatchCommand::NdRange { kernel_id, range } => {
                buf.push(2);
                kernel_id.encode(buf);
                range.encode(buf);
            }
            BatchCommand::Marker => buf.push(3),
        }
    }
}

impl Decode for BatchCommand {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(match u8::decode(r)? {
            0 => BatchCommand::WriteBuffer {
                buffer_id: ObjectId::decode(r)?,
                offset: u64::decode(r)?,
                size: u64::decode(r)?,
                stream_id: u64::decode(r)?,
            },
            1 => BatchCommand::ReadBuffer {
                buffer_id: ObjectId::decode(r)?,
                offset: u64::decode(r)?,
                size: u64::decode(r)?,
                stream_id: u64::decode(r)?,
            },
            2 => BatchCommand::NdRange {
                kernel_id: ObjectId::decode(r)?,
                range: WireNdRange::decode(r)?,
            },
            3 => BatchCommand::Marker,
            other => return Err(codec_err(format!("invalid batch command tag {other}"))),
        })
    }
}

/// Per-entry enqueue outcome of a [`Request::EnqueueBatch`], reported in
/// [`Response::BatchEnqueued`].  Code 0 means the entry was enqueued; a
/// negative code is the OpenCL error that rejected it at enqueue time
/// (execution-time failures are reported through the entry's event instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntryStatus {
    /// 0 on success, a negative OpenCL error code otherwise.
    pub code: i32,
    /// Human-readable description (empty on success).
    pub message: String,
}

impl BatchEntryStatus {
    /// The success status.
    pub fn ok() -> BatchEntryStatus {
        BatchEntryStatus { code: 0, message: String::new() }
    }
}

impl Encode for BatchEntryStatus {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.code.encode(buf);
        self.message.encode(buf);
    }
}

impl Decode for BatchEntryStatus {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(BatchEntryStatus { code: i32::decode(r)?, message: String::decode(r)? })
    }
}

const REQ_TAGS: &[(&str, u8)] = &[];

impl Encode for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        let _ = REQ_TAGS;
        match self {
            Request::Hello { client_name, auth_id, epoch } => {
                buf.push(0);
                client_name.encode(buf);
                auth_id.encode(buf);
                epoch.encode(buf);
            }
            Request::GetDeviceList => buf.push(1),
            Request::CreateContext { context_id, devices } => {
                buf.push(2);
                context_id.encode(buf);
                devices.encode(buf);
            }
            Request::ReleaseContext { context_id } => {
                buf.push(3);
                context_id.encode(buf);
            }
            Request::CreateCommandQueue { queue_id, context_id, device } => {
                buf.push(4);
                queue_id.encode(buf);
                context_id.encode(buf);
                device.encode(buf);
            }
            Request::ReleaseCommandQueue { queue_id } => {
                buf.push(5);
                queue_id.encode(buf);
            }
            Request::CreateBuffer { buffer_id, context_id, size, readable, writable } => {
                buf.push(6);
                buffer_id.encode(buf);
                context_id.encode(buf);
                size.encode(buf);
                readable.encode(buf);
                writable.encode(buf);
            }
            Request::ReleaseBuffer { buffer_id } => {
                buf.push(7);
                buffer_id.encode(buf);
            }
            Request::CreateProgramWithSource { program_id, context_id, source } => {
                buf.push(8);
                program_id.encode(buf);
                context_id.encode(buf);
                source.encode(buf);
            }
            Request::CreateProgramWithBuiltInKernels { program_id, context_id, names } => {
                buf.push(9);
                program_id.encode(buf);
                context_id.encode(buf);
                names.encode(buf);
            }
            Request::BuildProgram { program_id } => {
                buf.push(10);
                program_id.encode(buf);
            }
            Request::GetBuildLog { program_id } => {
                buf.push(11);
                program_id.encode(buf);
            }
            Request::CreateKernel { kernel_id, program_id, name } => {
                buf.push(12);
                kernel_id.encode(buf);
                program_id.encode(buf);
                name.encode(buf);
            }
            Request::SetKernelArgScalar { kernel_id, index, value } => {
                buf.push(13);
                kernel_id.encode(buf);
                index.encode(buf);
                value.encode(buf);
            }
            Request::SetKernelArgBuffer { kernel_id, index, buffer_id } => {
                buf.push(14);
                kernel_id.encode(buf);
                index.encode(buf);
                buffer_id.encode(buf);
            }
            Request::SetKernelArgLocal { kernel_id, index, bytes } => {
                buf.push(15);
                kernel_id.encode(buf);
                index.encode(buf);
                bytes.encode(buf);
            }
            Request::EnqueueWriteBuffer {
                queue_id,
                buffer_id,
                offset,
                size,
                event_id,
                stream_id,
                wait_events,
            } => {
                buf.push(16);
                queue_id.encode(buf);
                buffer_id.encode(buf);
                offset.encode(buf);
                size.encode(buf);
                event_id.encode(buf);
                stream_id.encode(buf);
                wait_events.encode(buf);
            }
            Request::EnqueueReadBuffer {
                queue_id,
                buffer_id,
                offset,
                size,
                event_id,
                stream_id,
                wait_events,
            } => {
                buf.push(17);
                queue_id.encode(buf);
                buffer_id.encode(buf);
                offset.encode(buf);
                size.encode(buf);
                event_id.encode(buf);
                stream_id.encode(buf);
                wait_events.encode(buf);
            }
            Request::EnqueueNdRange { queue_id, kernel_id, event_id, range, wait_events } => {
                buf.push(18);
                queue_id.encode(buf);
                kernel_id.encode(buf);
                event_id.encode(buf);
                range.encode(buf);
                wait_events.encode(buf);
            }
            Request::EnqueueMarker { queue_id, event_id, wait_events } => {
                buf.push(19);
                queue_id.encode(buf);
                event_id.encode(buf);
                wait_events.encode(buf);
            }
            Request::CreateUserEvent { event_id } => {
                buf.push(20);
                event_id.encode(buf);
            }
            Request::SetUserEventComplete { event_id } => {
                buf.push(21);
                event_id.encode(buf);
            }
            Request::GetEventStatus { event_id } => {
                buf.push(22);
                event_id.encode(buf);
            }
            Request::GetServerInfo => buf.push(23),
            Request::Disconnect => buf.push(24),
            Request::UploadBufferData { buffer_id, stream_id, size } => {
                buf.push(25);
                buffer_id.encode(buf);
                stream_id.encode(buf);
                size.encode(buf);
            }
            Request::DownloadBufferData { buffer_id, stream_id } => {
                buf.push(26);
                buffer_id.encode(buf);
                stream_id.encode(buf);
            }
            Request::EnqueueBatch { entries } => {
                buf.push(27);
                entries.encode(buf);
            }
            Request::GetSessionInfo => buf.push(28),
            Request::UploadBufferRange { buffer_id, offset, size, stream_id } => {
                buf.push(29);
                buffer_id.encode(buf);
                offset.encode(buf);
                size.encode(buf);
                stream_id.encode(buf);
            }
            Request::DownloadBufferRange { buffer_id, offset, size, stream_id } => {
                buf.push(30);
                buffer_id.encode(buf);
                offset.encode(buf);
                size.encode(buf);
                stream_id.encode(buf);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(match u8::decode(r)? {
            0 => Request::Hello {
                client_name: String::decode(r)?,
                auth_id: Option::decode(r)?,
                epoch: u64::decode(r)?,
            },
            1 => Request::GetDeviceList,
            2 => Request::CreateContext {
                context_id: ObjectId::decode(r)?,
                devices: Vec::decode(r)?,
            },
            3 => Request::ReleaseContext { context_id: ObjectId::decode(r)? },
            4 => Request::CreateCommandQueue {
                queue_id: ObjectId::decode(r)?,
                context_id: ObjectId::decode(r)?,
                device: ObjectId::decode(r)?,
            },
            5 => Request::ReleaseCommandQueue { queue_id: ObjectId::decode(r)? },
            6 => Request::CreateBuffer {
                buffer_id: ObjectId::decode(r)?,
                context_id: ObjectId::decode(r)?,
                size: u64::decode(r)?,
                readable: bool::decode(r)?,
                writable: bool::decode(r)?,
            },
            7 => Request::ReleaseBuffer { buffer_id: ObjectId::decode(r)? },
            8 => Request::CreateProgramWithSource {
                program_id: ObjectId::decode(r)?,
                context_id: ObjectId::decode(r)?,
                source: String::decode(r)?,
            },
            9 => Request::CreateProgramWithBuiltInKernels {
                program_id: ObjectId::decode(r)?,
                context_id: ObjectId::decode(r)?,
                names: String::decode(r)?,
            },
            10 => Request::BuildProgram { program_id: ObjectId::decode(r)? },
            11 => Request::GetBuildLog { program_id: ObjectId::decode(r)? },
            12 => Request::CreateKernel {
                kernel_id: ObjectId::decode(r)?,
                program_id: ObjectId::decode(r)?,
                name: String::decode(r)?,
            },
            13 => Request::SetKernelArgScalar {
                kernel_id: ObjectId::decode(r)?,
                index: u32::decode(r)?,
                value: WireValue::decode(r)?,
            },
            14 => Request::SetKernelArgBuffer {
                kernel_id: ObjectId::decode(r)?,
                index: u32::decode(r)?,
                buffer_id: ObjectId::decode(r)?,
            },
            15 => Request::SetKernelArgLocal {
                kernel_id: ObjectId::decode(r)?,
                index: u32::decode(r)?,
                bytes: u64::decode(r)?,
            },
            16 => Request::EnqueueWriteBuffer {
                queue_id: ObjectId::decode(r)?,
                buffer_id: ObjectId::decode(r)?,
                offset: u64::decode(r)?,
                size: u64::decode(r)?,
                event_id: ObjectId::decode(r)?,
                stream_id: u64::decode(r)?,
                wait_events: Vec::decode(r)?,
            },
            17 => Request::EnqueueReadBuffer {
                queue_id: ObjectId::decode(r)?,
                buffer_id: ObjectId::decode(r)?,
                offset: u64::decode(r)?,
                size: u64::decode(r)?,
                event_id: ObjectId::decode(r)?,
                stream_id: u64::decode(r)?,
                wait_events: Vec::decode(r)?,
            },
            18 => Request::EnqueueNdRange {
                queue_id: ObjectId::decode(r)?,
                kernel_id: ObjectId::decode(r)?,
                event_id: ObjectId::decode(r)?,
                range: WireNdRange::decode(r)?,
                wait_events: Vec::decode(r)?,
            },
            19 => Request::EnqueueMarker {
                queue_id: ObjectId::decode(r)?,
                event_id: ObjectId::decode(r)?,
                wait_events: Vec::decode(r)?,
            },
            20 => Request::CreateUserEvent { event_id: ObjectId::decode(r)? },
            21 => Request::SetUserEventComplete { event_id: ObjectId::decode(r)? },
            22 => Request::GetEventStatus { event_id: ObjectId::decode(r)? },
            23 => Request::GetServerInfo,
            24 => Request::Disconnect,
            25 => Request::UploadBufferData {
                buffer_id: ObjectId::decode(r)?,
                stream_id: u64::decode(r)?,
                size: u64::decode(r)?,
            },
            26 => Request::DownloadBufferData {
                buffer_id: ObjectId::decode(r)?,
                stream_id: u64::decode(r)?,
            },
            27 => Request::EnqueueBatch { entries: Vec::decode(r)? },
            28 => Request::GetSessionInfo,
            29 => Request::UploadBufferRange {
                buffer_id: ObjectId::decode(r)?,
                offset: u64::decode(r)?,
                size: u64::decode(r)?,
                stream_id: u64::decode(r)?,
            },
            30 => Request::DownloadBufferRange {
                buffer_id: ObjectId::decode(r)?,
                offset: u64::decode(r)?,
                size: u64::decode(r)?,
                stream_id: u64::decode(r)?,
            },
            other => return Err(codec_err(format!("invalid request tag {other}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Server information returned by [`Request::GetServerInfo`]
/// (`clGetServerInfoWWU`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// The daemon's node name.
    pub name: String,
    /// Number of devices currently visible to this client.
    pub device_count: u32,
    /// Whether the daemon runs in managed mode (Section IV-A).
    pub managed: bool,
}

impl Encode for ServerInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.device_count.encode(buf);
        self.managed.encode(buf);
    }
}

impl Decode for ServerInfo {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(ServerInfo {
            name: String::decode(r)?,
            device_count: u32::decode(r)?,
            managed: bool::decode(r)?,
        })
    }
}

/// The daemon's view of a client session, returned as the answer to
/// [`Request::Hello`] and [`Request::GetSessionInfo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Lease authentication id the session presented, if any.
    pub auth_id: Option<String>,
    /// The session epoch from the most recent `Hello`.
    pub epoch: u64,
    /// Whether this session was revived from parked state after a reconnect
    /// (its remote objects and dedup window survived).
    pub resumed: bool,
    /// Commands admitted (executed for the first time) by the dedup window.
    pub dedup_admitted: u64,
    /// Replayed commands the dedup window suppressed.
    pub dedup_replayed: u64,
}

impl Encode for SessionInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.auth_id.encode(buf);
        self.epoch.encode(buf);
        self.resumed.encode(buf);
        self.dedup_admitted.encode(buf);
        self.dedup_replayed.encode(buf);
    }
}

impl Decode for SessionInfo {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(SessionInfo {
            auth_id: Option::decode(r)?,
            epoch: u64::decode(r)?,
            resumed: bool::decode(r)?,
            dedup_admitted: u64::decode(r)?,
            dedup_replayed: u64::decode(r)?,
        })
    }
}

/// A daemon's answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded and carries no payload.
    Ok,
    /// The request failed.
    Error {
        /// OpenCL error code (negative) or protocol error.
        code: i32,
        /// Human-readable description.
        message: String,
    },
    /// Device list for [`Request::GetDeviceList`].
    DeviceList {
        /// Devices visible to the requesting client.
        devices: Vec<DeviceDescriptor>,
    },
    /// Build log for [`Request::GetBuildLog`].
    BuildLog {
        /// The log text (empty on success).
        log: String,
    },
    /// Event status for [`Request::GetEventStatus`].
    EventStatus {
        /// Numeric OpenCL event status.
        status: i32,
    },
    /// Server information for [`Request::GetServerInfo`].
    ServerInfo(ServerInfo),
    /// Acknowledgement carrying the modelled duration of a completed
    /// synchronous operation, in nanoseconds (e.g. a buffer upload).
    OkTimed {
        /// Modelled duration in nanoseconds.
        modeled_nanos: u64,
    },
    /// Per-entry enqueue outcome of a [`Request::EnqueueBatch`].
    ///
    /// `statuses[k]` is the outcome of entry `k`.  The daemon stops at the
    /// first entry that fails to *enqueue*, so `statuses` may be shorter
    /// than the batch; the client fails the remaining entries' events
    /// locally.
    BatchEnqueued {
        /// Outcomes of the attempted entries, in batch order.
        statuses: Vec<BatchEntryStatus>,
    },
    /// Session state for [`Request::Hello`] / [`Request::GetSessionInfo`].
    SessionInfo(SessionInfo),
    /// Acknowledgement of a [`Request::DownloadBufferRange`], echoing the
    /// byte range actually shipped on the bulk stream plus the modelled
    /// transfer duration.
    BufferRange {
        /// First byte shipped.
        offset: u64,
        /// Number of bytes shipped.
        size: u64,
        /// Modelled duration in nanoseconds.
        modeled_nanos: u64,
    },
}

impl Encode for Response {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Ok => buf.push(0),
            Response::Error { code, message } => {
                buf.push(1);
                code.encode(buf);
                message.encode(buf);
            }
            Response::DeviceList { devices } => {
                buf.push(2);
                devices.encode(buf);
            }
            Response::BuildLog { log } => {
                buf.push(3);
                log.encode(buf);
            }
            Response::EventStatus { status } => {
                buf.push(4);
                status.encode(buf);
            }
            Response::ServerInfo(info) => {
                buf.push(5);
                info.encode(buf);
            }
            Response::OkTimed { modeled_nanos } => {
                buf.push(6);
                modeled_nanos.encode(buf);
            }
            Response::BatchEnqueued { statuses } => {
                buf.push(7);
                statuses.encode(buf);
            }
            Response::SessionInfo(info) => {
                buf.push(8);
                info.encode(buf);
            }
            Response::BufferRange { offset, size, modeled_nanos } => {
                buf.push(9);
                offset.encode(buf);
                size.encode(buf);
                modeled_nanos.encode(buf);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(match u8::decode(r)? {
            0 => Response::Ok,
            1 => Response::Error { code: i32::decode(r)?, message: String::decode(r)? },
            2 => Response::DeviceList { devices: Vec::decode(r)? },
            3 => Response::BuildLog { log: String::decode(r)? },
            4 => Response::EventStatus { status: i32::decode(r)? },
            5 => Response::ServerInfo(ServerInfo::decode(r)?),
            6 => Response::OkTimed { modeled_nanos: u64::decode(r)? },
            7 => Response::BatchEnqueued { statuses: Vec::decode(r)? },
            8 => Response::SessionInfo(SessionInfo::decode(r)?),
            9 => Response::BufferRange {
                offset: u64::decode(r)?,
                size: u64::decode(r)?,
                modeled_nanos: u64::decode(r)?,
            },
            other => return Err(codec_err(format!("invalid response tag {other}"))),
        })
    }
}

impl Response {
    /// Convert an error response into a [`DclError`]; `Ok`/payload responses
    /// pass through.
    pub fn into_result(self) -> Result<Response> {
        match self {
            Response::Error { code, message } => {
                Err(DclError::Protocol(format!("server error {code}: {message}")))
            }
            other => Ok(other),
        }
    }
}

// ---------------------------------------------------------------------------
// Notifications
// ---------------------------------------------------------------------------

/// Asynchronous notifications sent by a daemon to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// An event on this server reached a terminal state.
    EventCompleted {
        /// The client-assigned event id.
        event_id: ObjectId,
        /// Final OpenCL status (0 = complete, negative = error).
        status: i32,
        /// Modelled duration of the command in nanoseconds.
        modeled_nanos: u64,
        /// Number of work-items executed (kernel commands only).
        work_items: u64,
    },
}

impl Encode for Notification {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Notification::EventCompleted { event_id, status, modeled_nanos, work_items } => {
                buf.push(0);
                event_id.encode(buf);
                status.encode(buf);
                modeled_nanos.encode(buf);
                work_items.encode(buf);
            }
        }
    }
}

impl Decode for Notification {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, GcfError> {
        Ok(match u8::decode(r)? {
            0 => Notification::EventCompleted {
                event_id: ObjectId::decode(r)?,
                status: i32::decode(r)?,
                modeled_nanos: u64::decode(r)?,
                work_items: u64::decode(r)?,
            },
            other => return Err(codec_err(format!("invalid notification tag {other}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Encode a request to bytes (payload of a gcf request frame).
pub fn encode_request(request: &Request) -> Vec<u8> {
    request.to_bytes()
}

/// Decode a request from a gcf request frame payload.
pub fn decode_request(bytes: &[u8]) -> Result<Request> {
    Request::from_bytes(bytes).map_err(|e| DclError::Protocol(e.to_string()))
}

/// Encode a response to bytes.
pub fn encode_response(response: &Response) -> Vec<u8> {
    response.to_bytes()
}

/// Decode a response from bytes.
pub fn decode_response(bytes: &[u8]) -> Result<Response> {
    Response::from_bytes(bytes).map_err(|e| DclError::Protocol(e.to_string()))
}

/// Estimate of the on-wire size of a request in bytes (used when charging
/// the link model for message-based communication).
pub fn request_wire_size(request: &Request) -> u64 {
    request.to_bytes().len() as u64
}

/// Keep `encode_bytes`/`decode_bytes` linked for protocol extensions that
/// embed opaque payloads.
#[allow(dead_code)]
fn _wire_helpers(buf: &mut Vec<u8>, r: &mut Reader<'_>) -> std::result::Result<Vec<u8>, GcfError> {
    encode_bytes(&[], buf);
    decode_bytes(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn all_requests_roundtrip() {
        roundtrip_request(Request::Hello {
            client_name: "pc".into(),
            auth_id: Some("lease-1".into()),
            epoch: 3,
        });
        roundtrip_request(Request::GetDeviceList);
        roundtrip_request(Request::CreateContext { context_id: 1, devices: vec![10, 11] });
        roundtrip_request(Request::ReleaseContext { context_id: 1 });
        roundtrip_request(Request::CreateCommandQueue { queue_id: 2, context_id: 1, device: 10 });
        roundtrip_request(Request::ReleaseCommandQueue { queue_id: 2 });
        roundtrip_request(Request::CreateBuffer {
            buffer_id: 3,
            context_id: 1,
            size: 4096,
            readable: true,
            writable: false,
        });
        roundtrip_request(Request::ReleaseBuffer { buffer_id: 3 });
        roundtrip_request(Request::CreateProgramWithSource {
            program_id: 4,
            context_id: 1,
            source: "__kernel void k() {}".into(),
        });
        roundtrip_request(Request::CreateProgramWithBuiltInKernels {
            program_id: 4,
            context_id: 1,
            names: "mandelbrot;osem".into(),
        });
        roundtrip_request(Request::BuildProgram { program_id: 4 });
        roundtrip_request(Request::GetBuildLog { program_id: 4 });
        roundtrip_request(Request::CreateKernel { kernel_id: 5, program_id: 4, name: "k".into() });
        roundtrip_request(Request::SetKernelArgScalar {
            kernel_id: 5,
            index: 0,
            value: WireValue(Value::float(1.5)),
        });
        roundtrip_request(Request::SetKernelArgBuffer { kernel_id: 5, index: 1, buffer_id: 3 });
        roundtrip_request(Request::SetKernelArgLocal { kernel_id: 5, index: 2, bytes: 256 });
        roundtrip_request(Request::EnqueueWriteBuffer {
            queue_id: 2,
            buffer_id: 3,
            offset: 0,
            size: 4096,
            event_id: 7,
            stream_id: 99,
            wait_events: vec![6],
        });
        roundtrip_request(Request::EnqueueReadBuffer {
            queue_id: 2,
            buffer_id: 3,
            offset: 16,
            size: 64,
            event_id: 8,
            stream_id: 100,
            wait_events: vec![],
        });
        roundtrip_request(Request::EnqueueNdRange {
            queue_id: 2,
            kernel_id: 5,
            event_id: 9,
            range: WireNdRange(NdRange::two_d(64, 32).with_local([8, 8, 1])),
            wait_events: vec![7, 8],
        });
        roundtrip_request(Request::EnqueueMarker {
            queue_id: 2,
            event_id: 10,
            wait_events: vec![9],
        });
        roundtrip_request(Request::CreateUserEvent { event_id: 11 });
        roundtrip_request(Request::SetUserEventComplete { event_id: 11 });
        roundtrip_request(Request::GetEventStatus { event_id: 9 });
        roundtrip_request(Request::GetServerInfo);
        roundtrip_request(Request::Disconnect);
        roundtrip_request(Request::UploadBufferData { buffer_id: 3, stream_id: 12, size: 64 });
        roundtrip_request(Request::DownloadBufferData { buffer_id: 3, stream_id: 13 });
        roundtrip_request(Request::EnqueueBatch {
            entries: vec![
                BatchEntry {
                    command_id: 900,
                    queue_id: 2,
                    event_id: 20,
                    wait_events: vec![6, 7],
                    command: BatchCommand::WriteBuffer {
                        buffer_id: 3,
                        offset: 8,
                        size: 64,
                        stream_id: 200,
                    },
                },
                BatchEntry {
                    command_id: 901,
                    queue_id: 2,
                    event_id: 21,
                    wait_events: vec![],
                    command: BatchCommand::ReadBuffer {
                        buffer_id: 3,
                        offset: 0,
                        size: 16,
                        stream_id: 201,
                    },
                },
                BatchEntry {
                    command_id: 902,
                    queue_id: 2,
                    event_id: 22,
                    wait_events: vec![20],
                    command: BatchCommand::NdRange {
                        kernel_id: 5,
                        range: WireNdRange(NdRange::linear(128)),
                    },
                },
                BatchEntry {
                    command_id: 903,
                    queue_id: 2,
                    event_id: 23,
                    wait_events: vec![],
                    command: BatchCommand::Marker,
                },
            ],
        });
        roundtrip_request(Request::GetSessionInfo);
        roundtrip_request(Request::UploadBufferRange {
            buffer_id: 3,
            offset: 4096,
            size: 512,
            stream_id: 14,
        });
        roundtrip_request(Request::DownloadBufferRange {
            buffer_id: 3,
            offset: 128,
            size: 64,
            stream_id: 15,
        });
    }

    #[test]
    fn all_responses_roundtrip() {
        roundtrip_response(Response::Ok);
        roundtrip_response(Response::Error { code: -30, message: "CL_INVALID_VALUE".into() });
        roundtrip_response(Response::DeviceList {
            devices: vec![DeviceDescriptor {
                remote_id: 1,
                name: "Tesla".into(),
                vendor: "NVIDIA".into(),
                device_type: "GPU".into(),
                compute_units: 30,
                global_mem_bytes: 4 << 30,
                max_alloc_bytes: 1 << 30,
            }],
        });
        roundtrip_response(Response::BuildLog { log: "error at 1:1".into() });
        roundtrip_response(Response::EventStatus { status: 0 });
        roundtrip_response(Response::ServerInfo(ServerInfo {
            name: "gpuserver".into(),
            device_count: 4,
            managed: true,
        }));
        roundtrip_response(Response::OkTimed { modeled_nanos: 123_456 });
        roundtrip_response(Response::BatchEnqueued {
            statuses: vec![
                BatchEntryStatus::ok(),
                BatchEntryStatus { code: -34, message: "unknown event id 9".into() },
            ],
        });
        roundtrip_response(Response::SessionInfo(SessionInfo {
            auth_id: Some("lease-1".into()),
            epoch: 2,
            resumed: true,
            dedup_admitted: 17,
            dedup_replayed: 3,
        }));
        roundtrip_response(Response::BufferRange { offset: 4096, size: 512, modeled_nanos: 987 });
    }

    #[test]
    fn notification_roundtrip() {
        let n = Notification::EventCompleted {
            event_id: 42,
            status: 0,
            modeled_nanos: 5_000_000,
            work_items: 1024,
        };
        assert_eq!(Notification::from_bytes(&n.to_bytes()).unwrap(), n);
    }

    #[test]
    fn wire_values_roundtrip() {
        for v in [
            Value::int(-3),
            Value::uint(7),
            Value::float(2.5),
            Value::double(-1.25),
            Value::size_t(1 << 40),
            Value::boolean(true),
            Value::Vector(ScalarType::Float, vec![Scalar::F(1.0), Scalar::F(2.0)]),
            Value::Void,
        ] {
            let w = WireValue(v);
            let bytes = w.to_bytes();
            assert_eq!(WireValue::from_bytes(&bytes).unwrap(), w);
        }
    }

    #[test]
    fn error_response_converts_to_dcl_error() {
        let r = Response::Error { code: -5, message: "boom".into() };
        assert!(r.into_result().is_err());
        assert!(Response::Ok.into_result().is_ok());
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        assert!(decode_request(&[200]).is_err());
        assert!(decode_response(&[99]).is_err());
        assert!(Notification::from_bytes(&[7]).is_err());
    }
}
