//! Directory-based MSI coherence for distributed memory objects.
//!
//! Section III-D of the paper: remote memory objects on the servers are
//! viewed as cached copies of the client's memory object stub.  The client
//! maintains, per buffer, a state for each server copy plus its own state
//! and a *directory* (the list of servers owning a valid copy).  States
//! follow the MSI protocol:
//!
//! * a copy is **Modified** after the owning server's device wrote it (any
//!   kernel launch that takes the buffer as an argument is conservatively
//!   treated as a write),
//! * a copy is **Shared** after a clean upload/download,
//! * every other copy is **Invalid**.
//!
//! The [`BufferDirectory`] only records state and answers "what do I have to
//! transfer?"; the actual uploads and downloads are performed by the client
//! driver, which charges their modelled cost to the data-transfer phase.
//!
//! # Range coherence semantics
//!
//! The directory tracks state at **byte-range granularity**: internally it
//! keeps a sorted, non-overlapping segment list covering `[0, size)`, each
//! segment carrying a per-server [`CoherenceState`] plus the client's own
//! state for that range.  Every recording operation (host write, device
//! write, fetch, upload, invalidation) first splits segments at the range
//! boundaries, updates the covered segments, then re-coalesces adjacent
//! segments whose states became equal — so the segment list stays minimal.
//!
//! **Device writes** are scoped: a kernel launch that declares the slice it
//! accesses (see `LaunchOp::writes_slice` in the client) dirties only that
//! range; an undeclared launch conservatively dirties the whole buffer, the
//! same fallback the whole-buffer protocol always used.  This is what lets a
//! buffer be *partitioned* across daemons: when each device's launches only
//! ever touch its own slice, each daemon remains the Modified owner of its
//! slice and no full-frame round trips occur.
//!
//! **Delta planning**: [`BufferDirectory::plan_delta`] computes the minimal
//! transfer set that makes a server's copy valid, as a [`DeltaPlan`] of
//! range *fetches* (pull ranges the client lacks from their current owners)
//! followed by range *uploads* (push exactly the server's stale ranges).
//! Only stale bytes move; adjacent stale ranges are coalesced into single
//! transfers.
//!
//! **Fragmentation cap**: a pathological write pattern (e.g. alternating
//! dirty bytes) can degenerate the interval map into thousands of tiny
//! ranges whose per-message overhead would dwarf the payload.  When a plan
//! would need more than [`BufferDirectory::set_fragmentation_cap`] wire
//! operations (default [`DEFAULT_FRAGMENTATION_CAP`]), it *collapses*: the
//! client fetches each source's ranges as one spanning read (applying only
//! the valid sub-ranges), completes its copy over the whole buffer, and
//! ships a single whole-buffer upload — at most one fetch per source plus
//! one upload, exactly the old whole-buffer cost.
//!
//! **Differential oracle**: the pre-range whole-buffer implementation
//! survives verbatim behind [`CoherenceMode::Whole`], selected by the
//! `DCL_COHERENCE=whole` environment variable (mirroring the
//! `DCL_INTERP=tree` oracle of the kernel VM).  Both implementations answer
//! the same [`DeltaPlan`] interface — the whole-buffer one always plans
//! full-buffer transfers — so the client driver has a single code path and
//! the differential suite in `tests/tests/coherence.rs` can drive random
//! operation interleavings through both and assert byte-identical reads.

use std::collections::{BTreeMap, HashMap};

/// Coherence state of one cached copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceState {
    /// The copy was written by its owner and is the only valid one.
    Modified,
    /// The copy is valid and identical to every other shared copy.
    Shared,
    /// The copy is stale.
    Invalid,
}

/// How a [`BufferDirectory`] tracks validity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceMode {
    /// Range-granular directory with delta transfers (the default).
    Range,
    /// Whole-buffer validity, full-copy transfers — the pre-range protocol,
    /// kept as the differential-testing oracle (`DCL_COHERENCE=whole`).
    Whole,
}

impl CoherenceMode {
    /// Parse a `DCL_COHERENCE` value: `"whole"` (case-insensitive) selects
    /// the whole-buffer oracle, anything else the range directory.
    pub fn parse(value: Option<&str>) -> CoherenceMode {
        match value {
            Some(v) if v.eq_ignore_ascii_case("whole") => CoherenceMode::Whole,
            _ => CoherenceMode::Range,
        }
    }

    /// Read the mode from the `DCL_COHERENCE` environment variable.
    pub fn from_env() -> CoherenceMode {
        CoherenceMode::parse(std::env::var("DCL_COHERENCE").ok().as_deref())
    }
}

/// Maximum number of wire operations (fetches + uploads) a [`DeltaPlan`] may
/// schedule before it collapses to whole-buffer transfer.
pub const DEFAULT_FRAGMENTATION_CAP: usize = 32;

/// A half-open `[start, end)` byte range within a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteRange {
    /// First byte of the range.
    pub start: usize,
    /// One past the last byte of the range.
    pub end: usize,
}

impl ByteRange {
    /// `[start, end)`; an inverted pair collapses to the empty range at
    /// `start`.
    pub fn new(start: usize, end: usize) -> ByteRange {
        ByteRange { start, end: end.max(start) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The overlap of two ranges, if any bytes overlap.
    pub fn intersect(&self, other: ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(ByteRange { start, end })
    }

    /// The range clamped to `[0, max)`.
    pub fn clamp_to(&self, max: usize) -> ByteRange {
        ByteRange::new(self.start.min(max), self.end.min(max))
    }
}

/// One fetch of a [`DeltaPlan`]: download `span` from `source` and merge the
/// `apply` sub-ranges of it into the client's copy.
///
/// In an uncollapsed plan `apply` is exactly `[span]`.  In a collapsed plan
/// `span` is the hull of all ranges needed from `source` and `apply` lists
/// the sub-ranges that are actually valid there — the gap bytes of the
/// spanning read are discarded, because `source` may hold stale data in the
/// gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeFetch {
    /// Server to download from.
    pub source: usize,
    /// The contiguous range to download.
    pub span: ByteRange,
    /// Sub-ranges of `span` to merge into the client copy.
    pub apply: Vec<ByteRange>,
}

/// The transfers the client must perform so that a server holds a valid
/// copy: `fetches` complete the client's own copy, then `uploads` push the
/// server's stale ranges.  Computed by [`BufferDirectory::plan_delta`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaPlan {
    /// Ranges the client must download first (it holds no valid copy of
    /// them), each from a server that does.
    pub fetches: Vec<RangeFetch>,
    /// Ranges to upload to the target server afterwards.
    pub uploads: Vec<ByteRange>,
    /// Whether the fragmentation cap collapsed this plan to a whole-buffer
    /// transfer.
    pub collapsed: bool,
}

impl DeltaPlan {
    /// A plan that moves nothing — the server is already valid.
    pub fn noop() -> DeltaPlan {
        DeltaPlan::default()
    }

    /// Whether the plan schedules no transfers at all.
    pub fn is_noop(&self) -> bool {
        self.fetches.is_empty() && self.uploads.is_empty()
    }

    /// Total bytes the plan downloads from servers.
    pub fn fetch_bytes(&self) -> usize {
        self.fetches.iter().map(|f| f.span.len()).sum()
    }

    /// Total bytes the plan uploads to the target.
    pub fn upload_bytes(&self) -> usize {
        self.uploads.iter().map(|r| r.len()).sum()
    }
}

/// The transfers the client must perform so that a given server holds a
/// valid copy (the whole-buffer protocol's plan; kept for the oracle and
/// for API compatibility — new code should use [`DeltaPlan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationPlan {
    /// The server already holds a valid copy; nothing to do.
    AlreadyValid,
    /// Upload the client's (valid) copy to the server.
    UploadFromClient,
    /// Download a valid copy from `source` first, then upload it to the
    /// target server.
    FetchThenUpload {
        /// Server that owns a valid copy.
        source: usize,
    },
}

// ---------------------------------------------------------------------------
// Whole-buffer directory (the DCL_COHERENCE=whole differential oracle)
// ---------------------------------------------------------------------------

/// The pre-range whole-buffer directory, preserved as the differential
/// oracle.  Semantics are unchanged except for two soundness fixes the
/// differential suite depends on: zero-length host writes are now no-ops
/// (previously they could promote a stale client copy to Shared without
/// moving any bytes), and a partial host write no longer promotes a stale
/// client copy to Shared (the untouched remainder would have been served
/// from stale cached bytes).  The matching driver-side fix is
/// [`BufferDirectory::needs_write_validation`].
#[derive(Debug, Clone)]
struct WholeDirectory {
    /// Coherence state of each server's remote memory object.
    per_server: HashMap<usize, CoherenceState>,
    /// Coherence state of the client's own (host-memory) copy.
    client_state: CoherenceState,
    /// The client's cached data, if any (`None` means "all zeroes", the
    /// state of a freshly created buffer).
    client_copy: Option<Vec<u8>>,
    /// Buffer size in bytes.
    size: usize,
}

impl WholeDirectory {
    fn new(servers: impl IntoIterator<Item = usize>, size: usize) -> Self {
        WholeDirectory {
            per_server: servers.into_iter().map(|s| (s, CoherenceState::Invalid)).collect(),
            client_state: CoherenceState::Shared,
            client_copy: None,
            size,
        }
    }

    fn server_state(&self, server: usize) -> CoherenceState {
        self.per_server.get(&server).copied().unwrap_or(CoherenceState::Invalid)
    }

    fn valid_servers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .per_server
            .iter()
            .filter(|(_, s)| **s != CoherenceState::Invalid)
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v
    }

    fn client_data(&self) -> Vec<u8> {
        self.client_copy.clone().unwrap_or_else(|| vec![0u8; self.size])
    }

    fn client_valid(&self) -> bool {
        self.client_state != CoherenceState::Invalid
    }

    fn plan_validation(&self, server: usize) -> ValidationPlan {
        if self.server_state(server) != CoherenceState::Invalid {
            return ValidationPlan::AlreadyValid;
        }
        if self.client_valid() {
            return ValidationPlan::UploadFromClient;
        }
        match self.valid_servers().first() {
            Some(source) => ValidationPlan::FetchThenUpload { source: *source },
            // Nobody has valid data (cannot happen through the public API,
            // but stay safe): treat the zero-filled client copy as valid.
            None => ValidationPlan::UploadFromClient,
        }
    }

    fn record_client_fetch(&mut self, source: usize, data: Vec<u8>) {
        self.client_copy = Some(data);
        self.client_state = CoherenceState::Shared;
        if let Some(s) = self.per_server.get_mut(&source) {
            *s = CoherenceState::Shared;
        }
    }

    fn record_upload(&mut self, server: usize) {
        self.per_server.insert(server, CoherenceState::Shared);
        if self.client_state == CoherenceState::Invalid {
            self.client_state = CoherenceState::Shared;
        }
    }

    fn record_host_write(&mut self, server: usize, offset: usize, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let client_was_valid = self.client_valid();
        let mut copy = self.client_data();
        let end = (offset + data.len()).min(copy.len());
        if offset < copy.len() {
            copy[offset..end].copy_from_slice(&data[..end - offset]);
        }
        self.client_copy = Some(copy);
        // A full-buffer write makes the client copy valid outright; a partial
        // write only keeps it valid — patching a stale copy must not promote
        // the untouched remainder.
        if client_was_valid || (offset == 0 && data.len() >= self.size) {
            self.client_state = CoherenceState::Shared;
        }
        for (s, state) in self.per_server.iter_mut() {
            *state = if *s == server { CoherenceState::Shared } else { CoherenceState::Invalid };
        }
    }

    fn record_device_write(&mut self, server: usize) {
        for (s, state) in self.per_server.iter_mut() {
            *state = if *s == server { CoherenceState::Modified } else { CoherenceState::Invalid };
        }
        self.client_state = CoherenceState::Invalid;
        self.client_copy = None;
    }

    fn record_host_read(&mut self, server: usize, offset: usize, data: &[u8]) {
        // A read from a server that holds no valid copy cannot make the
        // client's copy valid (the client driver always validates the server
        // first, so this is purely defensive).
        if self.server_state(server) == CoherenceState::Invalid {
            return;
        }
        if offset == 0 && data.len() == self.size {
            self.client_copy = Some(data.to_vec());
            self.client_state = CoherenceState::Shared;
        }
        if let Some(s) = self.per_server.get_mut(&server) {
            if *s == CoherenceState::Modified {
                *s = CoherenceState::Shared;
            }
        }
    }

    fn add_server(&mut self, server: usize) {
        self.per_server.entry(server).or_insert(CoherenceState::Invalid);
    }

    fn invalidate_server(&mut self, server: usize) -> bool {
        let was_only_valid = self.server_state(server) != CoherenceState::Invalid
            && !self.client_valid()
            && self.valid_servers() == [server];
        self.per_server.insert(server, CoherenceState::Invalid);
        if was_only_valid {
            // Degrade to the stale client copy so the buffer stays usable;
            // callers that care can surface the loss to the application.
            self.client_state = CoherenceState::Shared;
        }
        was_only_valid
    }

    fn plan_delta(&self, server: usize) -> DeltaPlan {
        let full = ByteRange::new(0, self.size);
        match self.plan_validation(server) {
            ValidationPlan::AlreadyValid => DeltaPlan::noop(),
            ValidationPlan::UploadFromClient => {
                DeltaPlan { fetches: Vec::new(), uploads: vec![full], collapsed: false }
            }
            ValidationPlan::FetchThenUpload { source } => DeltaPlan {
                fetches: vec![RangeFetch { source, span: full, apply: vec![full] }],
                uploads: vec![full],
                collapsed: false,
            },
        }
    }

    fn check_invariants(&self) -> std::result::Result<(), String> {
        let modified: Vec<usize> = self
            .per_server
            .iter()
            .filter(|(_, s)| **s == CoherenceState::Modified)
            .map(|(k, _)| *k)
            .collect();
        if modified.len() > 1 {
            return Err(format!("multiple Modified owners: {modified:?}"));
        }
        if modified.len() == 1 && self.client_valid() {
            return Err("client valid while a server copy is Modified".into());
        }
        if !self.client_valid() && self.valid_servers().is_empty() {
            return Err("no valid copy anywhere".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Range-granular directory
// ---------------------------------------------------------------------------

/// Per-segment coherence state: the client's state plus each server's.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SegState {
    client: CoherenceState,
    servers: BTreeMap<usize, CoherenceState>,
}

impl SegState {
    fn server(&self, server: usize) -> CoherenceState {
        self.servers.get(&server).copied().unwrap_or(CoherenceState::Invalid)
    }

    /// Lowest-indexed server holding a valid copy of this segment (matches
    /// the whole-buffer protocol's "first valid server" source choice).
    fn first_valid_server(&self) -> Option<usize> {
        self.servers.iter().find(|(_, s)| **s != CoherenceState::Invalid).map(|(k, _)| *k)
    }
}

/// One segment of the interval map: state for bytes `[start, end)`.
#[derive(Debug, Clone)]
struct Segment {
    start: usize,
    end: usize,
    state: SegState,
}

/// The range-granular directory: a sorted, non-overlapping segment list
/// covering `[0, size)`.
#[derive(Debug, Clone)]
struct RangeDirectory {
    segments: Vec<Segment>,
    /// The client's cached bytes; validity is tracked per segment, so the
    /// vector may hold stale bytes in client-Invalid ranges.  `None` means
    /// "all zeroes" (fresh buffer).
    client_copy: Option<Vec<u8>>,
    size: usize,
    frag_cap: usize,
}

impl RangeDirectory {
    fn new(servers: impl IntoIterator<Item = usize>, size: usize) -> Self {
        let state = SegState {
            client: CoherenceState::Shared,
            servers: servers.into_iter().map(|s| (s, CoherenceState::Invalid)).collect(),
        };
        let segments =
            if size == 0 { Vec::new() } else { vec![Segment { start: 0, end: size, state }] };
        RangeDirectory { segments, client_copy: None, size, frag_cap: DEFAULT_FRAGMENTATION_CAP }
    }

    /// Ensure a segment boundary exists at `pos` (splitting the segment that
    /// straddles it).  `pos` outside `(0, size)` is a no-op.
    fn split_at(&mut self, pos: usize) {
        if pos == 0 || pos >= self.size {
            return;
        }
        if let Some(i) = self.segments.iter().position(|s| s.start < pos && pos < s.end) {
            let right = Segment { start: pos, ..self.segments[i].clone() };
            self.segments[i].end = pos;
            self.segments.insert(i + 1, right);
        }
    }

    /// Apply `f` to every segment fully inside `range` (after splitting at
    /// its boundaries), then re-coalesce.
    fn update_range(&mut self, range: ByteRange, mut f: impl FnMut(&mut SegState)) {
        let range = range.clamp_to(self.size);
        if range.is_empty() {
            return;
        }
        self.split_at(range.start);
        self.split_at(range.end);
        for seg in &mut self.segments {
            if seg.start >= range.start && seg.end <= range.end {
                f(&mut seg.state);
            }
        }
        self.coalesce();
    }

    /// Merge adjacent segments with equal states.
    fn coalesce(&mut self) {
        let mut merged: Vec<Segment> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            match merged.last_mut() {
                Some(last) if last.end == seg.start && last.state == seg.state => {
                    last.end = seg.end;
                }
                _ => merged.push(seg),
            }
        }
        self.segments = merged;
    }

    /// Coalesced ranges within `bound` whose state satisfies `pred`.
    fn ranges_where(&self, bound: ByteRange, pred: impl Fn(&SegState) -> bool) -> Vec<ByteRange> {
        let bound = bound.clamp_to(self.size);
        let mut out: Vec<ByteRange> = Vec::new();
        for seg in &self.segments {
            let Some(part) = ByteRange::new(seg.start, seg.end).intersect(bound) else { continue };
            if !pred(&seg.state) {
                continue;
            }
            match out.last_mut() {
                Some(last) if last.end == part.start => last.end = part.end,
                _ => out.push(part),
            }
        }
        out
    }

    fn client_data_mut(&mut self) -> &mut Vec<u8> {
        let size = self.size;
        self.client_copy.get_or_insert_with(|| vec![0u8; size])
    }

    fn client_data_range(&self, range: ByteRange) -> Vec<u8> {
        let range = range.clamp_to(self.size);
        match &self.client_copy {
            Some(copy) => copy[range.start..range.end].to_vec(),
            None => vec![0u8; range.len()],
        }
    }

    // ----- summaries (whole-buffer-compatible accessors) -------------------

    /// Whole-buffer summary of a copy's state: the uniform state when every
    /// segment agrees, `Invalid` otherwise (a partially valid copy cannot be
    /// used as-is).
    fn summarise(&self, get: impl Fn(&SegState) -> CoherenceState) -> CoherenceState {
        let mut iter = self.segments.iter().map(|s| get(&s.state));
        let Some(first) = iter.next() else { return CoherenceState::Shared };
        if iter.all(|s| s == first) {
            first
        } else {
            CoherenceState::Invalid
        }
    }

    fn server_state(&self, server: usize) -> CoherenceState {
        self.summarise(|st| st.server(server))
    }

    fn client_state(&self) -> CoherenceState {
        self.summarise(|st| st.client)
    }

    fn client_valid(&self) -> bool {
        self.segments.iter().all(|s| s.state.client != CoherenceState::Invalid)
    }

    fn valid_servers(&self) -> Vec<usize> {
        let Some(first) = self.segments.first() else { return Vec::new() };
        first
            .state
            .servers
            .keys()
            .copied()
            .filter(|&srv| {
                self.segments.iter().all(|s| s.state.server(srv) != CoherenceState::Invalid)
            })
            .collect()
    }

    fn valid_ranges(&self, server: usize) -> Vec<ByteRange> {
        self.ranges_where(ByteRange::new(0, self.size), |st| {
            st.server(server) != CoherenceState::Invalid
        })
    }

    fn stale_ranges(&self, server: usize) -> Vec<ByteRange> {
        self.ranges_where(ByteRange::new(0, self.size), |st| {
            st.server(server) == CoherenceState::Invalid
        })
    }

    // ----- recording operations --------------------------------------------

    fn record_host_write(&mut self, server: usize, offset: usize, data: &[u8]) {
        if data.is_empty() || offset >= self.size {
            return;
        }
        let range = ByteRange::new(offset, offset + data.len()).clamp_to(self.size);
        self.client_data_mut()[range.start..range.end].copy_from_slice(&data[..range.len()]);
        self.update_range(range, |st| {
            st.client = CoherenceState::Shared;
            for (s, state) in st.servers.iter_mut() {
                *state =
                    if *s == server { CoherenceState::Shared } else { CoherenceState::Invalid };
            }
        });
    }

    fn record_device_write(&mut self, server: usize, range: ByteRange) {
        self.update_range(range, |st| {
            st.client = CoherenceState::Invalid;
            for (s, state) in st.servers.iter_mut() {
                *state =
                    if *s == server { CoherenceState::Modified } else { CoherenceState::Invalid };
            }
        });
    }

    fn record_host_read(&mut self, server: usize, offset: usize, data: &[u8]) {
        if offset >= self.size {
            return;
        }
        let range = ByteRange::new(offset, offset + data.len()).clamp_to(self.size);
        // Only ranges where the server actually holds a valid copy can
        // refresh the client copy (defensive, mirroring the whole-buffer
        // protocol: the driver validates the server before reading).
        let fresh = self.ranges_where(range, |st| st.server(server) != CoherenceState::Invalid);
        for r in &fresh {
            let src = &data[r.start - offset..r.end - offset];
            self.client_data_mut()[r.start..r.end].copy_from_slice(src);
        }
        for r in fresh {
            self.update_range(r, |st| {
                st.client = CoherenceState::Shared;
                if let Some(s) = st.servers.get_mut(&server) {
                    if *s == CoherenceState::Modified {
                        *s = CoherenceState::Shared;
                    }
                }
            });
        }
    }

    fn record_client_fetch(
        &mut self,
        source: usize,
        span: ByteRange,
        apply: &[ByteRange],
        data: &[u8],
    ) {
        let span = span.clamp_to(self.size);
        for r in apply {
            let Some(r) = r.intersect(span) else { continue };
            let src = &data[r.start - span.start..r.end - span.start];
            self.client_data_mut()[r.start..r.end].copy_from_slice(src);
            self.update_range(r, |st| {
                st.client = CoherenceState::Shared;
                if let Some(s) = st.servers.get_mut(&source) {
                    if *s == CoherenceState::Modified {
                        *s = CoherenceState::Shared;
                    }
                }
            });
        }
    }

    fn record_upload(&mut self, server: usize, range: ByteRange) {
        self.update_range(range, |st| {
            st.servers.insert(server, CoherenceState::Shared);
            // Mirror the whole-buffer protocol's "nobody valid" fallback:
            // uploading (zero/stale) client bytes leaves client and server
            // in agreement.
            if st.client == CoherenceState::Invalid {
                st.client = CoherenceState::Shared;
            }
        });
    }

    fn add_server(&mut self, server: usize) {
        for seg in &mut self.segments {
            seg.state.servers.entry(server).or_insert(CoherenceState::Invalid);
        }
        self.coalesce();
    }

    fn invalidate_server(&mut self, server: usize) -> bool {
        let mut lost = false;
        for seg in &mut self.segments {
            if seg.state.server(server) == CoherenceState::Invalid {
                continue;
            }
            seg.state.servers.insert(server, CoherenceState::Invalid);
            let any_valid = seg.state.client != CoherenceState::Invalid
                || seg.state.first_valid_server().is_some();
            if !any_valid {
                // Data loss on this range: degrade to the stale client copy
                // so the buffer stays usable.
                seg.state.client = CoherenceState::Shared;
                lost = true;
            }
        }
        self.coalesce();
        lost
    }

    // ----- delta planning --------------------------------------------------

    fn plan_delta(&self, server: usize, bound: ByteRange) -> DeltaPlan {
        let bound = bound.clamp_to(self.size);
        let stale = self.ranges_where(bound, |st| st.server(server) == CoherenceState::Invalid);
        if stale.is_empty() {
            return DeltaPlan::noop();
        }
        // Fetch ranges the client itself lacks, each from the first server
        // holding a valid copy of that segment.
        let mut needs: Vec<(usize, ByteRange)> = Vec::new();
        for seg in &self.segments {
            if seg.state.client != CoherenceState::Invalid {
                continue;
            }
            let seg_range = ByteRange::new(seg.start, seg.end);
            for r in &stale {
                let Some(part) = seg_range.intersect(*r) else { continue };
                // No valid server copy either: fall back to uploading the
                // (zero/stale) client bytes, as the whole protocol does.
                let Some(src) = seg.state.first_valid_server() else { continue };
                match needs.last_mut() {
                    Some((last_src, last)) if *last_src == src && last.end == part.start => {
                        last.end = part.end;
                    }
                    _ => needs.push((src, part)),
                }
            }
        }
        let fetches = needs
            .into_iter()
            .map(|(source, r)| RangeFetch { source, span: r, apply: vec![r] })
            .collect::<Vec<_>>();
        let plan = DeltaPlan { fetches, uploads: stale, collapsed: false };
        if plan.fetches.len() + plan.uploads.len() > self.frag_cap {
            return self.collapsed_plan();
        }
        plan
    }

    /// The fragmentation-cap fallback: complete the client's copy over the
    /// *whole* buffer (one spanning fetch per source, applying only the
    /// sub-ranges that are valid there), then one whole-buffer upload.
    fn collapsed_plan(&self) -> DeltaPlan {
        let mut by_source: BTreeMap<usize, Vec<ByteRange>> = BTreeMap::new();
        for seg in &self.segments {
            if seg.state.client != CoherenceState::Invalid {
                continue;
            }
            let Some(src) = seg.state.first_valid_server() else { continue };
            let ranges = by_source.entry(src).or_default();
            match ranges.last_mut() {
                Some(last) if last.end == seg.start => last.end = seg.end,
                _ => ranges.push(ByteRange::new(seg.start, seg.end)),
            }
        }
        let fetches = by_source
            .into_iter()
            .map(|(source, apply)| RangeFetch {
                source,
                span: ByteRange::new(
                    apply.first().map(|r| r.start).unwrap_or(0),
                    apply.last().map(|r| r.end).unwrap_or(0),
                ),
                apply,
            })
            .collect();
        DeltaPlan { fetches, uploads: vec![ByteRange::new(0, self.size)], collapsed: true }
    }

    fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn check_invariants(&self) -> std::result::Result<(), String> {
        if self.size == 0 {
            return if self.segments.is_empty() {
                Ok(())
            } else {
                Err("zero-size buffer with segments".into())
            };
        }
        let mut pos = 0;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.start != pos {
                return Err(format!("segment {i} starts at {} (expected {pos})", seg.start));
            }
            if seg.end <= seg.start {
                return Err(format!("segment {i} is empty ({}..{})", seg.start, seg.end));
            }
            pos = seg.end;
            if i > 0 && self.segments[i - 1].state == seg.state {
                return Err(format!("segments {} and {i} are not coalesced", i - 1));
            }
            let modified: Vec<usize> = seg
                .state
                .servers
                .iter()
                .filter(|(_, s)| **s == CoherenceState::Modified)
                .map(|(k, _)| *k)
                .collect();
            if modified.len() > 1 {
                return Err(format!(
                    "bytes {}..{} Modified on multiple servers: {modified:?}",
                    seg.start, seg.end
                ));
            }
            let any_valid = seg.state.client != CoherenceState::Invalid
                || seg.state.first_valid_server().is_some();
            if !any_valid {
                return Err(format!("bytes {}..{} have no valid copy", seg.start, seg.end));
            }
        }
        if pos != self.size {
            return Err(format!("segments cover up to {pos}, buffer size is {}", self.size));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Public directory: mode dispatch
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Inner {
    Whole(WholeDirectory),
    Range(RangeDirectory),
}

/// Per-buffer directory tracking the state of every copy.
///
/// See the [module docs](self) for the range-coherence semantics; the
/// whole-buffer methods ([`BufferDirectory::record_device_write`],
/// [`BufferDirectory::plan_validation`], ...) remain and operate on the full
/// range.
#[derive(Debug, Clone)]
pub struct BufferDirectory {
    inner: Inner,
}

impl BufferDirectory {
    /// A fresh directory in the mode selected by `DCL_COHERENCE` (range
    /// granular unless `DCL_COHERENCE=whole`): every remote copy is invalid,
    /// the client's (conceptual, all-zero) copy is shared — exactly the
    /// initial state the paper describes.
    pub fn new(servers: impl IntoIterator<Item = usize>, size: usize) -> Self {
        Self::new_with_mode(servers, size, CoherenceMode::from_env())
    }

    /// A fresh directory with an explicit [`CoherenceMode`].
    pub fn new_with_mode(
        servers: impl IntoIterator<Item = usize>,
        size: usize,
        mode: CoherenceMode,
    ) -> Self {
        let inner = match mode {
            CoherenceMode::Whole => Inner::Whole(WholeDirectory::new(servers, size)),
            CoherenceMode::Range => Inner::Range(RangeDirectory::new(servers, size)),
        };
        BufferDirectory { inner }
    }

    /// The directory's tracking mode.
    pub fn mode(&self) -> CoherenceMode {
        match &self.inner {
            Inner::Whole(_) => CoherenceMode::Whole,
            Inner::Range(_) => CoherenceMode::Range,
        }
    }

    /// Buffer size in bytes.
    pub fn size(&self) -> usize {
        match &self.inner {
            Inner::Whole(d) => d.size,
            Inner::Range(d) => d.size,
        }
    }

    /// The whole buffer as a [`ByteRange`].
    pub fn full_range(&self) -> ByteRange {
        ByteRange::new(0, self.size())
    }

    /// Cap on the number of wire operations a [`DeltaPlan`] may schedule
    /// before collapsing to whole-buffer transfer (range mode only).
    pub fn set_fragmentation_cap(&mut self, cap: usize) {
        if let Inner::Range(d) = &mut self.inner {
            d.frag_cap = cap.max(1);
        }
    }

    /// State of the copy on `server`.  In range mode this is the
    /// whole-buffer summary: the uniform state if every range agrees,
    /// `Invalid` otherwise.
    pub fn server_state(&self, server: usize) -> CoherenceState {
        match &self.inner {
            Inner::Whole(d) => d.server_state(server),
            Inner::Range(d) => d.server_state(server),
        }
    }

    /// State of the client's copy (whole-buffer summary in range mode).
    pub fn client_state(&self) -> CoherenceState {
        match &self.inner {
            Inner::Whole(d) => d.client_state,
            Inner::Range(d) => d.client_state(),
        }
    }

    /// Servers that currently hold a valid (shared or modified) copy of the
    /// *entire* buffer.
    pub fn valid_servers(&self) -> Vec<usize> {
        match &self.inner {
            Inner::Whole(d) => d.valid_servers(),
            Inner::Range(d) => d.valid_servers(),
        }
    }

    /// Coalesced ranges of the buffer that are valid on `server`.
    pub fn valid_ranges(&self, server: usize) -> Vec<ByteRange> {
        match &self.inner {
            Inner::Whole(d) => {
                if d.server_state(server) != CoherenceState::Invalid && d.size > 0 {
                    vec![ByteRange::new(0, d.size)]
                } else {
                    Vec::new()
                }
            }
            Inner::Range(d) => d.valid_ranges(server),
        }
    }

    /// Coalesced ranges of the buffer that are stale on `server`.
    pub fn stale_ranges(&self, server: usize) -> Vec<ByteRange> {
        match &self.inner {
            Inner::Whole(d) => {
                if d.server_state(server) == CoherenceState::Invalid && d.size > 0 {
                    vec![ByteRange::new(0, d.size)]
                } else {
                    Vec::new()
                }
            }
            Inner::Range(d) => d.stale_ranges(server),
        }
    }

    /// The client's cached bytes, materialising the all-zero default.
    pub fn client_data(&self) -> Vec<u8> {
        match &self.inner {
            Inner::Whole(d) => d.client_data(),
            Inner::Range(d) => d.client_data_range(ByteRange::new(0, d.size)),
        }
    }

    /// The client's cached bytes over `range` (clamped to the buffer).
    pub fn client_data_range(&self, range: ByteRange) -> Vec<u8> {
        match &self.inner {
            Inner::Whole(d) => {
                let range = range.clamp_to(d.size);
                d.client_data()[range.start..range.end].to_vec()
            }
            Inner::Range(d) => d.client_data_range(range),
        }
    }

    /// Whether the client currently holds a valid copy of the whole buffer.
    pub fn client_valid(&self) -> bool {
        match &self.inner {
            Inner::Whole(d) => d.client_valid(),
            Inner::Range(d) => d.client_valid(),
        }
    }

    /// Number of interval-map segments (1 in whole mode) — a fragmentation
    /// diagnostic for tests and benches.
    pub fn segment_count(&self) -> usize {
        match &self.inner {
            Inner::Whole(_) => 1,
            Inner::Range(d) => d.segment_count(),
        }
    }

    /// Compute what must be transferred for `server` to hold a valid copy,
    /// as the whole-buffer protocol's [`ValidationPlan`] (kept for
    /// compatibility; [`BufferDirectory::plan_delta`] is the range-aware
    /// interface).
    pub fn plan_validation(&self, server: usize) -> ValidationPlan {
        match &self.inner {
            Inner::Whole(d) => d.plan_validation(server),
            Inner::Range(_) => {
                let plan = self.plan_delta(server);
                if plan.is_noop() {
                    ValidationPlan::AlreadyValid
                } else {
                    match plan.fetches.first() {
                        Some(f) => ValidationPlan::FetchThenUpload { source: f.source },
                        None => ValidationPlan::UploadFromClient,
                    }
                }
            }
        }
    }

    /// The minimal delta set that makes `server`'s whole copy valid.
    pub fn plan_delta(&self, server: usize) -> DeltaPlan {
        self.plan_delta_range(server, self.full_range())
    }

    /// The minimal delta set that makes `server` valid over `range` (whole
    /// mode ignores `range` and plans a full-buffer transfer unless the
    /// server is already valid).
    pub fn plan_delta_range(&self, server: usize, range: ByteRange) -> DeltaPlan {
        match &self.inner {
            Inner::Whole(d) => {
                if range.clamp_to(d.size).is_empty() && d.size > 0 {
                    DeltaPlan::noop()
                } else {
                    d.plan_delta(server)
                }
            }
            Inner::Range(d) => d.plan_delta(server, range),
        }
    }

    /// Whether a host write of `len` bytes at `offset` must validate the
    /// target server *before* the write reaches it.  The whole-buffer
    /// oracle marks the target fully valid after any write, so a partial
    /// write to a stale copy has to bring the untouched remainder up to
    /// date first; the range directory tracks the remainder precisely and
    /// never asks for a pre-validation.
    pub fn needs_write_validation(&self, server: usize, offset: usize, len: usize) -> bool {
        match &self.inner {
            Inner::Whole(d) => {
                len > 0
                    && !(offset == 0 && len >= d.size)
                    && d.server_state(server) == CoherenceState::Invalid
            }
            Inner::Range(_) => false,
        }
    }

    /// Record that the client downloaded a full valid copy from a server:
    /// both the source copy and the client copy are now shared.
    pub fn record_client_fetch(&mut self, source: usize, data: Vec<u8>) {
        match &mut self.inner {
            Inner::Whole(d) => d.record_client_fetch(source, data),
            Inner::Range(d) => {
                let full = ByteRange::new(0, d.size);
                d.record_client_fetch(source, full, &[full], &data);
            }
        }
    }

    /// Record a [`RangeFetch`]: `data` holds `span` downloaded from
    /// `source`; the `apply` sub-ranges of it are merged into the client's
    /// copy and become shared with the source.
    pub fn record_client_fetch_ranges(
        &mut self,
        source: usize,
        span: ByteRange,
        apply: &[ByteRange],
        data: &[u8],
    ) {
        match &mut self.inner {
            Inner::Whole(d) => {
                // The whole-mode planner only emits full-span fetches.
                if span.start == 0 && span.end == d.size {
                    d.record_client_fetch(source, data.to_vec());
                }
            }
            Inner::Range(d) => d.record_client_fetch(source, span, apply, data),
        }
    }

    /// Record that the client uploaded its valid copy to `server`.
    pub fn record_upload(&mut self, server: usize) {
        match &mut self.inner {
            Inner::Whole(d) => d.record_upload(server),
            Inner::Range(d) => {
                let full = ByteRange::new(0, d.size);
                d.record_upload(server, full);
            }
        }
    }

    /// Record that the client uploaded `range` of its copy to `server`.
    pub fn record_upload_range(&mut self, server: usize, range: ByteRange) {
        match &mut self.inner {
            Inner::Whole(d) => d.record_upload(server),
            Inner::Range(d) => d.record_upload(server, range),
        }
    }

    /// Record a host-initiated write (`clEnqueueWriteBuffer` to `server`):
    /// the written range updates the client copy and becomes shared between
    /// client and target; every other copy of *that range* is invalidated
    /// (the whole buffer in whole mode).  Zero-length writes are no-ops.
    pub fn record_host_write(&mut self, server: usize, offset: usize, data: &[u8]) {
        match &mut self.inner {
            Inner::Whole(d) => d.record_host_write(server, offset, data),
            Inner::Range(d) => d.record_host_write(server, offset, data),
        }
    }

    /// Record that a device on `server` (potentially) wrote the whole
    /// buffer: that copy becomes modified, every other copy — including the
    /// client's — becomes invalid.
    pub fn record_device_write(&mut self, server: usize) {
        match &mut self.inner {
            Inner::Whole(d) => d.record_device_write(server),
            Inner::Range(d) => {
                let full = ByteRange::new(0, d.size);
                d.record_device_write(server, full);
            }
        }
    }

    /// Record that a device on `server` wrote only `range` (a kernel launch
    /// with a declared access slice).  Whole mode conservatively widens this
    /// to the full buffer.  An empty slice dirties nothing in either mode —
    /// widening it would mark a copy Modified that was never validated.
    pub fn record_device_write_range(&mut self, server: usize, range: ByteRange) {
        match &mut self.inner {
            Inner::Whole(d) => {
                if !range.clamp_to(d.size).is_empty() {
                    d.record_device_write(server);
                }
            }
            Inner::Range(d) => d.record_device_write(server, range),
        }
    }

    /// Record that the client read the buffer back from `server`
    /// (`clEnqueueReadBuffer`): the read bytes refresh the client's copy
    /// over the ranges the server validly owns, and a Modified owner is
    /// demoted to Shared there.  (Whole mode only caches full-buffer
    /// reads.)
    pub fn record_host_read(&mut self, server: usize, offset: usize, data: &[u8]) {
        match &mut self.inner {
            Inner::Whole(d) => d.record_host_read(server, offset, data),
            Inner::Range(d) => d.record_host_read(server, offset, data),
        }
    }

    /// Register a server that joined the directory after creation (e.g. a
    /// dynamically connected server, Section III-C).
    pub fn add_server(&mut self, server: usize) {
        match &mut self.inner {
            Inner::Whole(d) => d.add_server(server),
            Inner::Range(d) => d.add_server(server),
        }
    }

    /// Mark `server`'s copy invalid — the daemon crashed or its remote
    /// memory object was re-created empty after a reconnect.  Returns
    /// `true` if data was lost: the server held the *only* valid copy of
    /// some range, which degrades to the client's last cached bytes (or
    /// zeroes).
    ///
    /// Used by the client's connection supervisor: after re-creating a
    /// buffer on a fresh daemon, the next command that reads it there plans
    /// a normal re-validation from the surviving copies — in range mode
    /// moving only the ranges that are actually stale there.
    pub fn invalidate_server(&mut self, server: usize) -> bool {
        match &mut self.inner {
            Inner::Whole(d) => d.invalidate_server(server),
            Inner::Range(d) => d.invalidate_server(server),
        }
    }

    /// Check the directory's structural invariants (used by the property
    /// suite): segments sorted, contiguous, covering the buffer and
    /// coalesced; no byte Modified on more than one server; no byte
    /// Modified on a server while the client is valid (whole mode); every
    /// byte has at least one valid copy.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        match &self.inner {
            Inner::Whole(d) => d.check_invariants(),
            Inner::Range(d) => d.check_invariants(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ----- whole-buffer semantics (both modes must satisfy these) ----------

    fn both_modes(f: impl Fn(CoherenceMode)) {
        f(CoherenceMode::Range);
        f(CoherenceMode::Whole);
    }

    #[test]
    fn fresh_directory_uploads_zeroes_from_client() {
        both_modes(|mode| {
            let dir = BufferDirectory::new_with_mode([0, 1], 16, mode);
            assert_eq!(dir.server_state(0), CoherenceState::Invalid);
            assert_eq!(dir.client_state(), CoherenceState::Shared);
            assert_eq!(dir.plan_validation(0), ValidationPlan::UploadFromClient);
            assert_eq!(dir.client_data(), vec![0u8; 16]);
            assert!(dir.valid_servers().is_empty());
            dir.check_invariants().unwrap();
        });
    }

    #[test]
    fn host_write_invalidates_other_servers() {
        both_modes(|mode| {
            let mut dir = BufferDirectory::new_with_mode([0, 1], 4, mode);
            dir.record_host_write(0, 0, &[1, 2, 3, 4]);
            assert_eq!(dir.server_state(0), CoherenceState::Shared);
            assert_eq!(dir.server_state(1), CoherenceState::Invalid);
            assert_eq!(dir.client_data(), vec![1, 2, 3, 4]);
            assert_eq!(dir.plan_validation(0), ValidationPlan::AlreadyValid);
            assert_eq!(dir.plan_validation(1), ValidationPlan::UploadFromClient);
            dir.check_invariants().unwrap();
        });
    }

    #[test]
    fn partial_host_write_merges_into_client_copy() {
        both_modes(|mode| {
            let mut dir = BufferDirectory::new_with_mode([0], 8, mode);
            dir.record_host_write(0, 0, &[1, 1, 1, 1, 1, 1, 1, 1]);
            dir.record_host_write(0, 4, &[2, 2, 2, 2]);
            assert_eq!(dir.client_data(), vec![1, 1, 1, 1, 2, 2, 2, 2]);
        });
    }

    #[test]
    fn device_write_requires_fetch_for_other_servers() {
        both_modes(|mode| {
            let mut dir = BufferDirectory::new_with_mode([0, 1], 8, mode);
            dir.record_host_write(0, 0, &[7; 8]);
            dir.record_device_write(0);
            assert_eq!(dir.server_state(0), CoherenceState::Modified);
            assert_eq!(dir.client_state(), CoherenceState::Invalid);
            assert_eq!(dir.plan_validation(1), ValidationPlan::FetchThenUpload { source: 0 });
            // After the fetch + upload, both servers and the client share.
            dir.record_client_fetch(0, vec![9; 8]);
            dir.record_upload(1);
            assert_eq!(dir.server_state(0), CoherenceState::Shared);
            assert_eq!(dir.server_state(1), CoherenceState::Shared);
            assert_eq!(dir.client_state(), CoherenceState::Shared);
            assert_eq!(dir.client_data(), vec![9; 8]);
            assert_eq!(dir.valid_servers(), vec![0, 1]);
            dir.check_invariants().unwrap();
        });
    }

    #[test]
    fn host_read_demotes_modified_to_shared() {
        both_modes(|mode| {
            let mut dir = BufferDirectory::new_with_mode([0, 1], 4, mode);
            dir.record_device_write(1);
            dir.record_host_read(1, 0, &[5, 6, 7, 8]);
            assert_eq!(dir.server_state(1), CoherenceState::Shared);
            assert_eq!(dir.client_state(), CoherenceState::Shared);
            assert_eq!(dir.client_data(), vec![5, 6, 7, 8]);
        });
    }

    #[test]
    fn partial_read_does_not_mark_whole_client_valid() {
        both_modes(|mode| {
            let mut dir = BufferDirectory::new_with_mode([0], 8, mode);
            dir.record_device_write(0);
            dir.record_host_read(0, 0, &[1, 2]);
            assert_eq!(dir.client_state(), CoherenceState::Invalid);
        });
    }

    #[test]
    fn add_server_starts_invalid() {
        both_modes(|mode| {
            let mut dir = BufferDirectory::new_with_mode([0], 4, mode);
            dir.add_server(3);
            assert_eq!(dir.server_state(3), CoherenceState::Invalid);
        });
    }

    // ----- interval-map edge cases -----------------------------------------

    #[test]
    fn zero_length_writes_are_noops() {
        both_modes(|mode| {
            let mut dir = BufferDirectory::new_with_mode([0, 1], 8, mode);
            dir.record_host_write(0, 0, &[5; 8]);
            let before = dir.clone();
            dir.record_host_write(1, 4, &[]);
            assert_eq!(dir.server_state(0), before.server_state(0));
            assert_eq!(dir.server_state(1), before.server_state(1));
            assert_eq!(dir.client_data(), before.client_data());
            assert_eq!(dir.segment_count(), before.segment_count());
            dir.record_device_write_range(0, ByteRange::new(4, 4));
            if mode == CoherenceMode::Range {
                assert_eq!(dir.client_state(), CoherenceState::Shared);
            }
            dir.check_invariants().unwrap();
        });
    }

    #[test]
    fn adjacent_dirty_ranges_coalesce() {
        let mut dir = BufferDirectory::new_with_mode([0, 1], 64, CoherenceMode::Range);
        dir.record_host_write(0, 0, &[1; 16]);
        dir.record_host_write(0, 16, &[2; 16]);
        dir.record_host_write(0, 32, &[3; 32]);
        // Three adjacent writes with identical state outcomes: one segment.
        assert_eq!(dir.segment_count(), 1);
        assert_eq!(dir.stale_ranges(1), vec![ByteRange::new(0, 64)]);
        let plan = dir.plan_delta(1);
        assert_eq!(plan.uploads, vec![ByteRange::new(0, 64)]);
        assert!(plan.fetches.is_empty());
        dir.check_invariants().unwrap();
    }

    #[test]
    fn overlapping_writes_merge_and_coalesce() {
        let mut dir = BufferDirectory::new_with_mode([0, 1], 32, CoherenceMode::Range);
        dir.record_host_write(0, 4, &[1; 12]); // [4, 16)
        dir.record_host_write(0, 8, &[2; 16]); // [8, 24) overlaps
        assert_eq!(dir.stale_ranges(1), vec![ByteRange::new(0, 32)]);
        // Server 0 is valid exactly where writes landed, stale outside.
        assert_eq!(dir.valid_ranges(0), vec![ByteRange::new(4, 24)]);
        let mut expect = vec![0u8; 32];
        expect[4..16].fill(1);
        expect[8..24].fill(2);
        assert_eq!(dir.client_data(), expect);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn device_write_spanning_partition_boundary() {
        // Two servers each own half; a declared device write then spans the
        // boundary.
        let mut dir = BufferDirectory::new_with_mode([0, 1], 32, CoherenceMode::Range);
        dir.record_host_write(0, 0, &[1; 32]);
        dir.record_upload(1);
        dir.record_device_write_range(0, ByteRange::new(0, 16));
        dir.record_device_write_range(1, ByteRange::new(16, 32));
        assert_eq!(dir.valid_ranges(0), vec![ByteRange::new(0, 16)]);
        assert_eq!(dir.valid_ranges(1), vec![ByteRange::new(16, 32)]);
        dir.check_invariants().unwrap();
        // Now server 1 writes across the boundary: [12, 20).
        dir.record_device_write_range(1, ByteRange::new(12, 20));
        assert_eq!(dir.valid_ranges(0), vec![ByteRange::new(0, 12)]);
        assert_eq!(dir.valid_ranges(1), vec![ByteRange::new(12, 32)]);
        dir.check_invariants().unwrap();
        // Validating server 0 moves only the 20 stale bytes, fetched from
        // their Modified owner.
        let plan = dir.plan_delta(0);
        assert_eq!(plan.uploads, vec![ByteRange::new(12, 32)]);
        assert_eq!(plan.fetches.len(), 1);
        assert_eq!(plan.fetches[0].source, 1);
        assert_eq!(plan.fetches[0].span, ByteRange::new(12, 32));
        assert_eq!(plan.upload_bytes(), 20);
    }

    #[test]
    fn delta_plan_moves_only_stale_ranges() {
        let mut dir = BufferDirectory::new_with_mode([0, 1], 100, CoherenceMode::Range);
        dir.record_host_write(0, 0, &[1; 100]);
        dir.record_upload(1); // both servers fully valid
        dir.record_host_write(0, 40, &[9; 10]); // dirty 10% towards server 0
        let plan = dir.plan_delta(1);
        assert!(plan.fetches.is_empty(), "client is valid, no fetch needed");
        assert_eq!(plan.uploads, vec![ByteRange::new(40, 50)]);
        assert_eq!(plan.upload_bytes(), 10);
        assert!(!plan.collapsed);
    }

    #[test]
    fn fragmentation_cap_collapses_to_whole_buffer() {
        let mut dir = BufferDirectory::new_with_mode([0, 1], 256, CoherenceMode::Range);
        dir.record_host_write(0, 0, &[1; 256]);
        dir.record_upload(1);
        dir.set_fragmentation_cap(4);
        // Dirty every other 2-byte chunk: 64 fragments towards server 1.
        for i in 0..64 {
            dir.record_host_write(0, i * 4, &[9, 9]);
        }
        assert!(dir.segment_count() > 4);
        let plan = dir.plan_delta(1);
        assert!(plan.collapsed);
        assert_eq!(plan.uploads, vec![ByteRange::new(0, 256)]);
        assert!(plan.fetches.is_empty(), "client holds the whole buffer");
        // Executing the collapsed plan validates the server in one go.
        dir.record_upload_range(1, ByteRange::new(0, 256));
        assert!(dir.plan_delta(1).is_noop());
        assert_eq!(dir.segment_count(), 1);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn collapsed_plan_fetches_spans_but_applies_only_valid_subranges() {
        // Device writes fragment server 0's ownership; the collapsed plan
        // must fetch a span from server 0 yet apply only the sub-ranges
        // server 0 validly owns, and still upload the whole buffer.
        let mut dir = BufferDirectory::new_with_mode([0, 1], 64, CoherenceMode::Range);
        dir.record_host_write(0, 0, &[1; 64]);
        dir.record_upload(1);
        dir.set_fragmentation_cap(2);
        for i in 0..8 {
            dir.record_device_write_range(0, ByteRange::new(i * 8, i * 8 + 4));
        }
        let plan = dir.plan_delta(1);
        assert!(plan.collapsed);
        assert_eq!(plan.uploads, vec![ByteRange::new(0, 64)]);
        assert_eq!(plan.fetches.len(), 1);
        let fetch = &plan.fetches[0];
        assert_eq!(fetch.source, 0);
        assert_eq!(fetch.span, ByteRange::new(0, 60));
        assert_eq!(fetch.apply.len(), 8);
        for (i, r) in fetch.apply.iter().enumerate() {
            assert_eq!(*r, ByteRange::new(i * 8, i * 8 + 4));
        }
    }

    #[test]
    fn partitioned_buffer_keeps_owners_valid_without_transfers() {
        // Each server repeatedly writes its own slice: no plan ever moves
        // bytes for the owner's own launches.
        let mut dir = BufferDirectory::new_with_mode([0, 1], 128, CoherenceMode::Range);
        dir.record_host_write(0, 0, &[0; 128]);
        dir.record_upload(1);
        for _ in 0..10 {
            assert!(dir.plan_delta_range(0, ByteRange::new(0, 64)).is_noop());
            dir.record_device_write_range(0, ByteRange::new(0, 64));
            assert!(dir.plan_delta_range(1, ByteRange::new(64, 128)).is_noop());
            dir.record_device_write_range(1, ByteRange::new(64, 128));
            dir.check_invariants().unwrap();
        }
        assert_eq!(dir.valid_ranges(0), vec![ByteRange::new(0, 64)]);
        assert_eq!(dir.valid_ranges(1), vec![ByteRange::new(64, 128)]);
    }

    #[test]
    fn invalidate_server_degrades_only_lost_ranges() {
        let mut dir = BufferDirectory::new_with_mode([0, 1], 32, CoherenceMode::Range);
        dir.record_host_write(0, 0, &[3; 32]);
        dir.record_upload(1);
        // Server 0 exclusively owns [0, 16) after a device write.
        dir.record_device_write_range(0, ByteRange::new(0, 16));
        assert!(dir.invalidate_server(0), "its half is lost");
        // The surviving half is still valid on server 1; the lost half
        // degraded to the stale client copy.
        assert_eq!(dir.valid_ranges(1), vec![ByteRange::new(16, 32)]);
        dir.check_invariants().unwrap();
        let plan = dir.plan_delta(1);
        assert_eq!(plan.uploads, vec![ByteRange::new(0, 16)]);
        assert!(plan.fetches.is_empty());
    }

    #[test]
    fn coherence_mode_parses_like_the_interp_env() {
        assert_eq!(CoherenceMode::parse(None), CoherenceMode::Range);
        assert_eq!(CoherenceMode::parse(Some("whole")), CoherenceMode::Whole);
        assert_eq!(CoherenceMode::parse(Some("WHOLE")), CoherenceMode::Whole);
        assert_eq!(CoherenceMode::parse(Some("range")), CoherenceMode::Range);
        assert_eq!(CoherenceMode::parse(Some("garbage")), CoherenceMode::Range);
    }

    #[test]
    fn range_math_handles_degenerate_inputs() {
        assert!(ByteRange::new(5, 3).is_empty());
        assert_eq!(ByteRange::new(5, 3).len(), 0);
        assert_eq!(ByteRange::new(0, 10).intersect(ByteRange::new(10, 20)), None);
        assert_eq!(
            ByteRange::new(0, 10).intersect(ByteRange::new(5, 20)),
            Some(ByteRange::new(5, 10))
        );
        assert_eq!(ByteRange::new(4, 99).clamp_to(8), ByteRange::new(4, 8));
    }
}
