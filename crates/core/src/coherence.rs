//! Directory-based MSI coherence for distributed memory objects.
//!
//! Section III-D of the paper: remote memory objects on the servers are
//! viewed as cached copies of the client's memory object stub.  The client
//! maintains, per buffer, a state for each server copy plus its own state
//! and a *directory* (the list of servers owning a valid copy).  States
//! follow the MSI protocol:
//!
//! * a copy is **Modified** after the owning server's device wrote it (any
//!   kernel launch that takes the buffer as an argument is conservatively
//!   treated as a write),
//! * a copy is **Shared** after a clean upload/download,
//! * every other copy is **Invalid**.
//!
//! The [`BufferDirectory`] only records state and answers "what do I have to
//! transfer?"; the actual uploads and downloads are performed by the client
//! driver, which charges their modelled cost to the data-transfer phase.

use std::collections::HashMap;

/// Coherence state of one cached copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceState {
    /// The copy was written by its owner and is the only valid one.
    Modified,
    /// The copy is valid and identical to every other shared copy.
    Shared,
    /// The copy is stale.
    Invalid,
}

/// The transfers the client must perform so that a given server holds a
/// valid copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationPlan {
    /// The server already holds a valid copy; nothing to do.
    AlreadyValid,
    /// Upload the client's (valid) copy to the server.
    UploadFromClient,
    /// Download a valid copy from `source` first, then upload it to the
    /// target server.
    FetchThenUpload {
        /// Server that owns a valid copy.
        source: usize,
    },
}

/// Per-buffer directory tracking the state of every copy.
#[derive(Debug, Clone)]
pub struct BufferDirectory {
    /// Coherence state of each server's remote memory object.
    per_server: HashMap<usize, CoherenceState>,
    /// Coherence state of the client's own (host-memory) copy.
    client_state: CoherenceState,
    /// The client's cached data, if any (`None` means "all zeroes", the
    /// state of a freshly created buffer).
    client_copy: Option<Vec<u8>>,
    /// Buffer size in bytes.
    size: usize,
}

impl BufferDirectory {
    /// A fresh directory: every remote copy is invalid, the client's
    /// (conceptual, all-zero) copy is shared — exactly the initial state the
    /// paper describes.
    pub fn new(servers: impl IntoIterator<Item = usize>, size: usize) -> Self {
        BufferDirectory {
            per_server: servers.into_iter().map(|s| (s, CoherenceState::Invalid)).collect(),
            client_state: CoherenceState::Shared,
            client_copy: None,
            size,
        }
    }

    /// Buffer size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// State of the copy on `server`.
    pub fn server_state(&self, server: usize) -> CoherenceState {
        self.per_server.get(&server).copied().unwrap_or(CoherenceState::Invalid)
    }

    /// State of the client's copy.
    pub fn client_state(&self) -> CoherenceState {
        self.client_state
    }

    /// Servers that currently hold a valid (shared or modified) copy.
    pub fn valid_servers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .per_server
            .iter()
            .filter(|(_, s)| **s != CoherenceState::Invalid)
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v
    }

    /// The client's cached bytes, materialising the all-zero default.
    pub fn client_data(&self) -> Vec<u8> {
        self.client_copy.clone().unwrap_or_else(|| vec![0u8; self.size])
    }

    /// Whether the client currently holds a valid copy.
    pub fn client_valid(&self) -> bool {
        self.client_state != CoherenceState::Invalid
    }

    /// Compute what must be transferred for `server` to hold a valid copy.
    pub fn plan_validation(&self, server: usize) -> ValidationPlan {
        if self.server_state(server) != CoherenceState::Invalid {
            return ValidationPlan::AlreadyValid;
        }
        if self.client_valid() {
            return ValidationPlan::UploadFromClient;
        }
        match self.valid_servers().first() {
            Some(source) => ValidationPlan::FetchThenUpload { source: *source },
            // Nobody has valid data (cannot happen through the public API,
            // but stay safe): treat the zero-filled client copy as valid.
            None => ValidationPlan::UploadFromClient,
        }
    }

    /// Record that the client downloaded a valid copy from a server: both
    /// the source copy and the client copy are now shared.
    pub fn record_client_fetch(&mut self, source: usize, data: Vec<u8>) {
        self.client_copy = Some(data);
        self.client_state = CoherenceState::Shared;
        if let Some(s) = self.per_server.get_mut(&source) {
            *s = CoherenceState::Shared;
        }
    }

    /// Record that the client uploaded its valid copy to `server`.
    pub fn record_upload(&mut self, server: usize) {
        self.per_server.insert(server, CoherenceState::Shared);
        if self.client_state == CoherenceState::Invalid {
            self.client_state = CoherenceState::Shared;
        }
    }

    /// Record a host-initiated write (`clEnqueueWriteBuffer` to `server`):
    /// the written range updates the client copy, the target becomes shared,
    /// and every other copy is invalidated.
    pub fn record_host_write(&mut self, server: usize, offset: usize, data: &[u8]) {
        let mut copy = self.client_data();
        let end = (offset + data.len()).min(copy.len());
        if offset < copy.len() {
            copy[offset..end].copy_from_slice(&data[..end - offset]);
        }
        self.client_copy = Some(copy);
        self.client_state = CoherenceState::Shared;
        for (s, state) in self.per_server.iter_mut() {
            *state = if *s == server { CoherenceState::Shared } else { CoherenceState::Invalid };
        }
    }

    /// Record that a device on `server` (potentially) wrote the buffer: that
    /// copy becomes modified, every other copy — including the client's —
    /// becomes invalid.
    pub fn record_device_write(&mut self, server: usize) {
        for (s, state) in self.per_server.iter_mut() {
            *state = if *s == server { CoherenceState::Modified } else { CoherenceState::Invalid };
        }
        self.client_state = CoherenceState::Invalid;
        self.client_copy = None;
    }

    /// Record that the client read the buffer back from `server`
    /// (`clEnqueueReadBuffer`): the owner's copy and the client's copy are
    /// now shared; the client caches the full-buffer data when the read
    /// covered the whole buffer.
    pub fn record_host_read(&mut self, server: usize, offset: usize, data: &[u8]) {
        // A read from a server that holds no valid copy cannot make the
        // client's copy valid (the client driver always validates the server
        // first, so this is purely defensive).
        if self.server_state(server) == CoherenceState::Invalid {
            return;
        }
        if offset == 0 && data.len() == self.size {
            self.client_copy = Some(data.to_vec());
            self.client_state = CoherenceState::Shared;
        }
        if let Some(s) = self.per_server.get_mut(&server) {
            if *s == CoherenceState::Modified {
                *s = CoherenceState::Shared;
            }
        }
    }

    /// Register a server that joined the directory after creation (e.g. a
    /// dynamically connected server, Section III-C).
    pub fn add_server(&mut self, server: usize) {
        self.per_server.entry(server).or_insert(CoherenceState::Invalid);
    }

    /// Mark `server`'s copy invalid — the daemon crashed or its remote
    /// memory object was re-created empty after a reconnect.  Returns
    /// `true` if data was lost: the server held the *only* valid copy, so
    /// the buffer degrades to the client's last cached bytes (or zeroes).
    ///
    /// Used by the client's connection supervisor: after re-creating a
    /// buffer on a fresh daemon, the next command that reads it there plans
    /// a normal re-validation ([`ValidationPlan::UploadFromClient`] /
    /// [`ValidationPlan::FetchThenUpload`]) from a surviving copy.
    pub fn invalidate_server(&mut self, server: usize) -> bool {
        let was_only_valid = self.server_state(server) != CoherenceState::Invalid
            && !self.client_valid()
            && self.valid_servers() == [server];
        self.per_server.insert(server, CoherenceState::Invalid);
        if was_only_valid {
            // Degrade to the stale client copy so the buffer stays usable;
            // callers that care can surface the loss to the application.
            self.client_state = CoherenceState::Shared;
        }
        was_only_valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_directory_uploads_zeroes_from_client() {
        let dir = BufferDirectory::new([0, 1], 16);
        assert_eq!(dir.server_state(0), CoherenceState::Invalid);
        assert_eq!(dir.client_state(), CoherenceState::Shared);
        assert_eq!(dir.plan_validation(0), ValidationPlan::UploadFromClient);
        assert_eq!(dir.client_data(), vec![0u8; 16]);
        assert!(dir.valid_servers().is_empty());
    }

    #[test]
    fn host_write_invalidates_other_servers() {
        let mut dir = BufferDirectory::new([0, 1], 4);
        dir.record_host_write(0, 0, &[1, 2, 3, 4]);
        assert_eq!(dir.server_state(0), CoherenceState::Shared);
        assert_eq!(dir.server_state(1), CoherenceState::Invalid);
        assert_eq!(dir.client_data(), vec![1, 2, 3, 4]);
        assert_eq!(dir.plan_validation(0), ValidationPlan::AlreadyValid);
        assert_eq!(dir.plan_validation(1), ValidationPlan::UploadFromClient);
    }

    #[test]
    fn partial_host_write_merges_into_client_copy() {
        let mut dir = BufferDirectory::new([0], 8);
        dir.record_host_write(0, 0, &[1, 1, 1, 1, 1, 1, 1, 1]);
        dir.record_host_write(0, 4, &[2, 2, 2, 2]);
        assert_eq!(dir.client_data(), vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn device_write_requires_fetch_for_other_servers() {
        let mut dir = BufferDirectory::new([0, 1], 8);
        dir.record_host_write(0, 0, &[7; 8]);
        dir.record_device_write(0);
        assert_eq!(dir.server_state(0), CoherenceState::Modified);
        assert_eq!(dir.client_state(), CoherenceState::Invalid);
        assert_eq!(dir.plan_validation(1), ValidationPlan::FetchThenUpload { source: 0 });
        // After the fetch + upload, both servers and the client share.
        dir.record_client_fetch(0, vec![9; 8]);
        dir.record_upload(1);
        assert_eq!(dir.server_state(0), CoherenceState::Shared);
        assert_eq!(dir.server_state(1), CoherenceState::Shared);
        assert_eq!(dir.client_state(), CoherenceState::Shared);
        assert_eq!(dir.client_data(), vec![9; 8]);
        assert_eq!(dir.valid_servers(), vec![0, 1]);
    }

    #[test]
    fn host_read_demotes_modified_to_shared() {
        let mut dir = BufferDirectory::new([0, 1], 4);
        dir.record_device_write(1);
        dir.record_host_read(1, 0, &[5, 6, 7, 8]);
        assert_eq!(dir.server_state(1), CoherenceState::Shared);
        assert_eq!(dir.client_state(), CoherenceState::Shared);
        assert_eq!(dir.client_data(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn partial_read_does_not_mark_client_valid() {
        let mut dir = BufferDirectory::new([0], 8);
        dir.record_device_write(0);
        dir.record_host_read(0, 0, &[1, 2]);
        assert_eq!(dir.client_state(), CoherenceState::Invalid);
    }

    #[test]
    fn add_server_starts_invalid() {
        let mut dir = BufferDirectory::new([0], 4);
        dir.add_server(3);
        assert_eq!(dir.server_state(3), CoherenceState::Invalid);
    }
}
