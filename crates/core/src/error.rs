//! Error type of the dOpenCL middleware.

use std::fmt;

/// Result alias for middleware operations.
pub type Result<T> = std::result::Result<T, DclError>;

/// Errors surfaced by the dOpenCL client driver and daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum DclError {
    /// An OpenCL-level error forwarded from a server's native runtime.
    Cl(vocl::ClError),
    /// A communication error between client and servers.
    Network(gcf::GcfError),
    /// The referenced server is not connected (or was disconnected).
    ServerUnavailable(String),
    /// A remote object id was not found on the server (stale stub).
    UnknownObject(String),
    /// A protocol-level problem (malformed message, unexpected response).
    Protocol(String),
    /// A configuration file could not be parsed.
    Config(String),
    /// The device manager rejected an assignment request.
    AssignmentRejected(String),
    /// An invalid argument was passed to the middleware API.
    InvalidArgument(String),
    /// An object handle outlived its [`crate::Client`]: the operation was
    /// issued after the last `Client` clone was dropped.
    ClientDropped,
}

impl fmt::Display for DclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DclError::Cl(e) => write!(f, "OpenCL error: {e}"),
            DclError::Network(e) => write!(f, "network error: {e}"),
            DclError::ServerUnavailable(s) => write!(f, "server unavailable: {s}"),
            DclError::UnknownObject(s) => write!(f, "unknown remote object: {s}"),
            DclError::Protocol(s) => write!(f, "protocol error: {s}"),
            DclError::Config(s) => write!(f, "configuration error: {s}"),
            DclError::AssignmentRejected(s) => write!(f, "device assignment rejected: {s}"),
            DclError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            DclError::ClientDropped => {
                write!(f, "the client driver backing this handle has been dropped")
            }
        }
    }
}

impl std::error::Error for DclError {}

impl From<vocl::ClError> for DclError {
    fn from(e: vocl::ClError) -> Self {
        DclError::Cl(e)
    }
}

impl From<gcf::GcfError> for DclError {
    fn from(e: gcf::GcfError) -> Self {
        DclError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DclError = vocl::ClError::DeviceNotFound.into();
        assert!(e.to_string().contains("CL_DEVICE_NOT_FOUND"));
        let e: DclError = gcf::GcfError::Timeout("x".into()).into();
        assert!(e.to_string().contains("network error"));
        assert!(DclError::Config("bad file".into()).to_string().contains("configuration"));
    }
}
