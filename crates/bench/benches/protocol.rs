//! Micro-benchmarks of the dOpenCL wire protocol: message encode/decode cost
//! and the round-trip latency of a forwarded API call over the in-process
//! transport (the fixed per-call overhead the paper attributes to
//! message-based communication).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dopencl::LocalCluster;
use gcf::LinkModel;
use vocl::Platform;

fn protocol_benches(c: &mut Criterion) {
    // Encode + decode a representative request.
    c.bench_function("protocol/encode_decode_enqueue_nd_range", |b| {
        use dopencl::protocol::{Request, WireNdRange};
        let request = Request::EnqueueNdRange {
            queue_id: 2,
            kernel_id: 5,
            event_id: 9,
            range: WireNdRange(vocl::NdRange::two_d(4800, 3200)),
            wait_events: vec![7, 8],
        };
        b.iter(|| {
            let bytes = dopencl::protocol::encode_request(&request);
            let back = dopencl::protocol::decode_request(&bytes).unwrap();
            std::hint::black_box(back);
        });
    });

    // Full client→daemon→client round trip of a cheap API call.
    let mut cluster = LocalCluster::new(LinkModel::ideal());
    cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    let client = cluster.client("bench").unwrap();
    let devices = client.devices();
    c.bench_function("protocol/create_release_context_round_trip", |b| {
        b.iter_batched(
            || devices.clone(),
            |devices| {
                let context = dopencl::Context::new(&client, &devices).unwrap();
                std::hint::black_box(context);
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, protocol_benches);
criterion_main!(benches);
