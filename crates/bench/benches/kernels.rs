//! Micro-benchmarks of the two kernel execution paths of the virtual OpenCL
//! runtime: the OpenCL C interpreter vs a registered built-in native kernel,
//! on the same Mandelbrot tile.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oclc::{BufferBinding, KernelArgValue, NdRange};
use workloads::mandelbrot::{self, MandelbrotParams, BUILTIN_KERNEL, KERNEL_SOURCE};

fn kernel_args(params: &MandelbrotParams) -> Vec<KernelArgValue> {
    vec![
        KernelArgValue::Buffer(0),
        KernelArgValue::Scalar(oclc::Value::uint(params.width as u64)),
        KernelArgValue::Scalar(oclc::Value::uint(params.height as u64)),
        KernelArgValue::Scalar(oclc::Value::float(params.x_min as f32)),
        KernelArgValue::Scalar(oclc::Value::float(params.y_min as f32)),
        KernelArgValue::Scalar(oclc::Value::float(params.dx() as f32)),
        KernelArgValue::Scalar(oclc::Value::float(params.dy() as f32)),
        KernelArgValue::Scalar(oclc::Value::uint(0)),
        KernelArgValue::Scalar(oclc::Value::uint(params.max_iter as u64)),
    ]
}

fn kernel_benches(c: &mut Criterion) {
    mandelbrot::register_built_in_kernels();
    let params =
        MandelbrotParams { width: 64, height: 64, max_iter: 128, ..MandelbrotParams::small() };
    let pixels = (params.width * params.height) as u64;
    let args = kernel_args(&params);

    let mut group = c.benchmark_group("kernels/mandelbrot_64x64");
    group.throughput(Throughput::Elements(pixels));

    group.bench_function("tree_walker", |b| {
        let program = oclc::Program::build(KERNEL_SOURCE).unwrap();
        let kernel = program.kernel("mandelbrot_rows").unwrap();
        let mut out = vec![0u8; params.pixels() * 4];
        b.iter(|| {
            let mut bindings = vec![BufferBinding::new(&mut out)];
            let counters = kernel
                .execute_tree(&NdRange::two_d(params.width, params.height), &args, &mut bindings)
                .unwrap();
            std::hint::black_box(counters.work_items);
        });
    });

    group.bench_function("bytecode_vm", |b| {
        let program = oclc::Program::build(KERNEL_SOURCE).unwrap();
        let kernel = program.kernel("mandelbrot_rows").unwrap();
        let mut out = vec![0u8; params.pixels() * 4];
        b.iter(|| {
            let mut bindings = vec![BufferBinding::new(&mut out)];
            let counters = kernel
                .execute_vm_with_threads(
                    &NdRange::two_d(params.width, params.height),
                    &args,
                    &mut bindings,
                    1,
                )
                .unwrap();
            std::hint::black_box(counters.work_items);
        });
    });

    group.bench_function("built_in_native", |b| {
        let f = vocl::built_in_kernel(BUILTIN_KERNEL).unwrap();
        let mut out = vec![0u8; params.pixels() * 4];
        b.iter(|| {
            let mut bindings = vec![BufferBinding::new(&mut out)];
            let counters =
                f(&NdRange::two_d(params.width, params.height), &args, &mut bindings).unwrap();
            std::hint::black_box(counters.work_items);
        });
    });
    group.finish();
}

criterion_group!(benches, kernel_benches);
criterion_main!(benches);
