//! Micro-benchmarks of the MSI coherence protocol: the cost of moving a
//! shared buffer between devices on different servers through the client
//! (the write-invalidate path of Section III-D).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dopencl::{Context, LocalCluster, NdRange, Value};
use gcf::LinkModel;
use vocl::Platform;

fn coherence_benches(c: &mut Criterion) {
    let mut cluster = LocalCluster::new(LinkModel::ideal());
    cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    cluster.add_node("node1", &Platform::test_platform(1)).unwrap();
    let client = cluster.client("coherence-bench").unwrap();
    let devices = client.devices();
    let context = Context::new(&client, &devices).unwrap();
    let q0 = context.create_command_queue(&devices[0]).unwrap();
    let q1 = context.create_command_queue(&devices[1]).unwrap();
    let size = 1 << 20;
    let buffer = context.create_buffer(size).unwrap();
    let program = context
        .create_program_with_source("__kernel void touch(__global int* a) { a[0] = a[0] + 1; }")
        .unwrap();
    program.build().unwrap();
    let kernel = program.create_kernel("touch").unwrap();
    kernel.set_arg(0, &buffer).unwrap();

    let mut group = c.benchmark_group("coherence");
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("ping_pong_1MiB_between_servers", |b| {
        b.iter(|| {
            // Alternating launches on the two servers force the MSI
            // directory to move the buffer through the client every time.
            let e0 = q0.launch(&kernel, NdRange::linear(1)).submit().unwrap();
            e0.wait().unwrap();
            let e1 = q1.launch(&kernel, NdRange::linear(1)).submit().unwrap();
            e1.wait().unwrap();
        });
    });
    group.bench_function("repeated_launch_same_server_no_traffic", |b| {
        // Baseline: staying on one server needs no coherence transfers after
        // the first validation.
        let _ = kernel.set_arg(0, Value::int(0)).is_err();
        kernel.set_arg(0, &buffer).unwrap();
        b.iter(|| {
            let e0 = q0.launch(&kernel, NdRange::linear(1)).submit().unwrap();
            e0.wait().unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, coherence_benches);
criterion_main!(benches);
