//! Micro-benchmarks of the MSI coherence protocol: the cost of moving a
//! shared buffer between devices on different servers through the client
//! (the write-invalidate path of Section III-D).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dopencl::{LocalCluster, NdRange, Value};
use gcf::LinkModel;
use vocl::Platform;

fn coherence_benches(c: &mut Criterion) {
    let mut cluster = LocalCluster::new(LinkModel::ideal());
    cluster.add_node("node0", &Platform::test_platform(1)).unwrap();
    cluster.add_node("node1", &Platform::test_platform(1)).unwrap();
    let client = cluster.client("coherence-bench").unwrap();
    let devices = client.devices();
    let context = client.create_context(&devices).unwrap();
    let q0 = client.create_command_queue(&context, &devices[0]).unwrap();
    let q1 = client.create_command_queue(&context, &devices[1]).unwrap();
    let size = 1 << 20;
    let buffer = client.create_buffer(&context, size).unwrap();
    let program = client
        .create_program_with_source(
            &context,
            "__kernel void touch(__global int* a) { a[0] = a[0] + 1; }",
        )
        .unwrap();
    client.build_program(&program).unwrap();
    let kernel = client.create_kernel(&program, "touch").unwrap();
    client.set_kernel_arg_buffer(&kernel, 0, &buffer).unwrap();

    let mut group = c.benchmark_group("coherence");
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("ping_pong_1MiB_between_servers", |b| {
        b.iter(|| {
            // Alternating launches on the two servers force the MSI
            // directory to move the buffer through the client every time.
            let e0 = client.enqueue_nd_range_kernel(&q0, &kernel, NdRange::linear(1), &[]).unwrap();
            e0.wait().unwrap();
            let e1 = client.enqueue_nd_range_kernel(&q1, &kernel, NdRange::linear(1), &[]).unwrap();
            e1.wait().unwrap();
        });
    });
    group.bench_function("repeated_launch_same_server_no_traffic", |b| {
        // Baseline: staying on one server needs no coherence transfers after
        // the first validation.
        let _ = client.set_kernel_arg_scalar(&kernel, 0, Value::int(0)).is_err();
        client.set_kernel_arg_buffer(&kernel, 0, &buffer).unwrap();
        b.iter(|| {
            let e0 = client.enqueue_nd_range_kernel(&q0, &kernel, NdRange::linear(1), &[]).unwrap();
            e0.wait().unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, coherence_benches);
criterion_main!(benches);
