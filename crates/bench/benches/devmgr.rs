//! Micro-benchmarks of the device manager: assignment-request throughput
//! under the two scheduling strategies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use devmgr::{DeviceManager, DmDevice, DmRequirement, SchedulingStrategy};

fn registry(dm: &DeviceManager, servers: usize, gpus_per_server: usize) {
    for s in 0..servers {
        let devices: Vec<DmDevice> = (0..gpus_per_server)
            .map(|g| DmDevice {
                remote_id: (s * 100 + g) as u64,
                name: format!("GPU {s}-{g}"),
                vendor: "NVIDIA".into(),
                device_type: "GPU".into(),
                compute_units: 30,
                global_mem_bytes: 4 << 30,
            })
            .collect();
        dm.register_server(&format!("server{s}"), &format!("server{s}"), devices, None);
    }
}

fn devmgr_benches(c: &mut Criterion) {
    let requirement =
        vec![DmRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    for strategy in [SchedulingStrategy::FirstFit, SchedulingStrategy::RoundRobin] {
        let name = format!("devmgr/assign_release_{strategy:?}");
        c.bench_function(&name, |b| {
            b.iter_batched(
                || {
                    let dm = DeviceManager::new(strategy);
                    registry(&dm, 8, 4);
                    dm
                },
                |dm| {
                    // Assign every device, then release every lease.
                    let mut leases = Vec::new();
                    for i in 0..32 {
                        let (lease, _) = dm.assign(&format!("client-{i}"), &requirement).unwrap();
                        leases.push(lease.auth_id);
                    }
                    for auth in leases {
                        dm.release(&auth).unwrap();
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
}

criterion_group!(benches, devmgr_benches);
criterion_main!(benches);
