//! Wall-clock cost of regenerating (scaled-down versions of) the paper's
//! figures: these benches keep the figure harnesses honest about their own
//! runtime and act as end-to-end regression tests of the whole stack.

use criterion::{criterion_group, criterion_main, Criterion};

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig7_transfer_64MB", |b| {
        b.iter(|| {
            let result = dcl_bench::fig7::run(64).unwrap();
            std::hint::black_box(result.write_slowdown());
        });
    });

    group.bench_function("fig8_efficiency_3_points", |b| {
        b.iter(|| {
            let result = dcl_bench::fig8::run(&[1, 16, 256]).unwrap();
            std::hint::black_box(result.points.len());
        });
    });

    group.bench_function("fig4_dopencl_2_devices_tiny", |b| {
        b.iter(|| {
            let row = dcl_bench::fig4::run_dopencl(2, 40).unwrap();
            std::hint::black_box(row.breakdown.total());
        });
    });

    group.bench_function("fig5_osem_all_variants_tiny", |b| {
        let mut scaled = dcl_bench::fig5::ScaledOsem::default_scale();
        scaled.functional.num_events = 4_000;
        scaled.functional.ray_steps = 8;
        b.iter(|| {
            let rows = dcl_bench::fig5::run(&scaled).unwrap();
            std::hint::black_box(rows.len());
        });
    });

    group.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
