//! Micro-benchmarks of the gcf transports: request/response round trip and
//! bulk-stream throughput over the in-process transport vs real TCP sockets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcf::rpc::{Endpoint, EndpointHandler, NullHandler};
use gcf::transport::{inproc::InprocTransport, tcp::TcpTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

struct EchoHandler;
impl EndpointHandler for EchoHandler {
    fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
        payload.to_vec()
    }
}

fn endpoint_pair(transport: &dyn Transport, addr: &str) -> (Arc<Endpoint>, Arc<Endpoint>) {
    let listener = transport.listen(addr).unwrap();
    let bound = listener.local_addr();
    let handle = std::thread::spawn(move || listener.accept().unwrap());
    let client_conn = transport.connect(&bound).unwrap();
    let server_conn = handle.join().unwrap();
    let client = Endpoint::new(client_conn, Arc::new(NullHandler), "bench-client");
    let server = Endpoint::new(server_conn, Arc::new(EchoHandler), "bench-server");
    (client, server)
}

fn transport_benches(c: &mut Criterion) {
    let inproc = InprocTransport::new();
    let (inproc_client, _inproc_server) = endpoint_pair(&inproc, "bench");
    c.bench_function("transport/inproc_call_round_trip", |b| {
        b.iter(|| {
            let resp = inproc_client.call(vec![0u8; 64]).unwrap();
            std::hint::black_box(resp);
        });
    });

    let tcp = TcpTransport::new();
    let (tcp_client, _tcp_server) = endpoint_pair(&tcp, "127.0.0.1:0");
    c.bench_function("transport/tcp_call_round_trip", |b| {
        b.iter(|| {
            let resp = tcp_client.call(vec![0u8; 64]).unwrap();
            std::hint::black_box(resp);
        });
    });

    let mut group = c.benchmark_group("transport/bulk_stream");
    let payload = vec![0xA5u8; 4 << 20];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("inproc_4MiB", |b| {
        let (client, server) = endpoint_pair(&InprocTransport::new(), "bulk");
        b.iter(|| {
            let stream = client.allocate_id();
            client.send_bulk(stream, &payload).unwrap();
            let received = server.wait_bulk(stream, Duration::from_secs(10)).unwrap();
            std::hint::black_box(received.len());
        });
    });
    group.finish();
}

criterion_group!(benches, transport_benches);
criterion_main!(benches);
