//! Figure 8: efficiency of dOpenCL's data transfer over Gigabit Ethernet as
//! a function of the transfer size, compared with the effective bandwidth
//! iperf measures (~86 % of the theoretical 125 MB/s).
//!
//! The module also hosts the command-pipeline profile: the same link, but
//! measuring *round trips* rather than bytes — how many wire messages a
//! run of N commands costs with and without client-side batching.

use dopencl::{Context, LocalCluster};
use gcf::simtime::SimClock;
use gcf::LinkModel;
use std::time::Duration;
use vocl::Platform;
use workloads::bandwidth::{efficiency_sweep, iperf_reference_efficiency, EfficiencyPoint};

/// The full Figure 8 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// Efficiency per transfer size.
    pub points: Vec<EfficiencyPoint>,
    /// The iperf reference line.
    pub iperf_efficiency: f64,
}

/// The transfer sizes of the paper's sweep: 1 MB to 1024 MB in powers of
/// two.
pub fn paper_sizes() -> Vec<u64> {
    (0..=10).map(|p| 1u64 << p).collect()
}

/// Run the Figure 8 sweep over the given sizes.
pub fn run(sizes_mb: &[u64]) -> dopencl::Result<Fig8Result> {
    Ok(Fig8Result {
        points: efficiency_sweep(sizes_mb)?,
        iperf_efficiency: iperf_reference_efficiency(),
    })
}

/// Wire traffic and modelled runtime of one command-pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineRun {
    /// Requests the client sent (the round trips).
    pub requests_sent: u64,
    /// Completion notifications pushed back by the daemon (one-way).
    pub notifications_received: u64,
    /// Total wire messages in both directions, excluding the responses that
    /// pair 1:1 with requests and the bulk data stream.
    pub wire_messages: u64,
    /// Requests per queue flush: the headline batching metric.
    pub messages_per_flush: f64,
    /// Modelled runtime of the command loop on the simulation clock.
    pub simulated: Duration,
}

/// Before/after comparison of the batched command pipeline over the
/// Figure 8 link: `flushes` rounds of `commands_per_flush` small writes
/// followed by a `finish()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandPipelineProfile {
    /// Commands enqueued between consecutive flushes.
    pub commands_per_flush: usize,
    /// Number of enqueue-then-finish rounds.
    pub flushes: usize,
    /// Per-command round trips (batching disabled) — the "before" run.
    pub unbatched: PipelineRun,
    /// Accumulated batches (the production path) — the "after" run.
    pub batched: PipelineRun,
}

impl CommandPipelineProfile {
    /// How many times fewer requests per flush the batched pipeline needs.
    pub fn message_reduction(&self) -> f64 {
        self.unbatched.messages_per_flush / self.batched.messages_per_flush
    }
}

/// Measure the command pipeline with batching on and off.
pub fn command_pipeline_profile(
    commands_per_flush: usize,
    flushes: usize,
) -> dopencl::Result<CommandPipelineProfile> {
    Ok(CommandPipelineProfile {
        commands_per_flush,
        flushes,
        unbatched: pipeline_run(commands_per_flush, flushes, false)?,
        batched: pipeline_run(commands_per_flush, flushes, true)?,
    })
}

fn pipeline_run(
    commands_per_flush: usize,
    flushes: usize,
    batching: bool,
) -> dopencl::Result<PipelineRun> {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("pipeline", clock.clone())?;
    client.set_batching(batching);

    let devices = client.devices();
    let device = devices
        .first()
        .ok_or_else(|| dopencl::DclError::InvalidArgument("no devices available".into()))?;
    let context = Context::new(&client, std::slice::from_ref(device))?;
    let queue = context.create_command_queue(device)?;
    let buffer = context.create_buffer(1024)?;
    let payload = vec![0x5Au8; 1024];

    // Measure only the command loop, not context/queue/buffer setup.
    let before_traffic = client.traffic_stats();
    let before_time = clock.breakdown().total();
    for _ in 0..flushes {
        for _ in 0..commands_per_flush {
            queue.write_buffer(&buffer, &payload).submit()?;
        }
        queue.finish()?;
    }
    let traffic = client.traffic_stats().delta(&before_traffic);
    let simulated = clock.breakdown().total().saturating_sub(before_time);
    Ok(PipelineRun {
        requests_sent: traffic.requests_sent,
        notifications_received: traffic.notifications_received,
        wire_messages: traffic.requests_sent + traffic.notifications_received,
        messages_per_flush: traffic.requests_sent as f64 / flushes.max(1) as f64,
        simulated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_approaches_but_stays_below_the_iperf_line() {
        let result = run(&[1, 8, 64, 512, 1024]).unwrap();
        assert!((0.82..0.88).contains(&result.iperf_efficiency));
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(last.write_efficiency > first.write_efficiency);
        assert!(last.write_efficiency > 0.75, "large transfers use the link well");
        for p in &result.points {
            assert!(p.write_efficiency <= result.iperf_efficiency + 0.02);
            assert!(p.read_efficiency <= 1.0);
        }
    }

    #[test]
    fn paper_sizes_cover_1_to_1024() {
        let sizes = paper_sizes();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&1024));
        assert_eq!(sizes.len(), 11);
    }

    #[test]
    fn batching_collapses_round_trips_and_runtime() {
        let profile = command_pipeline_profile(8, 3).unwrap();
        // Unbatched: one request per write plus one for the finish marker.
        assert_eq!(profile.unbatched.requests_sent, 27);
        // Batched: the whole round (writes + marker) ships as one request.
        assert_eq!(profile.batched.requests_sent, 3);
        assert!(profile.message_reduction() >= 2.0, "reduction {}", profile.message_reduction());
        // One completion notification per command either way.
        assert_eq!(profile.batched.notifications_received, 27);
        // Fewer round trips must translate into less modelled time on a
        // gigabit-Ethernet link (~400 us per round trip).
        assert!(profile.batched.simulated < profile.unbatched.simulated);
    }
}
