//! Figure 8: efficiency of dOpenCL's data transfer over Gigabit Ethernet as
//! a function of the transfer size, compared with the effective bandwidth
//! iperf measures (~86 % of the theoretical 125 MB/s).

use workloads::bandwidth::{efficiency_sweep, iperf_reference_efficiency, EfficiencyPoint};

/// The full Figure 8 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// Efficiency per transfer size.
    pub points: Vec<EfficiencyPoint>,
    /// The iperf reference line.
    pub iperf_efficiency: f64,
}

/// The transfer sizes of the paper's sweep: 1 MB to 1024 MB in powers of
/// two.
pub fn paper_sizes() -> Vec<u64> {
    (0..=10).map(|p| 1u64 << p).collect()
}

/// Run the Figure 8 sweep over the given sizes.
pub fn run(sizes_mb: &[u64]) -> dopencl::Result<Fig8Result> {
    Ok(Fig8Result {
        points: efficiency_sweep(sizes_mb)?,
        iperf_efficiency: iperf_reference_efficiency(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_approaches_but_stays_below_the_iperf_line() {
        let result = run(&[1, 8, 64, 512, 1024]).unwrap();
        assert!((0.82..0.88).contains(&result.iperf_efficiency));
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(last.write_efficiency > first.write_efficiency);
        assert!(last.write_efficiency > 0.75, "large transfers use the link well");
        for p in &result.points {
            assert!(p.write_efficiency <= result.iperf_efficiency + 0.02);
            assert!(p.read_efficiency <= 1.0);
        }
    }

    #[test]
    fn paper_sizes_cover_1_to_1024() {
        let sizes = paper_sizes();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&1024));
        assert_eq!(sizes.len(), 11);
    }
}
