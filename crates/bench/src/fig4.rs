//! Figure 4: runtime of the Mandelbrot application, dOpenCL vs MPI+OpenCL,
//! on 2–16 devices of the Infiniband CPU cluster.

use dopencl::{infiniband_cpu_cluster, Event, Phase, PhaseBreakdown, SimClock, Value};
use gcf::LinkModel;
use std::time::Duration;
use vocl::{
    Buffer, CommandQueue, Context, KernelArg, MemFlags, NdRange, Platform, Program, QueueProperties,
};
use workloads::mandelbrot::{self, MandelbrotParams, BUILTIN_KERNEL};

/// One bar of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Number of CPU devices (cluster nodes) used.
    pub devices: usize,
    /// `"dOpenCL"` or `"MPI+OpenCL"`.
    pub variant: &'static str,
    /// Modelled runtime split into initialization / execution / transfer.
    pub breakdown: PhaseBreakdown,
}

fn scale_breakdown(b: PhaseBreakdown, work_scale: f64) -> PhaseBreakdown {
    PhaseBreakdown {
        initialization: b.initialization,
        execution: Duration::from_secs_f64(b.execution.as_secs_f64() * work_scale),
        data_transfer: Duration::from_secs_f64(b.data_transfer.as_secs_f64() * work_scale),
    }
}

/// Run the dOpenCL variant on `n` devices.
///
/// The functional computation uses the paper parameters downscaled by
/// `functional_scale` in each dimension; execution and transfer are scaled
/// back by `functional_scale²` (work and image bytes are linear in the pixel
/// count).
pub fn run_dopencl(n: usize, functional_scale: usize) -> dopencl::Result<Fig4Row> {
    workloads::register_all_built_in_kernels();
    let paper = MandelbrotParams::paper();
    let func = paper.downscaled(functional_scale);
    let work_scale = paper.pixels() as f64 / func.pixels() as f64;

    let cluster = infiniband_cpu_cluster(n)?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("mandelbrot", clock.clone())?;
    let devices = client.devices();
    assert_eq!(devices.len(), n, "one CPU device per cluster node");

    let context = dopencl::Context::new(&client, &devices)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;
    // Remote program build: every daemon runs its native `clBuildProgram`
    // when the client builds the compound program stub.  The vendor
    // compilers of the paper's testbed need tens of milliseconds for this;
    // charge that per server (it is the dominant part of the initialization
    // overhead Figure 4 attributes to dOpenCL).
    for _ in 0..n {
        clock.charge(Phase::Initialization, Duration::from_millis(60));
    }

    // The paper assigns lines to devices round-robin so that every device
    // gets an equal amount of work.  Contiguous blocks would be badly
    // imbalanced (the set's interior concentrates in the middle rows), so
    // each device gets two mirrored blocks: one from the top half and the
    // symmetric one from the bottom half of the image.
    let chunk_rows = func.height.div_ceil(2 * n);
    let mut events = Vec::new();
    let mut per_device_exec = vec![Duration::ZERO; n];
    let mut buffers = Vec::new();
    let mut queues = Vec::new();
    for (i, device) in devices.iter().enumerate() {
        let queue = context.create_command_queue(device)?;
        for chunk in [i, 2 * n - 1 - i] {
            let row_offset = chunk * chunk_rows;
            let rows = chunk_rows.min(func.height.saturating_sub(row_offset));
            if rows == 0 {
                continue;
            }
            let buffer = context.create_buffer(func.width * rows * 4)?;
            let kernel = program.create_kernel(BUILTIN_KERNEL)?;
            kernel.set_arg(0, &buffer)?;
            kernel.set_arg(1, Value::uint(func.width as u64))?;
            kernel.set_arg(2, Value::uint(rows as u64))?;
            kernel.set_arg(3, Value::double(func.x_min))?;
            kernel.set_arg(4, Value::double(func.y_min))?;
            kernel.set_arg(5, Value::double(func.dx()))?;
            kernel.set_arg(6, Value::double(func.dy()))?;
            kernel.set_arg(7, Value::uint(row_offset as u64))?;
            kernel.set_arg(8, Value::uint(func.max_iter as u64))?;
            let event = queue.launch(&kernel, NdRange::two_d(func.width, rows)).submit()?;
            events.push((i, event));
            buffers.push((buffer, rows));
            queues.push(queue.clone());
        }
    }
    let all_events: Vec<_> = events.iter().map(|(_, e)| e.clone()).collect();
    Event::wait_all(&all_events)?;

    // Devices compute their tiles in parallel: the execution phase of the
    // application is the slowest device, not the sum the client clock keeps.
    for (device, event) in &events {
        per_device_exec[*device] += event.modeled_duration();
    }
    let execution = per_device_exec.iter().copied().max().unwrap_or_default();

    // Download the tiles (the paper's result image assembly).
    let mut assembled = Vec::with_capacity(func.pixels());
    for ((buffer, _rows), queue) in buffers.iter().zip(&queues) {
        let (data, _) = queue.read_buffer(buffer).submit()?;
        assembled.extend(data.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())));
    }
    // Spot-check the assembled image against the reference.
    let (reference, _) = mandelbrot::compute_rows(&func, 0, 1);
    assert_eq!(&assembled[..func.width.min(64)], &reference[..func.width.min(64)]);

    let measured = clock.breakdown();
    let breakdown = PhaseBreakdown {
        initialization: measured.initialization,
        execution,
        data_transfer: measured.data_transfer,
    };
    Ok(Fig4Row {
        devices: n,
        variant: "dOpenCL",
        breakdown: scale_breakdown(breakdown, work_scale),
    })
}

/// Run the MPI+OpenCL baseline on `n` ranks.
pub fn run_mpi_opencl(n: usize, functional_scale: usize) -> Fig4Row {
    workloads::register_all_built_in_kernels();
    let paper = MandelbrotParams::paper();
    let func = paper.downscaled(functional_scale);
    let work_scale = paper.pixels() as f64 / func.pixels() as f64;

    let results = mpicl::World::run(n, LinkModel::infiniband(), move |comm| {
        comm.init();
        // Each rank uses its node's local OpenCL implementation directly.
        let platform = Platform::cluster_node();
        let device = platform.devices()[0].clone();
        let context = Context::new(vec![device.clone()]).expect("context");
        let queue =
            CommandQueue::new(context.clone(), device, QueueProperties::default()).expect("queue");
        // Local OpenCL initialization (context + program build), a small
        // constant per rank: the binaries are already on every node.
        comm.clock().charge(Phase::Initialization, Duration::from_millis(60));

        // The same mirrored two-block split as the dOpenCL variant, standing
        // in for the paper's round-robin line distribution.
        let chunk_rows = func.height.div_ceil(2 * comm.size());
        let mut tile = Vec::new();
        let program = Program::with_built_in_kernels(context.clone(), BUILTIN_KERNEL)
            .expect("built-in program");
        for chunk in [comm.rank(), 2 * comm.size() - 1 - comm.rank()] {
            let row_offset = chunk * chunk_rows;
            let rows = chunk_rows.min(func.height.saturating_sub(row_offset));
            if rows == 0 {
                continue;
            }
            let kernel = program.create_kernel(BUILTIN_KERNEL).expect("kernel");
            let buffer =
                Buffer::new(context.clone(), func.width * rows * 4, MemFlags::READ_WRITE, None)
                    .expect("buffer");
            kernel.set_arg(0, KernelArg::Buffer(buffer.clone())).unwrap();
            kernel.set_arg(1, KernelArg::Scalar(Value::uint(func.width as u64))).unwrap();
            kernel.set_arg(2, KernelArg::Scalar(Value::uint(rows as u64))).unwrap();
            kernel.set_arg(3, KernelArg::Scalar(Value::double(func.x_min))).unwrap();
            kernel.set_arg(4, KernelArg::Scalar(Value::double(func.y_min))).unwrap();
            kernel.set_arg(5, KernelArg::Scalar(Value::double(func.dx()))).unwrap();
            kernel.set_arg(6, KernelArg::Scalar(Value::double(func.dy()))).unwrap();
            kernel.set_arg(7, KernelArg::Scalar(Value::uint(row_offset as u64))).unwrap();
            kernel.set_arg(8, KernelArg::Scalar(Value::uint(func.max_iter as u64))).unwrap();
            let event = queue
                .enqueue_nd_range_kernel(&kernel, NdRange::two_d(func.width, rows), Vec::new())
                .expect("launch");
            event.wait().expect("kernel");
            comm.clock().charge(Phase::Execution, event.modeled_duration());
            tile.extend(
                queue.read_buffer_blocking(&buffer, 0, func.width * rows * 4).expect("read"),
            );
        }
        // MPI_Gather of the tiles to rank 0.
        let gathered = comm.gather(&tile).expect("gather");
        if let Some(parts) = gathered {
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, func.pixels() * 4, "gathered image has every pixel");
        }
    });

    let breakdown = PhaseBreakdown::parallel_over(results.into_iter().map(|(_, b)| b));
    Fig4Row { devices: n, variant: "MPI+OpenCL", breakdown: scale_breakdown(breakdown, work_scale) }
}

/// Run the full Figure 4 sweep.
pub fn run(device_counts: &[usize], functional_scale: usize) -> dopencl::Result<Vec<Fig4Row>> {
    let mut rows = Vec::new();
    for &n in device_counts {
        rows.push(run_mpi_opencl(n, functional_scale));
        rows.push(run_dopencl(n, functional_scale)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dopencl_and_mpi_scale_and_dopencl_pays_moderate_overhead() {
        let rows = run(&[2, 4], 20).unwrap();
        let mpi2 = &rows[0];
        let dcl2 = &rows[1];
        let mpi4 = &rows[2];
        let dcl4 = &rows[3];
        // Both variants speed up with more devices.
        assert!(dcl4.breakdown.execution < dcl2.breakdown.execution);
        assert!(mpi4.breakdown.execution < mpi2.breakdown.execution);
        // Execution time is essentially identical; dOpenCL adds overhead in
        // initialization (program/code shipping and per-server messages).
        let exec_ratio =
            dcl2.breakdown.execution.as_secs_f64() / mpi2.breakdown.execution.as_secs_f64();
        assert!((0.8..1.2).contains(&exec_ratio), "execution ratio {exec_ratio}");
        assert!(dcl2.breakdown.initialization > mpi2.breakdown.initialization);
        // Total runtime of dOpenCL stays within a moderate factor.
        let total_ratio =
            dcl2.breakdown.total().as_secs_f64() / mpi2.breakdown.total().as_secs_f64();
        assert!(total_ratio < 1.6, "dOpenCL overhead too large: {total_ratio}");
    }
}
