//! Small fixed-width table printer shared by the figure binaries.

/// Print a table with a header row and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a duration in seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.50");
        // print_table must not panic on ragged rows.
        print_table("t", &["a", "b"], &[vec!["1".into()], vec!["22".into(), "333".into()]]);
    }
}
