//! Small fixed-width table printer and JSON report writer shared by the
//! figure binaries.
//!
//! The JSON support is hand-rolled (the workspace deliberately carries no
//! serde dependency) and only covers what the `BENCH_*.json` trajectory
//! files need: objects, arrays, strings, numbers, booleans.

use std::path::Path;

/// Print a table with a header row and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a duration in seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Percentile of a **sorted** slice using linear interpolation between the
/// two nearest ranks (the same definition numpy's default uses).  `p` is in
/// `[0, 100]`.  An empty slice yields 0.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The latency summary the benchmark reports carry: median and the two tail
/// percentiles the paper's service-quality discussion cares about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile tail latency.
    pub p99: f64,
}

impl Percentiles {
    /// Summarise a sample set (sorts a copy; the input order is arbitrary).
    pub fn of(values: &[f64]) -> Percentiles {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Percentiles {
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
        }
    }
}

/// A minimal JSON value for benchmark reports.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; integers up to 2^53 print without a fractional part.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A numeric value.
    pub fn num(value: impl Into<f64>) -> JsonValue {
        JsonValue::Num(value.into())
    }

    /// A string value.
    pub fn str(value: impl Into<String>) -> JsonValue {
        JsonValue::Str(value.into())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, level: usize| {
            for _ in 0..level {
                out.push_str("  ");
            }
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    JsonValue::Str(key.clone()).write_into(out, indent + 1);
                    out.push_str(": ");
                    value.write_into(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Write a JSON report to `path` (pretty-printed).
pub fn write_json(path: impl AsRef<Path>, value: &JsonValue) -> std::io::Result<()> {
    std::fs::write(path, value.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.50");
        // print_table must not panic on ragged rows.
        print_table("t", &["a", "b"], &[vec!["1".into()], vec!["22".into(), "333".into()]]);
    }

    #[test]
    fn percentiles_interpolate_between_ranks() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert!((percentile(&sorted, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&sorted, 99.0) - 99.01).abs() < 1e-9);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);

        let summary = Percentiles::of(&[3.0, 1.0, 2.0, 4.0]);
        assert!((summary.p50 - 2.5).abs() < 1e-9);
        assert!(summary.p95 <= summary.p99 && summary.p99 <= 4.0);
    }

    #[test]
    fn json_renders_scalars_and_nesting() {
        let value = JsonValue::obj([
            ("figure", JsonValue::str("fig8")),
            ("count", JsonValue::num(3u32)),
            ("ratio", JsonValue::Num(0.5)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            ("sizes", JsonValue::Arr(vec![JsonValue::num(1u32), JsonValue::num(2u32)])),
        ]);
        let text = value.to_pretty();
        assert!(text.contains("\"figure\": \"fig8\""));
        assert!(text.contains("\"count\": 3"), "integers print without fraction: {text}");
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"none\": null"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_strings() {
        let text = JsonValue::str("a\"b\\c\nd").to_pretty();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn json_empty_containers_stay_compact() {
        assert_eq!(JsonValue::Arr(Vec::new()).to_pretty(), "[]\n");
        assert_eq!(JsonValue::Obj(Vec::new()).to_pretty(), "{}\n");
    }
}
