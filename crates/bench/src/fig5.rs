//! Figure 5: mean runtime of one list-mode OSEM iteration in three setups —
//! the desktop PC's own low-end GPU, the desktop offloading to the remote
//! 4-GPU server through dOpenCL, and native execution on the server.

use dopencl::{desktop_and_gpu_server, DeviceType, PhaseBreakdown, SimClock, Value};
use std::time::Duration;
use vocl::{
    Buffer, CommandQueue, Context, Device, KernelArg, MemFlags, NdRange, Platform, Program,
    QueueProperties,
};
use workloads::osem::{self, OsemParams, BUILTIN_KERNEL};

/// One bar of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Setup name.
    pub variant: &'static str,
    /// Modelled mean runtime of one OSEM iteration.
    pub iteration_time: Duration,
    /// Breakdown of that runtime.
    pub breakdown: PhaseBreakdown,
}

/// A functionally small OSEM configuration paired with the paper-scale
/// parameters and the two scaling factors (compute, bytes).
pub struct ScaledOsem {
    /// The configuration that is actually executed.
    pub functional: OsemParams,
    /// The paper-scale configuration whose runtime is reported.
    pub paper: OsemParams,
}

impl ScaledOsem {
    /// Default functional size.
    ///
    /// Chosen so that (a) the event payload dominates the per-message
    /// protocol overhead (so measured transfer times scale faithfully) and
    /// (b) the event-to-image byte ratio matches the paper-scale
    /// configuration (so one scale factor applies to the whole transfer
    /// phase).
    pub fn default_scale() -> Self {
        ScaledOsem {
            functional: OsemParams {
                num_events: 500_000,
                subsets: 10,
                num_voxels: 20_000,
                ray_steps: 20,
            },
            paper: OsemParams::paper(),
        }
    }

    /// Execution-time scale factor (FLOPs ratio).
    pub fn exec_scale(&self) -> f64 {
        self.paper.flops_per_iteration() / self.functional.flops_per_iteration()
    }

    /// Transfer-time scale factor (bytes ratio: events plus per-GPU image and
    /// correction volumes).
    pub fn transfer_scale(&self) -> f64 {
        let bytes = |p: &OsemParams| (p.event_bytes() + 2 * p.image_bytes()) as f64;
        bytes(&self.paper) / bytes(&self.functional)
    }

    /// Paper-scale execution time of one OSEM iteration spread over
    /// `devices` devices with the given compute model.
    ///
    /// The *measured* execution time of the functional run is dominated by
    /// kernel-launch overhead (the functional kernels finish in
    /// microseconds), so scaling it would distort the figure; the execution
    /// phase is therefore evaluated directly from the device model at paper
    /// scale, exactly like the kernel launch itself would report it.
    pub fn paper_execution(&self, compute: &vocl::ComputeModel, devices: usize) -> Duration {
        let per_device_flops = self.paper.flops_per_iteration() / devices.max(1) as f64;
        // One launch per subset.
        let launches = self.paper.subsets as u32;
        compute.native_time(per_device_flops) + compute.launch_overhead * launches.saturating_sub(1)
    }

    fn scale(&self, b: PhaseBreakdown, execution: Duration) -> PhaseBreakdown {
        PhaseBreakdown {
            initialization: b.initialization,
            execution,
            data_transfer: Duration::from_secs_f64(
                b.data_transfer.as_secs_f64() * self.transfer_scale(),
            ),
        }
    }
}

fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// One OSEM iteration on a native (local) `vocl` platform using `gpus`
/// devices; returns the unscaled breakdown.
fn native_iteration(devices: &[std::sync::Arc<Device>], params: &OsemParams) -> PhaseBreakdown {
    workloads::register_all_built_in_kernels();
    let mut breakdown = PhaseBreakdown::zero();
    let events = osem::generate_events(params, 11);
    let image = vec![0.5f32; params.num_voxels];
    let gpus = devices.len();
    let events_per_gpu = params.num_events / gpus;

    let mut per_device = Vec::new();
    for (i, device) in devices.iter().enumerate() {
        let mut local = PhaseBreakdown::zero();
        let context = Context::new(vec![device.clone()]).expect("context");
        let queue =
            CommandQueue::new(context.clone(), device.clone(), QueueProperties::default()).unwrap();
        let program = Program::with_built_in_kernels(context.clone(), BUILTIN_KERNEL).unwrap();
        let kernel = program.create_kernel(BUILTIN_KERNEL).unwrap();

        let slice = &events[i * events_per_gpu * 4..(i + 1) * events_per_gpu * 4];
        let events_buf =
            Buffer::new(context.clone(), slice.len() * 4, MemFlags::READ_ONLY, None).unwrap();
        let image_buf =
            Buffer::new(context.clone(), params.num_voxels * 4, MemFlags::READ_ONLY, None).unwrap();
        let corr_buf =
            Buffer::new(context, params.num_voxels * 4, MemFlags::READ_WRITE, None).unwrap();

        let w1 = queue.enqueue_write_buffer(&events_buf, 0, f32_bytes(slice), Vec::new()).unwrap();
        let w2 = queue.enqueue_write_buffer(&image_buf, 0, f32_bytes(&image), Vec::new()).unwrap();
        w1.wait().unwrap();
        w2.wait().unwrap();
        local.add(gcf::simtime::Phase::DataTransfer, w1.modeled_duration() + w2.modeled_duration());

        let per_subset = events_per_gpu / params.subsets;
        kernel.set_arg(0, KernelArg::Buffer(events_buf)).unwrap();
        kernel.set_arg(1, KernelArg::Buffer(image_buf)).unwrap();
        kernel.set_arg(2, KernelArg::Buffer(corr_buf.clone())).unwrap();
        kernel.set_arg(3, KernelArg::Scalar(Value::uint(per_subset as u64))).unwrap();
        kernel.set_arg(4, KernelArg::Scalar(Value::uint(params.ray_steps as u64))).unwrap();
        kernel.set_arg(5, KernelArg::Scalar(Value::uint(params.num_voxels as u64))).unwrap();
        for _ in 0..params.subsets {
            let e = queue
                .enqueue_nd_range_kernel(&kernel, NdRange::linear(per_subset), Vec::new())
                .unwrap();
            e.wait().unwrap();
            local.add(gcf::simtime::Phase::Execution, e.modeled_duration());
        }
        let r = queue.enqueue_read_buffer(&corr_buf, 0, params.num_voxels * 4, Vec::new()).unwrap();
        r.wait().unwrap();
        local.add(gcf::simtime::Phase::DataTransfer, r.modeled_duration());
        per_device.push(local);
    }
    breakdown = breakdown.merge_serial(&PhaseBreakdown::parallel_over(per_device));
    breakdown
}

/// Variant (a): the desktop PC's own NVS 3100M through its local OpenCL.
pub fn desktop_local(scaled: &ScaledOsem) -> Fig5Row {
    let platform = Platform::desktop_pc();
    let execution = scaled.paper_execution(&platform.devices()[0].profile().compute, 1);
    let breakdown =
        scaled.scale(native_iteration(platform.devices(), &scaled.functional), execution);
    Fig5Row { variant: "Desktop PC using OpenCL", iteration_time: breakdown.total(), breakdown }
}

/// Variant (c): native execution on the GPU server (all 4 Tesla GPUs).
pub fn server_native(scaled: &ScaledOsem) -> Fig5Row {
    let platform = Platform::gpu_server();
    let gpus: Vec<_> = platform
        .devices()
        .iter()
        .filter(|d| d.device_type() == vocl::DeviceType::Gpu)
        .cloned()
        .collect();
    let execution = scaled.paper_execution(&gpus[0].profile().compute, gpus.len());
    let breakdown = scaled.scale(native_iteration(&gpus, &scaled.functional), execution);
    Fig5Row { variant: "Server using native OpenCL", iteration_time: breakdown.total(), breakdown }
}

/// Variant (b): the desktop PC offloading to the remote GPU server through
/// dOpenCL over Gigabit Ethernet.
pub fn desktop_via_dopencl(scaled: &ScaledOsem) -> dopencl::Result<Fig5Row> {
    workloads::register_all_built_in_kernels();
    let params = &scaled.functional;
    let cluster = desktop_and_gpu_server()?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("osem-desktop", clock.clone())?;
    let gpus = client.devices_of(DeviceType::Gpu);
    assert_eq!(gpus.len(), 4, "the paper's server has four GPUs");

    let events = osem::generate_events(params, 11);
    let image = vec![0.5f32; params.num_voxels];
    let events_per_gpu = params.num_events / gpus.len();
    let per_subset = events_per_gpu / params.subsets;

    let context = dopencl::Context::new(&client, &gpus)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;

    let mut kernel_events = Vec::new();
    let mut per_gpu_exec: Vec<Duration> = Vec::new();
    let mut corr_buffers = Vec::new();
    let mut queues = Vec::new();
    for (i, gpu) in gpus.iter().enumerate() {
        let queue = context.create_command_queue(gpu)?;
        let slice = &events[i * events_per_gpu * 4..(i + 1) * events_per_gpu * 4];
        let events_buf = context.create_buffer(slice.len() * 4)?;
        let image_buf = context.create_buffer(params.num_voxels * 4)?;
        let corr_buf = context.create_buffer(params.num_voxels * 4)?;
        queue.write_buffer(&events_buf, &f32_bytes(slice)).blocking().submit()?;
        queue.write_buffer(&image_buf, &f32_bytes(&image)).blocking().submit()?;

        let kernel = program.create_kernel(BUILTIN_KERNEL)?;
        kernel.set_arg(0, &events_buf)?;
        kernel.set_arg(1, &image_buf)?;
        kernel.set_arg(2, &corr_buf)?;
        kernel.set_arg(3, Value::uint(per_subset as u64))?;
        kernel.set_arg(4, Value::uint(params.ray_steps as u64))?;
        kernel.set_arg(5, Value::uint(params.num_voxels as u64))?;
        let mut gpu_exec = Duration::ZERO;
        for _ in 0..params.subsets {
            let e = queue.launch(&kernel, NdRange::linear(per_subset)).submit()?;
            e.wait()?;
            gpu_exec += e.modeled_duration();
            kernel_events.push(e);
        }
        per_gpu_exec.push(gpu_exec);
        corr_buffers.push(corr_buf);
        queues.push(queue);
    }
    for (corr, queue) in corr_buffers.iter().zip(&queues) {
        let (_data, e) = queue.read_buffer(corr).submit()?;
        e.wait()?;
    }

    let measured = clock.breakdown();
    // The functional kernels complete in microseconds (launch overhead
    // dominates), so the paper-scale execution phase is evaluated from the
    // Tesla compute model directly; the four GPUs work concurrently.
    let _ = per_gpu_exec;
    let execution =
        scaled.paper_execution(&vocl::DeviceProfile::gpu_tesla_s1070_unit().compute, gpus.len());
    let breakdown = PhaseBreakdown {
        initialization: measured.initialization,
        execution: Duration::ZERO,
        data_transfer: measured.data_transfer,
    };
    let breakdown = scaled.scale(breakdown, execution);
    Ok(Fig5Row {
        variant: "Desktop PC using dOpenCL",
        iteration_time: breakdown.total(),
        breakdown,
    })
}

/// Run all three bars of Figure 5.
pub fn run(scaled: &ScaledOsem) -> dopencl::Result<Vec<Fig5Row>> {
    Ok(vec![desktop_local(scaled), desktop_via_dopencl(scaled)?, server_native(scaled)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_offload_beats_local_low_end_gpu_by_about_4x() {
        let scaled = ScaledOsem::default_scale();
        let rows = run(&scaled).unwrap();
        let local = rows.iter().find(|r| r.variant.contains("using OpenCL")).unwrap();
        let remote = rows.iter().find(|r| r.variant.contains("dOpenCL")).unwrap();
        let native = rows.iter().find(|r| r.variant.contains("native")).unwrap();
        let speedup = local.iteration_time.as_secs_f64() / remote.iteration_time.as_secs_f64();
        assert!(
            (2.5..6.0).contains(&speedup),
            "offload speedup {speedup} outside the paper's ballpark (3.75x)"
        );
        // Native execution on the server is the fastest of the three.
        assert!(native.iteration_time < remote.iteration_time);
        // The offload pays for its win with data transfer over the network.
        assert!(remote.breakdown.data_transfer > native.breakdown.data_transfer * 3);
        // Absolute numbers land in the paper's range (15.7 s vs 4.2 s).
        assert!((8.0..30.0).contains(&local.iteration_time.as_secs_f64()));
        assert!((2.0..8.0).contains(&remote.iteration_time.as_secs_f64()));
    }
}
