//! Kernel-throughput harness: the bytecode VM vs the legacy tree-walking
//! interpreter on the paper's two compute kernels.
//!
//! Unlike the figure harnesses (which reproduce modelled, paper-scale
//! results), this benchmark measures *real* wall-clock throughput of the two
//! in-process executors — it is the regression guard for the
//! compile-and-execute pipeline.  Results are written to
//! `BENCH_kernels.json` by the `kernels_throughput` binary.

use oclc::{BufferBinding, KernelArgValue, NdRange, Value};
use std::time::{Duration, Instant};
use workloads::mandelbrot::{MandelbrotParams, KERNEL_SOURCE};

/// One executor's measured throughput.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorRun {
    /// Total wall-clock time across all repetitions.
    pub elapsed: Duration,
    /// Work units (pixels or reduced elements) processed per second.
    pub per_sec: f64,
}

/// Mandelbrot pixels/second: tree-walking interpreter vs bytecode VM.
#[derive(Debug, Clone, Copy)]
pub struct MandelbrotThroughput {
    /// Pixels rendered per repetition.
    pub pixels: u64,
    /// Repetitions per executor.
    pub repeats: u32,
    /// The legacy tree-walking interpreter.
    pub tree: ExecutorRun,
    /// The bytecode VM (single worker thread — the honest apples-to-apples
    /// comparison; group parallelism comes on top of this).
    pub vm: ExecutorRun,
}

impl MandelbrotThroughput {
    /// VM speedup over the interpreter baseline.
    pub fn speedup(&self) -> f64 {
        self.vm.per_sec / self.tree.per_sec
    }
}

/// Barrier-reduction elements/second on the VM.  The tree walker *rejects*
/// this kernel (barrier + `__local` writes), which the result records — the
/// VM is not just faster here, it is the only correct executor.
#[derive(Debug, Clone)]
pub struct ReductionThroughput {
    /// Elements reduced per repetition.
    pub elements: u64,
    /// Repetitions.
    pub repeats: u32,
    /// The bytecode VM, single worker thread.
    pub vm: ExecutorRun,
    /// The tree walker's rejection message.
    pub tree_rejection: String,
}

fn mandelbrot_args(params: &MandelbrotParams) -> Vec<KernelArgValue> {
    vec![
        KernelArgValue::Buffer(0),
        KernelArgValue::Scalar(Value::uint(params.width as u64)),
        KernelArgValue::Scalar(Value::uint(params.height as u64)),
        KernelArgValue::Scalar(Value::float(params.x_min as f32)),
        KernelArgValue::Scalar(Value::float(params.y_min as f32)),
        KernelArgValue::Scalar(Value::float(params.dx() as f32)),
        KernelArgValue::Scalar(Value::float(params.dy() as f32)),
        KernelArgValue::Scalar(Value::uint(0)),
        KernelArgValue::Scalar(Value::uint(params.max_iter as u64)),
    ]
}

/// Measure Mandelbrot pixels/second on both executors.  The program is
/// built once; only execution is timed.
pub fn run_mandelbrot(params: &MandelbrotParams, repeats: u32) -> MandelbrotThroughput {
    let program = oclc::Program::build(KERNEL_SOURCE).expect("mandelbrot kernel builds");
    let kernel = program.kernel("mandelbrot_rows").expect("kernel exists");
    let args = mandelbrot_args(params);
    let range = NdRange::two_d(params.width, params.height);
    let pixels = params.pixels() as u64;
    let mut out = vec![0u8; params.pixels() * 4];

    let mut time_executor = |tree: bool| -> ExecutorRun {
        let start = Instant::now();
        for _ in 0..repeats {
            let mut bindings = vec![BufferBinding::new(&mut out)];
            let counters = if tree {
                kernel.execute_tree(&range, &args, &mut bindings)
            } else {
                kernel.execute_vm_with_threads(&range, &args, &mut bindings, 1)
            }
            .expect("mandelbrot executes");
            assert_eq!(counters.work_items, pixels);
        }
        let elapsed = start.elapsed();
        ExecutorRun {
            elapsed,
            per_sec: (pixels * repeats as u64) as f64 / elapsed.as_secs_f64().max(1e-9),
        }
    };

    let tree = time_executor(true);
    let vm = time_executor(false);
    MandelbrotThroughput { pixels, repeats, tree, vm }
}

const REDUCTION_KERNEL: &str = r#"
    __kernel void reduce(__global const int* in,
                         __global int* partial,
                         __local int* scratch) {
        size_t lid = get_local_id(0);
        size_t n = get_local_size(0);
        scratch[lid] = in[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (size_t stride = n / 2; stride > 0; stride /= 2) {
            if (lid < stride) {
                scratch[lid] += scratch[lid + stride];
            }
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        if (lid == 0) {
            partial[get_group_id(0)] = scratch[0];
        }
    }
"#;

/// Measure barrier-reduction elements/second on the VM and record the tree
/// walker's rejection.  Results are verified against a host-side sum every
/// repetition, so the timing cannot drift away from correctness.
pub fn run_reduction(elements: usize, group_size: usize, repeats: u32) -> ReductionThroughput {
    assert!(elements.is_multiple_of(group_size), "elements must be a multiple of the group size");
    let groups = elements / group_size;
    let program = oclc::Program::build(REDUCTION_KERNEL).expect("reduction kernel builds");
    let kernel = program.kernel("reduce").expect("kernel exists");
    let input: Vec<i32> = (0..elements as i32).map(|i| i % 97 - 48).collect();
    let input_bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    let expected: Vec<i32> = input.chunks_exact(group_size).map(|c| c.iter().sum()).collect();
    let range = NdRange::linear(elements).with_local([group_size, 1, 1]);
    let args = [
        KernelArgValue::Buffer(0),
        KernelArgValue::Buffer(1),
        KernelArgValue::Local(group_size * 4),
    ];

    let mut in_buf = input_bytes.clone();
    let mut partial = vec![0u8; groups * 4];
    let start = Instant::now();
    for _ in 0..repeats {
        partial.fill(0);
        {
            let mut bindings =
                vec![BufferBinding::new(&mut in_buf), BufferBinding::new(&mut partial)];
            kernel.execute_vm_with_threads(&range, &args, &mut bindings, 1).expect("reduce");
        }
        let got: Vec<i32> =
            partial.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(got, expected, "reduction produced wrong partial sums");
    }
    let elapsed = start.elapsed();
    let vm = ExecutorRun {
        elapsed,
        per_sec: (elements as u64 * repeats as u64) as f64 / elapsed.as_secs_f64().max(1e-9),
    };

    let mut in_buf = input_bytes;
    let mut partial = vec![0u8; groups * 4];
    let mut bindings = vec![BufferBinding::new(&mut in_buf), BufferBinding::new(&mut partial)];
    let tree_rejection = kernel
        .execute_tree(&range, &args, &mut bindings)
        .expect_err("tree walker must reject barrier + __local writes")
        .message;

    ReductionThroughput { elements: elements as u64, repeats, vm, tree_rejection }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mandelbrot_throughput_runs_and_vm_wins() {
        let params =
            MandelbrotParams { width: 24, height: 16, max_iter: 32, ..MandelbrotParams::small() };
        let result = run_mandelbrot(&params, 1);
        assert_eq!(result.pixels, 24 * 16);
        assert!(result.tree.per_sec > 0.0);
        assert!(result.vm.per_sec > 0.0);
        // Debug builds shrink the gap; even there the VM must not lose.
        assert!(result.speedup() > 1.0, "vm slower than the tree walker: {result:?}");
    }

    #[test]
    fn reduction_throughput_runs_and_tree_is_rejected() {
        let result = run_reduction(256, 64, 1);
        assert!(result.vm.per_sec > 0.0);
        assert!(result.tree_rejection.contains("barrier"));
    }
}
