//! Figure 7: time to transfer 1024 MB to (write) and from (read) a device of
//! the GPU server, over Gigabit Ethernet through dOpenCL vs directly over
//! PCI Express.

use dopencl::LocalCluster;
use gcf::simtime::SimClock;
use gcf::LinkModel;
use std::time::Duration;
use vocl::{DeviceProfile, Platform};
use workloads::bandwidth::{dopencl_transfer_with, native_transfer, TransferTimes};

/// The four bars of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Result {
    /// Transfer size in MB.
    pub megabytes: u64,
    /// Through dOpenCL over Gigabit Ethernet.
    pub gigabit_ethernet: TransferTimes,
    /// Directly over the server's PCI Express bus.
    pub pci_express: TransferTimes,
}

impl Fig7Result {
    /// Ratio of the Gigabit Ethernet write time to the PCI Express write
    /// time (the paper reports "up to 50 times slower").
    pub fn write_slowdown(&self) -> f64 {
        self.gigabit_ethernet.write.as_secs_f64() / self.pci_express.write.as_secs_f64()
    }

    /// Ratio of the read times (the paper reports "about 4.5 times slower").
    pub fn read_slowdown(&self) -> f64 {
        self.gigabit_ethernet.read.as_secs_f64() / self.pci_express.read.as_secs_f64()
    }
}

/// A Figure 7 measurement together with the wire-traffic counters of the
/// dOpenCL run (for the recorded `BENCH_fig7.json` trajectory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Run {
    /// The four bars.
    pub result: Fig7Result,
    /// Requests the client sent during the transfer.
    pub requests_sent: u64,
    /// Completion notifications the daemon pushed back.
    pub notifications_received: u64,
}

/// Run the Figure 7 experiment with command batching switched on (`true`,
/// the production path) or off (the per-command round-trip baseline).
pub fn run_mode(megabytes: u64, batching: bool) -> dopencl::Result<Fig7Run> {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("fig7", clock.clone())?;
    client.set_batching(batching);
    let before = client.traffic_stats();
    let gigabit_ethernet = dopencl_transfer_with(&client, &clock, megabytes)?;
    let traffic = client.traffic_stats().delta(&before);
    let pci_express = native_transfer(&DeviceProfile::gpu_tesla_s1070_unit(), megabytes);
    Ok(Fig7Run {
        result: Fig7Result { megabytes, gigabit_ethernet, pci_express },
        requests_sent: traffic.requests_sent,
        notifications_received: traffic.notifications_received,
    })
}

/// Run the Figure 7 experiment for a transfer of `megabytes` MB.
pub fn run(megabytes: u64) -> dopencl::Result<Fig7Result> {
    Ok(run_mode(megabytes, true)?.result)
}

/// A Figure 7 run under injected faults: recovery counters recorded
/// alongside the transfer times (`BENCH_fig7_faulty.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7FaultyRun {
    /// The four bars, measured across all slices.
    pub result: Fig7Result,
    /// Number of partitions injected (connection drops on the daemon).
    pub partitions: u64,
    /// Successful re-handshakes performed by the client's supervisor.
    pub reconnects: u64,
    /// Requests recovered by retrying them after a reconnect.
    pub recovered_requests: u64,
    /// Requests that observed a dead connection at the endpoint level
    /// before the supervisor recovered it.  Every one of them was retried
    /// to completion — `run_faulty` errors if a request is lost for good.
    pub failed_requests: u64,
    /// Total request frames sent.
    pub requests_sent: u64,
}

/// Run the Figure 7 transfer in `partitions + 1` slices, dropping every
/// client connection on the daemon between slices.  The client's
/// supervisor must reconnect, resume its session and retry the
/// interrupted requests; the run fails if any slice does not complete.
pub fn run_faulty(megabytes: u64, partitions: u64) -> dopencl::Result<Fig7FaultyRun> {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("fig7-faulty", clock.clone())?;
    let before = client.traffic_stats();

    let slices = partitions + 1;
    let per_slice = (megabytes / slices).max(1);
    let mut write = Duration::ZERO;
    let mut read = Duration::ZERO;
    for slice in 0..slices {
        if slice > 0 {
            cluster.daemons()[0].drop_connections();
        }
        let times = dopencl_transfer_with(&client, &clock, per_slice)?;
        write += times.write;
        read += times.read;
    }

    let traffic = client.traffic_stats().delta(&before);
    let transferred = per_slice * slices;
    let pci_express = native_transfer(&DeviceProfile::gpu_tesla_s1070_unit(), transferred);
    Ok(Fig7FaultyRun {
        result: Fig7Result {
            megabytes: transferred,
            gigabit_ethernet: TransferTimes { write, read },
            pci_express,
        },
        partitions,
        reconnects: traffic.reconnects,
        recovered_requests: traffic.retries,
        failed_requests: traffic.failed_requests,
        requests_sent: traffic.requests_sent,
    })
}

/// The transfer size used by the paper's Figure 7.
pub const PAPER_TRANSFER_MB: u64 = 1024;

/// Sanity range used by tests: the paper's read bars are both in the
/// 2.5–14 s range for 1024 MB.
pub fn within_paper_axis(result: &Fig7Result) -> bool {
    result.gigabit_ethernet.read < Duration::from_secs(20)
        && result.gigabit_ethernet.write < Duration::from_secs(20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_run_recovers_every_slice() {
        let run = run_faulty(8, 3).unwrap();
        assert_eq!(run.partitions, 3);
        assert_eq!(run.result.megabytes, 8);
        assert!(run.reconnects >= 1, "each partition forces a reconnect");
        assert!(run.recovered_requests >= run.partitions, "every interrupted request is retried");
        assert!(run.result.gigabit_ethernet.write > Duration::ZERO);
        assert!(run.result.gigabit_ethernet.read > Duration::ZERO);
    }

    #[test]
    fn slowdowns_match_the_papers_ratios() {
        let result = run(PAPER_TRANSFER_MB).unwrap();
        let write_slowdown = result.write_slowdown();
        let read_slowdown = result.read_slowdown();
        assert!(
            (30.0..70.0).contains(&write_slowdown),
            "write slowdown {write_slowdown}, paper says up to ~50x"
        );
        assert!(
            (3.0..6.5).contains(&read_slowdown),
            "read slowdown {read_slowdown}, paper says ~4.5x"
        );
        assert!(within_paper_axis(&result));
        // 1024 MB over ~106 MB/s is roughly 10 s of network time.
        let write_secs = result.gigabit_ethernet.write.as_secs_f64();
        assert!((8.0..14.0).contains(&write_secs), "write took {write_secs}");
    }
}
