//! Figure 7: time to transfer 1024 MB to (write) and from (read) a device of
//! the GPU server, over Gigabit Ethernet through dOpenCL vs directly over
//! PCI Express — plus the sparse-update companion experiment measuring how
//! many bytes range-granular coherence moves compared to the whole-buffer
//! protocol when only a small fraction of a shared buffer is dirtied.

use dopencl::coherence::CoherenceMode;
use dopencl::{Context, LocalCluster};
use gcf::simtime::SimClock;
use gcf::LinkModel;
use std::time::Duration;
use vocl::{DeviceProfile, Platform};
use workloads::bandwidth::{dopencl_transfer_with, native_transfer, TransferTimes};

/// The four bars of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Result {
    /// Transfer size in MB.
    pub megabytes: u64,
    /// Through dOpenCL over Gigabit Ethernet.
    pub gigabit_ethernet: TransferTimes,
    /// Directly over the server's PCI Express bus.
    pub pci_express: TransferTimes,
}

impl Fig7Result {
    /// Ratio of the Gigabit Ethernet write time to the PCI Express write
    /// time (the paper reports "up to 50 times slower").
    pub fn write_slowdown(&self) -> f64 {
        self.gigabit_ethernet.write.as_secs_f64() / self.pci_express.write.as_secs_f64()
    }

    /// Ratio of the read times (the paper reports "about 4.5 times slower").
    pub fn read_slowdown(&self) -> f64 {
        self.gigabit_ethernet.read.as_secs_f64() / self.pci_express.read.as_secs_f64()
    }
}

/// A Figure 7 measurement together with the wire-traffic counters of the
/// dOpenCL run (for the recorded `BENCH_fig7.json` trajectory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Run {
    /// The four bars.
    pub result: Fig7Result,
    /// Requests the client sent during the transfer.
    pub requests_sent: u64,
    /// Completion notifications the daemon pushed back.
    pub notifications_received: u64,
}

/// Run the Figure 7 experiment with command batching switched on (`true`,
/// the production path) or off (the per-command round-trip baseline).
pub fn run_mode(megabytes: u64, batching: bool) -> dopencl::Result<Fig7Run> {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("fig7", clock.clone())?;
    client.set_batching(batching);
    let before = client.traffic_stats();
    let gigabit_ethernet = dopencl_transfer_with(&client, &clock, megabytes)?;
    let traffic = client.traffic_stats().delta(&before);
    let pci_express = native_transfer(&DeviceProfile::gpu_tesla_s1070_unit(), megabytes);
    Ok(Fig7Run {
        result: Fig7Result { megabytes, gigabit_ethernet, pci_express },
        requests_sent: traffic.requests_sent,
        notifications_received: traffic.notifications_received,
    })
}

/// Run the Figure 7 experiment for a transfer of `megabytes` MB.
pub fn run(megabytes: u64) -> dopencl::Result<Fig7Result> {
    Ok(run_mode(megabytes, true)?.result)
}

/// A Figure 7 run under injected faults: recovery counters recorded
/// alongside the transfer times (`BENCH_fig7_faulty.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7FaultyRun {
    /// The four bars, measured across all slices.
    pub result: Fig7Result,
    /// Number of partitions injected (connection drops on the daemon).
    pub partitions: u64,
    /// Successful re-handshakes performed by the client's supervisor.
    pub reconnects: u64,
    /// Requests recovered by retrying them after a reconnect.
    pub recovered_requests: u64,
    /// Requests that observed a dead connection at the endpoint level
    /// before the supervisor recovered it.  Every one of them was retried
    /// to completion — `run_faulty` errors if a request is lost for good.
    pub failed_requests: u64,
    /// Total request frames sent.
    pub requests_sent: u64,
}

/// Run the Figure 7 transfer in `partitions + 1` slices, dropping every
/// client connection on the daemon between slices.  The client's
/// supervisor must reconnect, resume its session and retry the
/// interrupted requests; the run fails if any slice does not complete.
pub fn run_faulty(megabytes: u64, partitions: u64) -> dopencl::Result<Fig7FaultyRun> {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("fig7-faulty", clock.clone())?;
    let before = client.traffic_stats();

    let slices = partitions + 1;
    let per_slice = (megabytes / slices).max(1);
    let mut write = Duration::ZERO;
    let mut read = Duration::ZERO;
    for slice in 0..slices {
        if slice > 0 {
            cluster.daemons()[0].drop_connections();
        }
        let times = dopencl_transfer_with(&client, &clock, per_slice)?;
        write += times.write;
        read += times.read;
    }

    let traffic = client.traffic_stats().delta(&before);
    let transferred = per_slice * slices;
    let pci_express = native_transfer(&DeviceProfile::gpu_tesla_s1070_unit(), transferred);
    Ok(Fig7FaultyRun {
        result: Fig7Result {
            megabytes: transferred,
            gigabit_ethernet: TransferTimes { write, read },
            pci_express,
        },
        partitions,
        reconnects: traffic.reconnects,
        recovered_requests: traffic.retries,
        failed_requests: traffic.failed_requests,
        requests_sent: traffic.requests_sent,
    })
}

/// Client-side wire traffic of one coherence mode during the sparse-update
/// phase (the patch writes plus everything coherence moved between nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseTraffic {
    /// Stream payload bytes the client sent: patch payloads + coherence
    /// uploads to the reading node.
    pub stream_bytes_sent: u64,
    /// Stream payload bytes the client received (the reads through node1).
    pub stream_bytes_received: u64,
    /// Wire requests sent.
    pub requests_sent: u64,
}

/// A/B measurement of the sparse-update workload: the same scattered
/// patches and cross-node reads, once under range-granular coherence and
/// once under the whole-buffer oracle (`BENCH_fig7.json`'s
/// `sparse_update` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseCoherenceRun {
    /// Shared buffer size in bytes.
    pub buffer_bytes: u64,
    /// Bytes dirtied per round (patch count x patch length).
    pub dirty_bytes_per_round: u64,
    /// Write-patches-then-read-remotely rounds.
    pub rounds: u64,
    /// Traffic under `CoherenceMode::Range`.
    pub range: SparseTraffic,
    /// Traffic under `CoherenceMode::Whole`.
    pub whole: SparseTraffic,
}

impl SparseCoherenceRun {
    /// How many times more bytes the whole-buffer protocol uploads for the
    /// identical (byte-for-byte) observable result.
    pub fn upload_reduction(&self) -> f64 {
        self.whole.stream_bytes_sent as f64 / self.range.stream_bytes_sent as f64
    }
}

/// One coherence mode of the sparse-update experiment: two daemons share a
/// buffer, node0's queue dirties `patches` scattered `patch_len`-byte
/// patches per round, then the buffer is read through node1 (which forces
/// the directory to re-validate node1's copy).  Returns the traffic of the
/// patch phase and the final read for the differential check.
fn sparse_mode(
    mode: CoherenceMode,
    buffer_bytes: usize,
    patches: usize,
    patch_len: usize,
    rounds: u64,
) -> dopencl::Result<(SparseTraffic, Vec<u8>)> {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("node0", &Platform::test_platform(1))?;
    cluster.add_node("node1", &Platform::test_platform(1))?;
    let client = cluster.client_with_clock("fig7-sparse", SimClock::new())?;
    client.set_coherence_mode(mode);
    let devices = client.devices();
    let context = Context::new(&client, &devices)?;
    let q0 = context.create_command_queue(&devices[0])?;
    let q1 = context.create_command_queue(&devices[1])?;
    let buffer = context.create_buffer(buffer_bytes)?;

    let base: Vec<u8> = (0..buffer_bytes).map(|i| (i % 251) as u8).collect();
    q0.write_buffer(&buffer, &base).blocking().submit()?;
    // Prime node1 so every round starts from a fully valid remote copy.
    let (primed, _) = q1.read_buffer(&buffer).submit()?;
    assert_eq!(primed, base, "both nodes must start from the same image");

    let stride = buffer_bytes / patches;
    let before = client.traffic_stats();
    let mut data = Vec::new();
    for round in 0..rounds {
        for k in 0..patches {
            let offset = k * stride;
            let patch: Vec<u8> =
                (0..patch_len).map(|i| (round as usize * 13 + k * 7 + i) as u8).collect();
            q0.write_buffer(&buffer, &patch).at_offset(offset).blocking().submit()?;
        }
        (data, _) = q1.read_buffer(&buffer).submit()?;
    }
    let traffic = client.traffic_stats().delta(&before);
    Ok((
        SparseTraffic {
            stream_bytes_sent: traffic.stream_bytes_sent,
            stream_bytes_received: traffic.stream_bytes_received,
            requests_sent: traffic.requests_sent,
        },
        data,
    ))
}

/// Run the sparse-update workload in both coherence modes and check the
/// final reads are byte-identical.  Under range coherence the client ships
/// each round's patches twice (once to node0, once as delta uploads to
/// node1); the whole-buffer oracle re-ships the entire buffer per round.
pub fn run_sparse_update(
    buffer_bytes: usize,
    patches: usize,
    patch_len: usize,
    rounds: u64,
) -> dopencl::Result<SparseCoherenceRun> {
    let (range, range_data) =
        sparse_mode(CoherenceMode::Range, buffer_bytes, patches, patch_len, rounds)?;
    let (whole, whole_data) =
        sparse_mode(CoherenceMode::Whole, buffer_bytes, patches, patch_len, rounds)?;
    assert_eq!(range_data, whole_data, "both coherence modes must observe the same bytes");
    Ok(SparseCoherenceRun {
        buffer_bytes: buffer_bytes as u64,
        dirty_bytes_per_round: (patches * patch_len) as u64,
        rounds,
        range,
        whole,
    })
}

/// The transfer size used by the paper's Figure 7.
pub const PAPER_TRANSFER_MB: u64 = 1024;

/// Sanity range used by tests: the paper's read bars are both in the
/// 2.5–14 s range for 1024 MB.
pub fn within_paper_axis(result: &Fig7Result) -> bool {
    result.gigabit_ethernet.read < Duration::from_secs(20)
        && result.gigabit_ethernet.write < Duration::from_secs(20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_run_recovers_every_slice() {
        let run = run_faulty(8, 3).unwrap();
        assert_eq!(run.partitions, 3);
        assert_eq!(run.result.megabytes, 8);
        assert!(run.reconnects >= 1, "each partition forces a reconnect");
        assert!(run.recovered_requests >= run.partitions, "every interrupted request is retried");
        assert!(run.result.gigabit_ethernet.write > Duration::ZERO);
        assert!(run.result.gigabit_ethernet.read > Duration::ZERO);
    }

    #[test]
    fn sparse_updates_ship_only_the_dirty_ranges() {
        let run = run_sparse_update(64 * 1024, 8, 256, 2).unwrap();
        let dirty = run.dirty_bytes_per_round;
        assert_eq!(run.dirty_bytes_per_round, 2048);
        // Per round: the patches go to node0 once, and the delta uploads
        // re-ship exactly the dirty bytes to node1.
        assert_eq!(run.range.stream_bytes_sent, run.rounds * 2 * dirty);
        // The oracle ships the patches plus the whole buffer per round.
        assert_eq!(run.whole.stream_bytes_sent, run.rounds * (dirty + run.buffer_bytes));
        assert!(
            run.upload_reduction() >= 5.0,
            "expected >=5x fewer upload bytes, got {:.1}x",
            run.upload_reduction()
        );
    }

    #[test]
    fn slowdowns_match_the_papers_ratios() {
        let result = run(PAPER_TRANSFER_MB).unwrap();
        let write_slowdown = result.write_slowdown();
        let read_slowdown = result.read_slowdown();
        assert!(
            (30.0..70.0).contains(&write_slowdown),
            "write slowdown {write_slowdown}, paper says up to ~50x"
        );
        assert!(
            (3.0..6.5).contains(&read_slowdown),
            "read slowdown {read_slowdown}, paper says ~4.5x"
        );
        assert!(within_paper_axis(&result));
        // 1024 MB over ~106 MB/s is roughly 10 s of network time.
        let write_secs = result.gigabit_ethernet.write.as_secs_f64();
        assert!((8.0..14.0).contains(&write_secs), "write took {write_secs}");
    }
}
