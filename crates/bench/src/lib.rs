//! # dcl-bench — harnesses regenerating every figure of the dOpenCL paper
//!
//! One module per figure of Section V:
//!
//! | Module | Paper figure | Command |
//! |---|---|---|
//! | [`fig4`] | Fig. 4 — Mandelbrot runtime, dOpenCL vs MPI+OpenCL, 2–16 devices | `cargo run -p dcl-bench --release --bin fig4_mandelbrot_scaling` |
//! | [`fig5`] | Fig. 5 — list-mode OSEM mean iteration runtime | `cargo run -p dcl-bench --release --bin fig5_osem` |
//! | [`fig6`] | Fig. 6 — concurrent clients with/without the device manager | `cargo run -p dcl-bench --release --bin fig6_device_manager` |
//! | [`fig7`] | Fig. 7 — 1024 MB transfer, Gigabit Ethernet vs PCI Express | `cargo run -p dcl-bench --release --bin fig7_transfer` |
//! | [`fig8`] | Fig. 8 — transfer efficiency vs size, with the iperf line | `cargo run -p dcl-bench --release --bin fig8_efficiency` |
//!
//! [`kernels`] is not a paper figure but the regression guard for the kernel
//! compile-and-execute pipeline: real wall-clock throughput of the bytecode
//! VM vs the tree-walking interpreter
//! (`cargo run -p dcl-bench --release --bin kernels_throughput`).
//!
//! ## Functional scale vs modelled scale
//!
//! The harnesses really run the applications through the middleware (kernels
//! execute, buffers move through the protocol, coherence and event
//! consistency do their work), but at a *functionally downscaled* problem
//! size; the modelled per-phase durations are then scaled back to the
//! paper's problem size.  Both scalings are linear (work and bytes scale
//! with pixel/event count), so the *shape* of every figure — who wins, by
//! roughly what factor, where the overheads sit — is preserved while the
//! harness stays runnable in seconds on any machine.  The scaling factors
//! are reported next to every table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod kernels;
pub mod report;

pub use report::print_table;
