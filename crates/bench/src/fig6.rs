//! Figure 6: average runtime of the Mandelbrot application when 1–4
//! application instances share the GPU server concurrently, with and without
//! the device manager.

use devmgr::{
    DeviceManager, DeviceManagerServer, DeviceRequirement, ManagedDaemon, SchedulingStrategy,
};
use dopencl::{Context, DeviceType, LocalCluster, PhaseBreakdown, SimClock, Value};
use gcf::LinkModel;
use std::sync::Arc;
use std::time::Duration;
use vocl::{NdRange, Platform};
use workloads::mandelbrot::{MandelbrotParams, BUILTIN_KERNEL};

/// One bar of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Number of concurrently running application instances.
    pub clients: usize,
    /// Whether the device manager mediated device assignment.
    pub with_device_manager: bool,
    /// Average modelled runtime of a single application instance.
    pub breakdown: PhaseBreakdown,
}

fn scale(b: PhaseBreakdown, work_scale: f64) -> PhaseBreakdown {
    PhaseBreakdown {
        initialization: b.initialization,
        execution: Duration::from_secs_f64(b.execution.as_secs_f64() * work_scale),
        data_transfer: Duration::from_secs_f64(b.data_transfer.as_secs_f64() * work_scale),
    }
}

/// Run one client's Mandelbrot instance on the single GPU device it sees and
/// return its unscaled breakdown.
fn run_instance(
    client: &dopencl::Client,
    clock: &SimClock,
    func: &MandelbrotParams,
) -> dopencl::Result<PhaseBreakdown> {
    let devices = client.devices();
    let device = devices
        .first()
        .ok_or_else(|| dopencl::DclError::InvalidArgument("client has no device".into()))?;
    let context = Context::new(client, std::slice::from_ref(device))?;
    let queue = context.create_command_queue(device)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;
    let buffer = context.create_buffer(func.pixels() * 4)?;
    let kernel = program.create_kernel(BUILTIN_KERNEL)?;
    kernel.set_arg(0, &buffer)?;
    kernel.set_arg(1, Value::uint(func.width as u64))?;
    kernel.set_arg(2, Value::uint(func.height as u64))?;
    kernel.set_arg(3, Value::double(func.x_min))?;
    kernel.set_arg(4, Value::double(func.y_min))?;
    kernel.set_arg(5, Value::double(func.dx()))?;
    kernel.set_arg(6, Value::double(func.dy()))?;
    kernel.set_arg(7, Value::uint(0))?;
    kernel.set_arg(8, Value::uint(func.max_iter as u64))?;
    let event = queue.launch(&kernel, NdRange::two_d(func.width, func.height)).submit()?;
    event.wait()?;
    let (_data, read) = queue.read_buffer(&buffer).submit()?;
    read.wait()?;
    let measured = clock.breakdown();
    Ok(PhaseBreakdown {
        initialization: measured.initialization,
        execution: event.modeled_duration(),
        data_transfer: measured.data_transfer,
    })
}

/// Average runtime of one instance when `clients` run concurrently **with**
/// the device manager: each client is assigned its own GPU, so execution
/// stays flat; the shared Gigabit Ethernet link is divided between them.
pub fn with_device_manager(clients: usize, functional_scale: usize) -> dopencl::Result<Fig6Row> {
    workloads::register_all_built_in_kernels();
    let paper = MandelbrotParams::paper();
    let func = paper.downscaled(functional_scale);
    let work_scale = paper.pixels() as f64 / func.pixels() as f64;

    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
    let dm_server = DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr")
        .map_err(|e| dopencl::DclError::Protocol(e.to_string()))?;
    let platform = Platform::gpu_server();
    let managed = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpuserver",
        "gpuserver",
        platform.devices(),
    )
    .map_err(|e| dopencl::DclError::Protocol(e.to_string()))?;
    cluster.add_node_with_policy("gpuserver", &platform, managed.policy())?;

    let requirement =
        vec![DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    let mut breakdowns = Vec::new();
    for i in 0..clients {
        let clock = SimClock::new();
        let client = cluster.detached_client(&format!("instance-{i}"), clock.clone());
        let assignment = devmgr::request_assignment(
            &transport,
            dm_server.address(),
            &format!("instance-{i}"),
            &requirement,
        )
        .map_err(|e| dopencl::DclError::Protocol(e.to_string()))?;
        client.set_auth_id(Some(assignment.auth_id.clone()));
        for server in &assignment.servers {
            client.connect_server(server)?;
        }
        // Each client sees exactly the one GPU of its lease.
        assert_eq!(client.devices().len(), 1);
        breakdowns.push(run_instance(&client, &clock, &func)?);
    }

    // Average, then apply the shared-link effect: the server's network
    // bandwidth is divided among the concurrent instances, and the server
    // needs slightly longer to create the additional management objects.
    let avg = average(&breakdowns);
    let contended = PhaseBreakdown {
        initialization: avg.initialization.mul_f64(1.0 + 0.15 * (clients as f64 - 1.0)),
        execution: avg.execution,
        data_transfer: avg.data_transfer.mul_f64(clients as f64),
    };
    Ok(Fig6Row { clients, with_device_manager: true, breakdown: scale(contended, work_scale) })
}

/// Average runtime **without** the device manager: every instance picks the
/// first device of the server, so all kernels serialize on GPU 0.
pub fn without_device_manager(clients: usize, functional_scale: usize) -> dopencl::Result<Fig6Row> {
    workloads::register_all_built_in_kernels();
    let paper = MandelbrotParams::paper();
    let func = paper.downscaled(functional_scale);
    let work_scale = paper.pixels() as f64 / func.pixels() as f64;

    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;

    let mut breakdowns = Vec::new();
    for i in 0..clients {
        let clock = SimClock::new();
        let client = cluster.client_with_clock(&format!("instance-{i}"), clock.clone())?;
        // Without the device manager every instance freely chooses a device
        // — and they all pick the first GPU (the paper's observed worst
        // case).
        let gpus = client.devices_of(DeviceType::Gpu);
        let first = gpus[0].clone();
        let context = Context::new(&client, std::slice::from_ref(&first))?;
        drop(context);
        breakdowns.push(run_instance(&client, &clock, &func)?);
    }
    let avg = average(&breakdowns);
    // All instances share one device: kernel executions are arbitrarily
    // interleaved and effectively serialized, so a single instance observes
    // up to `clients`× its own execution time (Section V-C).
    let contended = PhaseBreakdown {
        initialization: avg.initialization,
        execution: avg.execution.mul_f64(clients as f64),
        data_transfer: avg.data_transfer.mul_f64(clients as f64),
    };
    Ok(Fig6Row { clients, with_device_manager: false, breakdown: scale(contended, work_scale) })
}

fn average(breakdowns: &[PhaseBreakdown]) -> PhaseBreakdown {
    let n = breakdowns.len().max(1) as u32;
    let sum = PhaseBreakdown::serial_over(breakdowns.iter().copied());
    PhaseBreakdown {
        initialization: sum.initialization / n,
        execution: sum.execution / n,
        data_transfer: sum.data_transfer / n,
    }
}

/// Run the full Figure 6 sweep.
pub fn run(client_counts: &[usize], functional_scale: usize) -> dopencl::Result<Vec<Fig6Row>> {
    let mut rows = Vec::new();
    for &clients in client_counts {
        rows.push(without_device_manager(clients, functional_scale)?);
        rows.push(with_device_manager(clients, functional_scale)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_manager_keeps_execution_flat_under_contention() {
        let rows = run(&[1, 3], 24).unwrap();
        let without_1 = &rows[0];
        let with_1 = &rows[1];
        let without_3 = &rows[2];
        let with_3 = &rows[3];
        // With the device manager, per-instance execution time does not grow
        // with the number of concurrent instances.
        let exec_growth =
            with_3.breakdown.execution.as_secs_f64() / with_1.breakdown.execution.as_secs_f64();
        assert!((0.8..1.2).contains(&exec_growth), "execution grew by {exec_growth}");
        // Without it, instances serialize on one device.
        let serial_growth = without_3.breakdown.execution.as_secs_f64()
            / without_1.breakdown.execution.as_secs_f64();
        assert!(serial_growth > 2.0, "expected ~3x serialization, got {serial_growth}");
        // And the overall runtime with the manager is clearly better at 3
        // concurrent clients.
        assert!(with_3.breakdown.total() < without_3.breakdown.total());
    }
}
