//! Figure 6: average runtime of the Mandelbrot application when 1–4
//! application instances share the GPU server concurrently, with and without
//! the device manager.
//!
//! Beyond the paper's figure, this module also benchmarks the *cluster
//! resource manager* that grew out of the device manager:
//!
//! * [`cluster_contention`] — ≥ 200 concurrent clients requesting fractional
//!   GPU shares from a 2-node cluster, recording per-policy assignment tail
//!   latency (p50/p95/p99) and the per-client completed-work spread
//!   ([`Strategy::Fair`] keeps max/min ≤ 2× while `FirstFit` starves
//!   latecomers outright).
//! * [`migration_bit_correctness`] — a lease is revoked from a draining node
//!   mid-computation and migrated; the client follows the
//!   [`devmgr::watch_lease`] push, reconnects via
//!   [`dopencl::Client::sync_servers`], and finishes the workload
//!   bit-correct on the new node.

use crate::report::Percentiles;
use devmgr::{
    DeviceManager, DeviceManagerServer, DeviceRequirement, DmShareRequest, ManagedDaemon,
    SchedulingStrategy,
};
use dopencl::{Context, DeviceType, LocalCluster, PhaseBreakdown, SimClock, Value};
use gcf::LinkModel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vocl::{NdRange, Platform};
use workloads::mandelbrot::{compute_rows, MandelbrotParams, BUILTIN_KERNEL};

/// One bar of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Number of concurrently running application instances.
    pub clients: usize,
    /// Whether the device manager mediated device assignment.
    pub with_device_manager: bool,
    /// Average modelled runtime of a single application instance.
    pub breakdown: PhaseBreakdown,
}

fn scale(b: PhaseBreakdown, work_scale: f64) -> PhaseBreakdown {
    PhaseBreakdown {
        initialization: b.initialization,
        execution: Duration::from_secs_f64(b.execution.as_secs_f64() * work_scale),
        data_transfer: Duration::from_secs_f64(b.data_transfer.as_secs_f64() * work_scale),
    }
}

/// Run one client's Mandelbrot instance on the single GPU device it sees and
/// return its unscaled breakdown.
fn run_instance(
    client: &dopencl::Client,
    clock: &SimClock,
    func: &MandelbrotParams,
) -> dopencl::Result<PhaseBreakdown> {
    let devices = client.devices();
    let device = devices
        .first()
        .ok_or_else(|| dopencl::DclError::InvalidArgument("client has no device".into()))?;
    let context = Context::new(client, std::slice::from_ref(device))?;
    let queue = context.create_command_queue(device)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;
    let buffer = context.create_buffer(func.pixels() * 4)?;
    let kernel = program.create_kernel(BUILTIN_KERNEL)?;
    kernel.set_arg(0, &buffer)?;
    kernel.set_arg(1, Value::uint(func.width as u64))?;
    kernel.set_arg(2, Value::uint(func.height as u64))?;
    kernel.set_arg(3, Value::double(func.x_min))?;
    kernel.set_arg(4, Value::double(func.y_min))?;
    kernel.set_arg(5, Value::double(func.dx()))?;
    kernel.set_arg(6, Value::double(func.dy()))?;
    kernel.set_arg(7, Value::uint(0))?;
    kernel.set_arg(8, Value::uint(func.max_iter as u64))?;
    let event = queue.launch(&kernel, NdRange::two_d(func.width, func.height)).submit()?;
    event.wait()?;
    let (_data, read) = queue.read_buffer(&buffer).submit()?;
    read.wait()?;
    let measured = clock.breakdown();
    Ok(PhaseBreakdown {
        initialization: measured.initialization,
        execution: event.modeled_duration(),
        data_transfer: measured.data_transfer,
    })
}

/// Average runtime of one instance when `clients` run concurrently **with**
/// the device manager: each client is assigned its own GPU, so execution
/// stays flat; the shared Gigabit Ethernet link is divided between them.
pub fn with_device_manager(clients: usize, functional_scale: usize) -> dopencl::Result<Fig6Row> {
    workloads::register_all_built_in_kernels();
    let paper = MandelbrotParams::paper();
    let func = paper.downscaled(functional_scale);
    let work_scale = paper.pixels() as f64 / func.pixels() as f64;

    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
    let dm_server = DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr")
        .map_err(|e| dopencl::DclError::Protocol(e.to_string()))?;
    let platform = Platform::gpu_server();
    let managed = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpuserver",
        "gpuserver",
        platform.devices(),
    )
    .map_err(|e| dopencl::DclError::Protocol(e.to_string()))?;
    cluster.add_node_with_policy("gpuserver", &platform, managed.policy())?;

    let requirement =
        vec![DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    let mut breakdowns = Vec::new();
    for i in 0..clients {
        let clock = SimClock::new();
        let client = cluster.detached_client(&format!("instance-{i}"), clock.clone());
        let assignment = devmgr::request_assignment(
            &transport,
            dm_server.address(),
            &format!("instance-{i}"),
            &requirement,
        )
        .map_err(|e| dopencl::DclError::Protocol(e.to_string()))?;
        client.set_auth_id(Some(assignment.auth_id.clone()));
        for server in &assignment.servers {
            client.connect_server(server)?;
        }
        // Each client sees exactly the one GPU of its lease.
        assert_eq!(client.devices().len(), 1);
        breakdowns.push(run_instance(&client, &clock, &func)?);
    }

    // Average, then apply the shared-link effect: the server's network
    // bandwidth is divided among the concurrent instances, and the server
    // needs slightly longer to create the additional management objects.
    let avg = average(&breakdowns);
    let contended = PhaseBreakdown {
        initialization: avg.initialization.mul_f64(1.0 + 0.15 * (clients as f64 - 1.0)),
        execution: avg.execution,
        data_transfer: avg.data_transfer.mul_f64(clients as f64),
    };
    Ok(Fig6Row { clients, with_device_manager: true, breakdown: scale(contended, work_scale) })
}

/// Average runtime **without** the device manager: every instance picks the
/// first device of the server, so all kernels serialize on GPU 0.
pub fn without_device_manager(clients: usize, functional_scale: usize) -> dopencl::Result<Fig6Row> {
    workloads::register_all_built_in_kernels();
    let paper = MandelbrotParams::paper();
    let func = paper.downscaled(functional_scale);
    let work_scale = paper.pixels() as f64 / func.pixels() as f64;

    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;

    let mut breakdowns = Vec::new();
    for i in 0..clients {
        let clock = SimClock::new();
        let client = cluster.client_with_clock(&format!("instance-{i}"), clock.clone())?;
        // Without the device manager every instance freely chooses a device
        // — and they all pick the first GPU (the paper's observed worst
        // case).
        let gpus = client.devices_of(DeviceType::Gpu);
        let first = gpus[0].clone();
        let context = Context::new(&client, std::slice::from_ref(&first))?;
        drop(context);
        breakdowns.push(run_instance(&client, &clock, &func)?);
    }
    let avg = average(&breakdowns);
    // All instances share one device: kernel executions are arbitrarily
    // interleaved and effectively serialized, so a single instance observes
    // up to `clients`× its own execution time (Section V-C).
    let contended = PhaseBreakdown {
        initialization: avg.initialization,
        execution: avg.execution.mul_f64(clients as f64),
        data_transfer: avg.data_transfer.mul_f64(clients as f64),
    };
    Ok(Fig6Row { clients, with_device_manager: false, breakdown: scale(contended, work_scale) })
}

fn average(breakdowns: &[PhaseBreakdown]) -> PhaseBreakdown {
    let n = breakdowns.len().max(1) as u32;
    let sum = PhaseBreakdown::serial_over(breakdowns.iter().copied());
    PhaseBreakdown {
        initialization: sum.initialization / n,
        execution: sum.execution / n,
        data_transfer: sum.data_transfer / n,
    }
}

/// Run the full Figure 6 sweep.
pub fn run(client_counts: &[usize], functional_scale: usize) -> dopencl::Result<Vec<Fig6Row>> {
    let mut rows = Vec::new();
    for &clients in client_counts {
        rows.push(without_device_manager(clients, functional_scale)?);
        rows.push(with_device_manager(clients, functional_scale)?);
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Cluster resource manager: contention and migration benchmarks
// ---------------------------------------------------------------------------

/// One policy's results from the cluster-contention benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionRow {
    /// Scheduling policy under test.
    pub policy: SchedulingStrategy,
    /// Number of concurrent clients driven at the manager.
    pub clients: usize,
    /// Clients whose share request was admitted.
    pub admitted: usize,
    /// Clients turned away with `Saturated`.
    pub rejected: usize,
    /// Wall-clock `request_shares` latency percentiles in milliseconds.
    pub latency_ms: Percentiles,
    /// Smallest per-client completed work (steady-state granted compute
    /// millis; 0 for a rejected client).
    pub min_work: u64,
    /// Largest per-client completed work.
    pub max_work: u64,
}

impl ContentionRow {
    /// Max/min completed-work ratio across all clients; `None` when at least
    /// one client completed nothing (the FirstFit starvation case).
    pub fn work_ratio(&self) -> Option<f64> {
        if self.min_work == 0 {
            None
        } else {
            Some(self.max_work as f64 / self.min_work as f64)
        }
    }
}

/// Drive `clients` concurrent threads at a 2-node cluster (2 × 4 GPUs), each
/// requesting a fractional GPU share (desired: a whole device, floor: 1% of
/// one), and record assignment latency plus the final per-client share once
/// the dust settles.  Under [`SchedulingStrategy::Fair`] every client is
/// admitted and rebalancing equalises the shares; under `FirstFit` the first
/// eight clients take whole devices and everyone else starves.
pub fn cluster_contention(
    policy: SchedulingStrategy,
    clients: usize,
) -> devmgr::Result<ContentionRow> {
    let transport: Arc<dyn gcf::Transport> =
        Arc::new(gcf::transport::inproc::InprocTransport::new());
    let dm = DeviceManager::new(policy);
    let dm_server = DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr")?;
    let platform_a = Platform::gpu_server();
    let platform_b = Platform::gpu_server();
    let _node_a = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpu-a",
        "gpu-a",
        platform_a.devices(),
    )?;
    let _node_b = ManagedDaemon::connect(
        Arc::clone(&transport),
        dm_server.address(),
        "gpu-b",
        "gpu-b",
        platform_b.devices(),
    )?;

    let share = DmShareRequest {
        count: 1,
        attributes: vec![("TYPE".into(), "GPU".into())],
        compute_millis: devmgr::FULL_COMPUTE_MILLIS,
        min_millis: 10,
        mem_bytes: 0,
    };
    let dm_address = dm_server.address().to_string();
    let mut outcomes: Vec<(f64, Option<String>)> = Vec::with_capacity(clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let transport = Arc::clone(&transport);
                let dm_address = dm_address.clone();
                let share = share.clone();
                scope.spawn(move || {
                    let started = Instant::now();
                    let result = devmgr::request_shares(
                        &transport,
                        &dm_address,
                        &format!("client-{i}"),
                        1,
                        std::slice::from_ref(&share),
                    );
                    let latency_ms = started.elapsed().as_secs_f64() * 1e3;
                    (latency_ms, result.ok().map(|a| a.auth_id))
                })
            })
            .collect();
        for handle in handles {
            outcomes.push(handle.join().expect("contention client thread"));
        }
    });

    // Steady-state completed work per client: the compute millis the lease
    // ended up with after every admission (and any Fair rebalance) landed.
    // A client that was never admitted completed no work at all.
    let mut work = Vec::with_capacity(clients);
    for (_, auth_id) in &outcomes {
        let millis = match auth_id {
            Some(id) => devmgr::get_lease(&transport, &dm_address, id)?
                .iter()
                .map(|g| g.compute_millis as u64)
                .sum(),
            None => 0,
        };
        work.push(millis);
    }
    let latencies: Vec<f64> = outcomes.iter().map(|(ms, _)| *ms).collect();
    let admitted = outcomes.iter().filter(|(_, id)| id.is_some()).count();
    Ok(ContentionRow {
        policy,
        clients,
        admitted,
        rejected: clients - admitted,
        latency_ms: Percentiles::of(&latencies),
        min_work: work.iter().copied().min().unwrap_or(0),
        max_work: work.iter().copied().max().unwrap_or(0),
    })
}

/// The outcome of the drain-and-migrate bit-correctness scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRow {
    /// Server the lease started on.
    pub from_server: String,
    /// Server the lease finished on.
    pub to_server: String,
    /// Row bands computed before the migration.
    pub bands_before: usize,
    /// Row bands computed after the migration.
    pub bands_after: usize,
    /// Whether the stitched image matches the single-node reference exactly.
    pub bit_correct: bool,
}

/// Compute one band of Mandelbrot rows on `device`, self-contained (own
/// context, queue and buffer), returning the per-pixel iteration counts.
fn run_band(
    client: &dopencl::Client,
    device: &dopencl::Device,
    params: &MandelbrotParams,
    row_offset: usize,
    rows: usize,
) -> dopencl::Result<Vec<u32>> {
    let context = Context::new(client, std::slice::from_ref(device))?;
    let queue = context.create_command_queue(device)?;
    let program = context.create_program_with_built_in_kernels(BUILTIN_KERNEL)?;
    program.build()?;
    let buffer = context.create_buffer(params.width * rows * 4)?;
    let kernel = program.create_kernel(BUILTIN_KERNEL)?;
    kernel.set_arg(0, &buffer)?;
    kernel.set_arg(1, Value::uint(params.width as u64))?;
    kernel.set_arg(2, Value::uint(rows as u64))?;
    kernel.set_arg(3, Value::double(params.x_min))?;
    kernel.set_arg(4, Value::double(params.y_min))?;
    kernel.set_arg(5, Value::double(params.dx()))?;
    kernel.set_arg(6, Value::double(params.dy()))?;
    kernel.set_arg(7, Value::uint(row_offset as u64))?;
    kernel.set_arg(8, Value::uint(params.max_iter as u64))?;
    queue.launch(&kernel, NdRange::two_d(params.width, rows)).submit()?.wait()?;
    let (data, _) = queue.read_buffer(&buffer).submit()?;
    Ok(data.chunks_exact(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect())
}

/// Drain-and-migrate scenario: a client computes a Mandelbrot image in row
/// bands on its leased GPU while the node it runs on is drained for
/// maintenance.  The resource manager revokes the share, migrates the lease
/// to the second node and pushes a `LeaseChanged` notice; the client syncs
/// its server roster and finishes the remaining bands there.  The stitched
/// image must be bit-identical to the single-node reference.
pub fn migration_bit_correctness() -> dopencl::Result<MigrationRow> {
    workloads::register_all_built_in_kernels();
    let params = MandelbrotParams::small();
    let band_rows = params.height / 8;
    let protocol = |e: devmgr::DevMgrError| dopencl::DclError::Protocol(e.to_string());

    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());
    let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
    let dm_server = DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr")
        .map_err(protocol)?;
    for name in ["gpu-a", "gpu-b"] {
        let platform = Platform::gpu_server();
        let managed = ManagedDaemon::connect(
            Arc::clone(&transport),
            dm_server.address(),
            name,
            name,
            platform.devices(),
        )
        .map_err(protocol)?;
        cluster.add_node_with_policy(name, &platform, managed.policy())?;
    }

    let requirement =
        vec![DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }];
    let assignment =
        devmgr::request_assignment(&transport, dm_server.address(), "migrator", &requirement)
            .map_err(protocol)?;
    let from_server = assignment.servers[0].clone();

    let notices = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&notices);
    let _watch = devmgr::watch_lease(&transport, dm_server.address(), &assignment.auth_id, {
        move |notice| sink.lock().unwrap().push(notice)
    })
    .map_err(protocol)?;

    let client = cluster.detached_client("migrator", SimClock::new());
    client.set_auth_id(Some(assignment.auth_id.clone()));
    for server in &assignment.servers {
        client.connect_server(server)?;
    }

    // First half of the image on the original node.
    let mut image = Vec::with_capacity(params.pixels());
    let bands_before = 4;
    for band in 0..bands_before {
        let device = client.devices()[0].clone();
        image.extend(run_band(&client, &device, &params, band * band_rows, band_rows)?);
    }

    // Drain the node the lease lives on: the manager revokes the share,
    // re-places it on the other node and pushes LeaseChanged{Migrated}.
    devmgr::drain_server(&transport, dm_server.address(), &from_server).map_err(protocol)?;
    // Generous: the notice arrives in milliseconds on an idle machine, but
    // CI boxes run this while compiling or testing in parallel.
    let deadline = Instant::now() + Duration::from_secs(30);
    let servers = loop {
        if let Some(notice) = notices.lock().unwrap().first() {
            break notice.servers.clone();
        }
        if Instant::now() > deadline {
            return Err(dopencl::DclError::Protocol("no LeaseChanged notice".into()));
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let to_server = servers[0].clone();
    client.sync_servers(&servers)?;

    // Remaining bands on the migrated lease's new node.
    let total_bands = params.height / band_rows;
    for band in bands_before..total_bands {
        let device = client.devices()[0].clone();
        image.extend(run_band(&client, &device, &params, band * band_rows, band_rows)?);
    }

    let (reference, _) = compute_rows(&params, 0, params.height);
    Ok(MigrationRow {
        from_server,
        to_server,
        bands_before,
        bands_after: total_bands - bands_before,
        bit_correct: image == reference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_manager_keeps_execution_flat_under_contention() {
        let rows = run(&[1, 3], 24).unwrap();
        let without_1 = &rows[0];
        let with_1 = &rows[1];
        let without_3 = &rows[2];
        let with_3 = &rows[3];
        // With the device manager, per-instance execution time does not grow
        // with the number of concurrent instances.
        let exec_growth =
            with_3.breakdown.execution.as_secs_f64() / with_1.breakdown.execution.as_secs_f64();
        assert!((0.8..1.2).contains(&exec_growth), "execution grew by {exec_growth}");
        // Without it, instances serialize on one device.
        let serial_growth = without_3.breakdown.execution.as_secs_f64()
            / without_1.breakdown.execution.as_secs_f64();
        assert!(serial_growth > 2.0, "expected ~3x serialization, got {serial_growth}");
        // And the overall runtime with the manager is clearly better at 3
        // concurrent clients.
        assert!(with_3.breakdown.total() < without_3.breakdown.total());
    }

    #[test]
    fn fair_spreads_work_while_first_fit_starves() {
        let fair = cluster_contention(SchedulingStrategy::Fair, 40).unwrap();
        assert_eq!(fair.rejected, 0, "Fair admits everyone via rebalancing");
        let ratio = fair.work_ratio().expect("every client completed work");
        assert!(ratio <= 2.0, "fair max/min completed-work ratio {ratio} > 2");
        assert!(fair.latency_ms.p50 <= fair.latency_ms.p99);

        let first_fit = cluster_contention(SchedulingStrategy::FirstFit, 40).unwrap();
        assert_eq!(first_fit.admitted, 8, "one whole device per early client");
        assert_eq!(first_fit.min_work, 0, "latecomers starve under FirstFit");
        assert!(first_fit.work_ratio().is_none());
    }

    #[test]
    fn drained_lease_finishes_bit_correct_on_the_new_node() {
        let row = migration_bit_correctness().unwrap();
        assert_ne!(row.from_server, row.to_server);
        assert!(row.bands_after > 0);
        assert!(row.bit_correct, "stitched image must match the reference");
    }
}
