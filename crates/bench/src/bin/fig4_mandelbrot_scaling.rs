//! Regenerates Figure 4: Mandelbrot runtime with dOpenCL vs MPI+OpenCL on
//! 2, 4, 8 and 16 devices of the Infiniband cluster.

use dcl_bench::report::{print_table, secs};

fn main() {
    let functional_scale = 10;
    let device_counts = [2usize, 4, 8, 16];
    println!("Figure 4 — Mandelbrot 4800x3200, 20000 max iterations, Infiniband CPU cluster");
    println!(
        "(functional computation downscaled by {functional_scale}x per dimension; execution and \
         transfer scaled back to paper size)"
    );
    let rows = dcl_bench::fig4::run(&device_counts, functional_scale).expect("figure 4 harness");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.devices.to_string(),
                r.variant.to_string(),
                secs(r.breakdown.initialization),
                secs(r.breakdown.execution),
                secs(r.breakdown.data_transfer),
                secs(r.breakdown.total()),
            ]
        })
        .collect();
    print_table(
        "Runtime of the Mandelbrot application (seconds)",
        &["devices", "variant", "initialization", "execution", "data transfer", "total"],
        &table,
    );
}
