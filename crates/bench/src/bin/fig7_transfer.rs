//! Regenerates Figure 7: time to transfer 1024 MB to and from a device over
//! Gigabit Ethernet (through dOpenCL) vs PCI Express (native).

use dcl_bench::fig7::{run, PAPER_TRANSFER_MB};
use dcl_bench::report::{print_table, secs};

fn main() {
    println!("Figure 7 — transfer of {PAPER_TRANSFER_MB} MB to (write) / from (read) a GPU device");
    let result = run(PAPER_TRANSFER_MB).expect("figure 7 harness");
    print_table(
        "Transfer time (seconds)",
        &["direction", "Gigabit Ethernet (dOpenCL)", "PCI Express (native)"],
        &[
            vec![
                "write".to_string(),
                secs(result.gigabit_ethernet.write),
                secs(result.pci_express.write),
            ],
            vec![
                "read".to_string(),
                secs(result.gigabit_ethernet.read),
                secs(result.pci_express.read),
            ],
        ],
    );
    println!(
        "\n  write slowdown: {:.1}x (paper: up to ~50x)   read slowdown: {:.1}x (paper: ~4.5x)",
        result.write_slowdown(),
        result.read_slowdown()
    );
}
