//! Regenerates Figure 7: time to transfer 1024 MB to and from a device over
//! Gigabit Ethernet (through dOpenCL) vs PCI Express (native).
//!
//! Usage: `fig7_transfer [--smoke] [--faulty] [--json PATH]`
//!
//! `--smoke` shrinks the transfer to 64 MB for CI; `--json PATH` records the
//! before (unbatched) and after (batched) runs as a `BENCH_fig7.json`
//! trajectory file.  `--faulty` instead runs the transfer under injected
//! faults (the daemon drops every connection between slices) and records
//! the recovery counters — `BENCH_fig7_faulty.json` in CI.

use dcl_bench::fig7::{
    run_faulty, run_mode, run_sparse_update, Fig7Run, SparseCoherenceRun, PAPER_TRANSFER_MB,
};
use dcl_bench::report::{print_table, secs, write_json, JsonValue};

const SMOKE_TRANSFER_MB: u64 = 64;
const FAULTY_PARTITIONS: u64 = 3;

// Sparse-update companion experiment: a shared buffer with ~1.2 % dirtied
// per round, read back through the second daemon.  The patch count stays
// below the directory's fragmentation cap (32) — beyond it the delta plan
// deliberately collapses to a whole-buffer transfer.
const SPARSE_BUFFER_BYTES: usize = 4 * 1024 * 1024;
const SPARSE_PATCHES: usize = 24;
const SPARSE_PATCH_LEN: usize = 2048;
const SPARSE_ROUNDS: u64 = 4;
const SMOKE_SPARSE_BUFFER_BYTES: usize = 256 * 1024;
const SMOKE_SPARSE_PATCHES: usize = 16;
const SMOKE_SPARSE_PATCH_LEN: usize = 512;
const SMOKE_SPARSE_ROUNDS: u64 = 2;

fn faulty_main(megabytes: u64, smoke: bool, json_path: Option<String>) {
    println!(
        "Figure 7 (faulty) — {megabytes} MB transfer with {FAULTY_PARTITIONS} injected partitions"
    );
    let run = run_faulty(megabytes, FAULTY_PARTITIONS).expect("figure 7 faulty harness");
    print_table(
        "Transfer time under faults (seconds)",
        &["direction", "Gigabit Ethernet (dOpenCL)", "PCI Express (native)"],
        &[
            vec![
                "write".to_string(),
                secs(run.result.gigabit_ethernet.write),
                secs(run.result.pci_express.write),
            ],
            vec![
                "read".to_string(),
                secs(run.result.gigabit_ethernet.read),
                secs(run.result.pci_express.read),
            ],
        ],
    );
    println!(
        "\n  partitions: {}   reconnects: {}   recovered requests: {}   failed requests: {}",
        run.partitions, run.reconnects, run.recovered_requests, run.failed_requests
    );
    assert!(
        run.recovered_requests >= run.partitions,
        "every request interrupted by a partition must be retried to completion"
    );

    if let Some(path) = json_path {
        let report = JsonValue::obj([
            ("figure", JsonValue::str("fig7_faulty")),
            ("megabytes", JsonValue::num(run.result.megabytes as f64)),
            ("smoke", JsonValue::Bool(smoke)),
            ("partitions", JsonValue::num(run.partitions as f64)),
            ("reconnects", JsonValue::num(run.reconnects as f64)),
            ("recovered_requests", JsonValue::num(run.recovered_requests as f64)),
            ("failed_requests", JsonValue::num(run.failed_requests as f64)),
            ("requests_sent", JsonValue::num(run.requests_sent as f64)),
            ("write_seconds", JsonValue::Num(run.result.gigabit_ethernet.write.as_secs_f64())),
            ("read_seconds", JsonValue::Num(run.result.gigabit_ethernet.read.as_secs_f64())),
        ]);
        write_json(&path, &report).expect("write JSON report");
        println!("  wrote {path}");
    }
}

fn run_json(run: &Fig7Run) -> JsonValue {
    JsonValue::obj([
        ("write_seconds", JsonValue::Num(run.result.gigabit_ethernet.write.as_secs_f64())),
        ("read_seconds", JsonValue::Num(run.result.gigabit_ethernet.read.as_secs_f64())),
        ("requests_sent", JsonValue::num(run.requests_sent as f64)),
        ("notifications_received", JsonValue::num(run.notifications_received as f64)),
    ])
}

fn sparse_main(smoke: bool) -> SparseCoherenceRun {
    let (bytes, patches, patch_len, rounds) = if smoke {
        (
            SMOKE_SPARSE_BUFFER_BYTES,
            SMOKE_SPARSE_PATCHES,
            SMOKE_SPARSE_PATCH_LEN,
            SMOKE_SPARSE_ROUNDS,
        )
    } else {
        (SPARSE_BUFFER_BYTES, SPARSE_PATCHES, SPARSE_PATCH_LEN, SPARSE_ROUNDS)
    };
    let run = run_sparse_update(bytes, patches, patch_len, rounds).expect("sparse-update harness");
    println!(
        "\nSparse updates — {} KB buffer, {} KB dirtied/round, {} rounds, read through node1",
        run.buffer_bytes / 1024,
        run.dirty_bytes_per_round / 1024,
        run.rounds
    );
    print_table(
        "Client upload traffic (bytes)",
        &["coherence", "stream bytes sent", "requests"],
        &[
            vec![
                "range deltas".to_string(),
                run.range.stream_bytes_sent.to_string(),
                run.range.requests_sent.to_string(),
            ],
            vec![
                "whole buffer".to_string(),
                run.whole.stream_bytes_sent.to_string(),
                run.whole.requests_sent.to_string(),
            ],
        ],
    );
    println!(
        "  upload reduction: {:.1}x (bit-identical reads in both modes)",
        run.upload_reduction()
    );
    assert!(
        run.upload_reduction() >= 5.0,
        "range coherence must move at least 5x fewer bytes on this workload"
    );
    run
}

fn sparse_json(run: &SparseCoherenceRun) -> JsonValue {
    JsonValue::obj([
        ("buffer_bytes", JsonValue::num(run.buffer_bytes as f64)),
        ("dirty_bytes_per_round", JsonValue::num(run.dirty_bytes_per_round as f64)),
        ("rounds", JsonValue::num(run.rounds as f64)),
        ("range_stream_bytes_sent", JsonValue::num(run.range.stream_bytes_sent as f64)),
        ("whole_stream_bytes_sent", JsonValue::num(run.whole.stream_bytes_sent as f64)),
        ("range_requests_sent", JsonValue::num(run.range.requests_sent as f64)),
        ("whole_requests_sent", JsonValue::num(run.whole.requests_sent as f64)),
        ("upload_reduction", JsonValue::Num(run.upload_reduction())),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let megabytes = if smoke { SMOKE_TRANSFER_MB } else { PAPER_TRANSFER_MB };

    if args.iter().any(|a| a == "--faulty") {
        faulty_main(megabytes, smoke, json_path);
        return;
    }

    println!("Figure 7 — transfer of {megabytes} MB to (write) / from (read) a GPU device");
    let unbatched = run_mode(megabytes, false).expect("figure 7 harness (unbatched)");
    let batched = run_mode(megabytes, true).expect("figure 7 harness (batched)");
    let result = batched.result;
    print_table(
        "Transfer time (seconds)",
        &["direction", "Gigabit Ethernet (dOpenCL)", "PCI Express (native)"],
        &[
            vec![
                "write".to_string(),
                secs(result.gigabit_ethernet.write),
                secs(result.pci_express.write),
            ],
            vec![
                "read".to_string(),
                secs(result.gigabit_ethernet.read),
                secs(result.pci_express.read),
            ],
        ],
    );
    println!(
        "\n  write slowdown: {:.1}x (paper: up to ~50x)   read slowdown: {:.1}x (paper: ~4.5x)",
        result.write_slowdown(),
        result.read_slowdown()
    );
    println!(
        "  wire requests: {} unbatched vs {} batched",
        unbatched.requests_sent, batched.requests_sent
    );

    let sparse = sparse_main(smoke);

    if let Some(path) = json_path {
        let report = JsonValue::obj([
            ("figure", JsonValue::str("fig7")),
            ("megabytes", JsonValue::num(megabytes as f64)),
            ("smoke", JsonValue::Bool(smoke)),
            ("unbatched", run_json(&unbatched)),
            ("batched", run_json(&batched)),
            (
                "pci_express",
                JsonValue::obj([
                    ("write_seconds", JsonValue::Num(result.pci_express.write.as_secs_f64())),
                    ("read_seconds", JsonValue::Num(result.pci_express.read.as_secs_f64())),
                ]),
            ),
            ("write_slowdown", JsonValue::Num(result.write_slowdown())),
            ("read_slowdown", JsonValue::Num(result.read_slowdown())),
            ("sparse_update", sparse_json(&sparse)),
        ]);
        write_json(&path, &report).expect("write JSON report");
        println!("  wrote {path}");
    }
}
