//! Regenerates Figure 7: time to transfer 1024 MB to and from a device over
//! Gigabit Ethernet (through dOpenCL) vs PCI Express (native).
//!
//! Usage: `fig7_transfer [--smoke] [--faulty] [--json PATH]`
//!
//! `--smoke` shrinks the transfer to 64 MB for CI; `--json PATH` records the
//! before (unbatched) and after (batched) runs as a `BENCH_fig7.json`
//! trajectory file.  `--faulty` instead runs the transfer under injected
//! faults (the daemon drops every connection between slices) and records
//! the recovery counters — `BENCH_fig7_faulty.json` in CI.

use dcl_bench::fig7::{run_faulty, run_mode, Fig7Run, PAPER_TRANSFER_MB};
use dcl_bench::report::{print_table, secs, write_json, JsonValue};

const SMOKE_TRANSFER_MB: u64 = 64;
const FAULTY_PARTITIONS: u64 = 3;

fn faulty_main(megabytes: u64, smoke: bool, json_path: Option<String>) {
    println!(
        "Figure 7 (faulty) — {megabytes} MB transfer with {FAULTY_PARTITIONS} injected partitions"
    );
    let run = run_faulty(megabytes, FAULTY_PARTITIONS).expect("figure 7 faulty harness");
    print_table(
        "Transfer time under faults (seconds)",
        &["direction", "Gigabit Ethernet (dOpenCL)", "PCI Express (native)"],
        &[
            vec![
                "write".to_string(),
                secs(run.result.gigabit_ethernet.write),
                secs(run.result.pci_express.write),
            ],
            vec![
                "read".to_string(),
                secs(run.result.gigabit_ethernet.read),
                secs(run.result.pci_express.read),
            ],
        ],
    );
    println!(
        "\n  partitions: {}   reconnects: {}   recovered requests: {}   failed requests: {}",
        run.partitions, run.reconnects, run.recovered_requests, run.failed_requests
    );
    assert!(
        run.recovered_requests >= run.partitions,
        "every request interrupted by a partition must be retried to completion"
    );

    if let Some(path) = json_path {
        let report = JsonValue::obj([
            ("figure", JsonValue::str("fig7_faulty")),
            ("megabytes", JsonValue::num(run.result.megabytes as f64)),
            ("smoke", JsonValue::Bool(smoke)),
            ("partitions", JsonValue::num(run.partitions as f64)),
            ("reconnects", JsonValue::num(run.reconnects as f64)),
            ("recovered_requests", JsonValue::num(run.recovered_requests as f64)),
            ("failed_requests", JsonValue::num(run.failed_requests as f64)),
            ("requests_sent", JsonValue::num(run.requests_sent as f64)),
            ("write_seconds", JsonValue::Num(run.result.gigabit_ethernet.write.as_secs_f64())),
            ("read_seconds", JsonValue::Num(run.result.gigabit_ethernet.read.as_secs_f64())),
        ]);
        write_json(&path, &report).expect("write JSON report");
        println!("  wrote {path}");
    }
}

fn run_json(run: &Fig7Run) -> JsonValue {
    JsonValue::obj([
        ("write_seconds", JsonValue::Num(run.result.gigabit_ethernet.write.as_secs_f64())),
        ("read_seconds", JsonValue::Num(run.result.gigabit_ethernet.read.as_secs_f64())),
        ("requests_sent", JsonValue::num(run.requests_sent as f64)),
        ("notifications_received", JsonValue::num(run.notifications_received as f64)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let megabytes = if smoke { SMOKE_TRANSFER_MB } else { PAPER_TRANSFER_MB };

    if args.iter().any(|a| a == "--faulty") {
        faulty_main(megabytes, smoke, json_path);
        return;
    }

    println!("Figure 7 — transfer of {megabytes} MB to (write) / from (read) a GPU device");
    let unbatched = run_mode(megabytes, false).expect("figure 7 harness (unbatched)");
    let batched = run_mode(megabytes, true).expect("figure 7 harness (batched)");
    let result = batched.result;
    print_table(
        "Transfer time (seconds)",
        &["direction", "Gigabit Ethernet (dOpenCL)", "PCI Express (native)"],
        &[
            vec![
                "write".to_string(),
                secs(result.gigabit_ethernet.write),
                secs(result.pci_express.write),
            ],
            vec![
                "read".to_string(),
                secs(result.gigabit_ethernet.read),
                secs(result.pci_express.read),
            ],
        ],
    );
    println!(
        "\n  write slowdown: {:.1}x (paper: up to ~50x)   read slowdown: {:.1}x (paper: ~4.5x)",
        result.write_slowdown(),
        result.read_slowdown()
    );
    println!(
        "  wire requests: {} unbatched vs {} batched",
        unbatched.requests_sent, batched.requests_sent
    );

    if let Some(path) = json_path {
        let report = JsonValue::obj([
            ("figure", JsonValue::str("fig7")),
            ("megabytes", JsonValue::num(megabytes as f64)),
            ("smoke", JsonValue::Bool(smoke)),
            ("unbatched", run_json(&unbatched)),
            ("batched", run_json(&batched)),
            (
                "pci_express",
                JsonValue::obj([
                    ("write_seconds", JsonValue::Num(result.pci_express.write.as_secs_f64())),
                    ("read_seconds", JsonValue::Num(result.pci_express.read.as_secs_f64())),
                ]),
            ),
            ("write_slowdown", JsonValue::Num(result.write_slowdown())),
            ("read_slowdown", JsonValue::Num(result.read_slowdown())),
        ]);
        write_json(&path, &report).expect("write JSON report");
        println!("  wrote {path}");
    }
}
