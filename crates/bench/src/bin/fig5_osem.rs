//! Regenerates Figure 5: mean runtime of one list-mode OSEM iteration on the
//! desktop GPU, via dOpenCL on the remote GPU server, and natively on the
//! server.

use dcl_bench::fig5::{run, ScaledOsem};
use dcl_bench::report::{print_table, secs};

fn main() {
    let scaled = ScaledOsem::default_scale();
    println!("Figure 5 — list-mode OSEM, one iteration");
    println!(
        "(functional size: {} events, {} ray steps; modelled size: {} events, {} ray steps)",
        scaled.functional.num_events,
        scaled.functional.ray_steps,
        scaled.paper.num_events,
        scaled.paper.ray_steps
    );
    let rows = run(&scaled).expect("figure 5 harness");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.to_string(),
                secs(r.breakdown.initialization),
                secs(r.breakdown.execution),
                secs(r.breakdown.data_transfer),
                secs(r.iteration_time),
            ]
        })
        .collect();
    print_table(
        "Mean iteration runtime (seconds)",
        &["setup", "initialization", "execution", "data transfer", "total"],
        &table,
    );
    let local = rows.iter().find(|r| r.variant == "Desktop PC using OpenCL").unwrap();
    let remote = rows.iter().find(|r| r.variant == "Desktop PC using dOpenCL").unwrap();
    println!(
        "\n  offload speedup (local / dOpenCL): {:.2}x   (paper: 15.7 s / 4.2 s = 3.75x)",
        local.iteration_time.as_secs_f64() / remote.iteration_time.as_secs_f64()
    );
}
