//! Regenerates Figure 8: efficiency of dOpenCL's data transfer over Gigabit
//! Ethernet for transfer sizes of 1–1024 MB, with the iperf reference line —
//! plus the command-pipeline profile (wire messages per queue flush with and
//! without batching).
//!
//! Usage: `fig8_efficiency [--smoke] [--json PATH]`
//!
//! `--smoke` shrinks the sweep for CI; `--json PATH` records the sweep and
//! the pipeline profile as a `BENCH_fig8.json` trajectory file.

use dcl_bench::fig8::{command_pipeline_profile, paper_sizes, run, PipelineRun};
use dcl_bench::report::{print_table, write_json, JsonValue};

fn pipeline_json(run: &PipelineRun) -> JsonValue {
    JsonValue::obj([
        ("requests_sent", JsonValue::num(run.requests_sent as f64)),
        ("notifications_received", JsonValue::num(run.notifications_received as f64)),
        ("wire_messages", JsonValue::num(run.wire_messages as f64)),
        ("messages_per_flush", JsonValue::Num(run.messages_per_flush)),
        ("simulated_seconds", JsonValue::Num(run.simulated.as_secs_f64())),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let sizes: Vec<u64> = if smoke { vec![1, 4, 16] } else { paper_sizes() };
    let (commands_per_flush, flushes) = if smoke { (16, 4) } else { (64, 8) };

    println!("Figure 8 — data-transfer efficiency over Gigabit Ethernet");
    let result = run(&sizes).expect("figure 8 harness");
    let table: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.megabytes.to_string(),
                format!("{:.1}%", p.write_efficiency * 100.0),
                format!("{:.1}%", p.read_efficiency * 100.0),
            ]
        })
        .collect();
    print_table(
        "Efficiency vs theoretical Gigabit Ethernet bandwidth",
        &["size (MB)", "write to device", "read from device"],
        &table,
    );
    println!(
        "\n  iperf reference (effective bandwidth): {:.1}% of theoretical",
        result.iperf_efficiency * 100.0
    );

    let profile =
        command_pipeline_profile(commands_per_flush, flushes).expect("command pipeline profile");
    print_table(
        "Command pipeline: wire messages per queue flush",
        &["mode", "requests", "msgs/flush", "simulated (s)"],
        &[
            vec![
                "unbatched".to_string(),
                profile.unbatched.requests_sent.to_string(),
                format!("{:.1}", profile.unbatched.messages_per_flush),
                format!("{:.4}", profile.unbatched.simulated.as_secs_f64()),
            ],
            vec![
                "batched".to_string(),
                profile.batched.requests_sent.to_string(),
                format!("{:.1}", profile.batched.messages_per_flush),
                format!("{:.4}", profile.batched.simulated.as_secs_f64()),
            ],
        ],
    );
    println!("\n  message reduction per flush: {:.1}x", profile.message_reduction());

    if let Some(path) = json_path {
        let points: Vec<JsonValue> = result
            .points
            .iter()
            .map(|p| {
                JsonValue::obj([
                    ("megabytes", JsonValue::num(p.megabytes as f64)),
                    ("write_efficiency", JsonValue::Num(p.write_efficiency)),
                    ("read_efficiency", JsonValue::Num(p.read_efficiency)),
                ])
            })
            .collect();
        let report = JsonValue::obj([
            ("figure", JsonValue::str("fig8")),
            ("smoke", JsonValue::Bool(smoke)),
            ("iperf_efficiency", JsonValue::Num(result.iperf_efficiency)),
            ("points", JsonValue::Arr(points)),
            (
                "pipeline",
                JsonValue::obj([
                    ("commands_per_flush", JsonValue::num(profile.commands_per_flush as f64)),
                    ("flushes", JsonValue::num(profile.flushes as f64)),
                    ("unbatched", pipeline_json(&profile.unbatched)),
                    ("batched", pipeline_json(&profile.batched)),
                    ("message_reduction", JsonValue::Num(profile.message_reduction())),
                ]),
            ),
        ]);
        write_json(&path, &report).expect("write JSON report");
        println!("  wrote {path}");
    }
}
