//! Regenerates Figure 8: efficiency of dOpenCL's data transfer over Gigabit
//! Ethernet for transfer sizes of 1–1024 MB, with the iperf reference line.

use dcl_bench::fig8::{paper_sizes, run};
use dcl_bench::report::print_table;

fn main() {
    println!("Figure 8 — data-transfer efficiency over Gigabit Ethernet");
    let result = run(&paper_sizes()).expect("figure 8 harness");
    let table: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.megabytes.to_string(),
                format!("{:.1}%", p.write_efficiency * 100.0),
                format!("{:.1}%", p.read_efficiency * 100.0),
            ]
        })
        .collect();
    print_table(
        "Efficiency vs theoretical Gigabit Ethernet bandwidth",
        &["size (MB)", "write to device", "read from device"],
        &table,
    );
    println!(
        "\n  iperf reference (effective bandwidth): {:.1}% of theoretical",
        result.iperf_efficiency * 100.0
    );
}
