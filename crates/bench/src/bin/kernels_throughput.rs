//! Kernel-throughput regression benchmark: bytecode VM vs tree-walking
//! interpreter, real wall-clock time.
//!
//! Usage: `kernels_throughput [--smoke] [--json PATH]`
//!
//! `--smoke` shrinks the workloads for CI; `--json PATH` writes the
//! `BENCH_kernels.json` trajectory file.  The full (non-smoke) run asserts
//! the tentpole acceptance bar: the VM renders Mandelbrot at least 10×
//! faster than the interpreter baseline.

use dcl_bench::kernels::{run_mandelbrot, run_reduction};
use dcl_bench::report::{print_table, write_json, JsonValue};
use workloads::mandelbrot::MandelbrotParams;

const FULL_SPEEDUP_BAR: f64 = 10.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    let (params, mandel_repeats, reduce_elements, reduce_repeats) = if smoke {
        (
            MandelbrotParams { width: 64, height: 48, max_iter: 96, ..MandelbrotParams::small() },
            2,
            16 * 1024,
            4,
        )
    } else {
        (
            MandelbrotParams {
                width: 192,
                height: 128,
                max_iter: 256,
                ..MandelbrotParams::small()
            },
            3,
            256 * 1024,
            8,
        )
    };

    println!(
        "Kernel throughput — mandelbrot {}x{} (max_iter {}) ×{}, reduction {} elements ×{}",
        params.width,
        params.height,
        params.max_iter,
        mandel_repeats,
        reduce_elements,
        reduce_repeats
    );

    let mandel = run_mandelbrot(&params, mandel_repeats);
    let reduce = run_reduction(reduce_elements, 256, reduce_repeats);

    print_table(
        "Throughput (work units / second)",
        &["benchmark", "tree walker", "bytecode VM", "speedup"],
        &[
            vec![
                "mandelbrot (pixels/s)".to_string(),
                format!("{:.0}", mandel.tree.per_sec),
                format!("{:.0}", mandel.vm.per_sec),
                format!("{:.1}x", mandel.speedup()),
            ],
            vec![
                "reduction (elements/s)".to_string(),
                "rejected".to_string(),
                format!("{:.0}", reduce.vm.per_sec),
                "-".to_string(),
            ],
        ],
    );
    println!("\n  tree walker on the reduction: {}", reduce.tree_rejection);

    if let Some(path) = json_path {
        let report = JsonValue::obj([
            ("benchmark", JsonValue::str("kernels")),
            ("smoke", JsonValue::Bool(smoke)),
            (
                "mandelbrot",
                JsonValue::obj([
                    ("pixels", JsonValue::num(mandel.pixels as f64)),
                    ("max_iter", JsonValue::num(params.max_iter as f64)),
                    ("repeats", JsonValue::num(mandel.repeats as f64)),
                    ("tree_pixels_per_sec", JsonValue::Num(mandel.tree.per_sec)),
                    ("vm_pixels_per_sec", JsonValue::Num(mandel.vm.per_sec)),
                    ("speedup", JsonValue::Num(mandel.speedup())),
                ]),
            ),
            (
                "reduction",
                JsonValue::obj([
                    ("elements", JsonValue::num(reduce.elements as f64)),
                    ("repeats", JsonValue::num(reduce.repeats as f64)),
                    ("vm_elements_per_sec", JsonValue::Num(reduce.vm.per_sec)),
                    ("tree_walker", JsonValue::str(reduce.tree_rejection.clone())),
                ]),
            ),
        ]);
        write_json(&path, &report).expect("write JSON report");
        println!("  wrote {path}");
    }

    // Regression bars.  Smoke runs in CI on debug-ish machines only check
    // that the VM does not lose; the full release run enforces the 10× bar.
    if smoke {
        assert!(
            mandel.speedup() > 1.0,
            "bytecode VM slower than the tree walker ({:.2}x)",
            mandel.speedup()
        );
    } else {
        assert!(
            mandel.speedup() >= FULL_SPEEDUP_BAR,
            "bytecode VM speedup {:.2}x is below the {FULL_SPEEDUP_BAR}x bar",
            mandel.speedup()
        );
    }
}
