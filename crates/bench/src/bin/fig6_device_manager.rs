//! Regenerates Figure 6 — average runtime of the Mandelbrot application when
//! 1–4 instances share the GPU server, with and without the device manager —
//! plus the cluster resource-manager benchmarks: 200 concurrent clients
//! contending for fractional GPU shares under each scheduling policy, and
//! the drain-and-migrate bit-correctness scenario.
//!
//! Flags:
//!
//! * `--smoke` — downscale the classic sweep (CI-friendly; the contention
//!   and migration benchmarks run at full size either way).
//! * `--json`  — also write `BENCH_fig6.json` to the current directory.

use dcl_bench::fig6;
use dcl_bench::report::{print_table, secs, write_json, JsonValue};
use devmgr::SchedulingStrategy;

/// Concurrent clients driven at the 2-node cluster per policy.
const CONTENTION_CLIENTS: usize = 200;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a != "--smoke" && a != "--json") {
        eprintln!("usage: fig6_device_manager [--smoke] [--json]");
        std::process::exit(2);
    }

    let (counts, functional_scale): (&[usize], usize) =
        if smoke { (&[1, 3], 24) } else { (&[1, 2, 3, 4], 16) };
    println!("Figure 6 — concurrent application instances sharing one 4-GPU server (GigE)");
    println!("(functional computation downscaled by {functional_scale}x per dimension)");
    let rows = fig6::run(counts, functional_scale).expect("figure 6 harness");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                if r.with_device_manager { "with DM" } else { "w/o DM" }.to_string(),
                secs(r.breakdown.initialization),
                secs(r.breakdown.execution),
                secs(r.breakdown.data_transfer),
                secs(r.breakdown.total()),
            ]
        })
        .collect();
    print_table(
        "Average runtime per application instance (seconds)",
        &["clients", "device manager", "initialization", "execution", "data transfer", "total"],
        &table,
    );

    let policies =
        [SchedulingStrategy::FirstFit, SchedulingStrategy::RoundRobin, SchedulingStrategy::Fair];
    let contention: Vec<_> = policies
        .iter()
        .map(|&policy| {
            fig6::cluster_contention(policy, CONTENTION_CLIENTS).expect("contention harness")
        })
        .collect();
    let table: Vec<Vec<String>> = contention
        .iter()
        .map(|c| {
            vec![
                format!("{:?}", c.policy),
                c.clients.to_string(),
                c.admitted.to_string(),
                c.rejected.to_string(),
                format!("{:.3}", c.latency_ms.p50),
                format!("{:.3}", c.latency_ms.p95),
                format!("{:.3}", c.latency_ms.p99),
                c.min_work.to_string(),
                c.max_work.to_string(),
                c.work_ratio().map(|r| format!("{r:.2}")).unwrap_or_else(|| "inf".into()),
            ]
        })
        .collect();
    print_table(
        &format!("{CONTENTION_CLIENTS} clients vs a 2-node cluster (latency in ms, work in compute millis)"),
        &[
            "policy", "clients", "admitted", "rejected", "p50", "p95", "p99", "min work",
            "max work", "max/min",
        ],
        &table,
    );

    let migration = fig6::migration_bit_correctness().expect("migration harness");
    println!(
        "\n== Drain-and-migrate ==\n  lease moved {} -> {}, {} bands before + {} after, bit-correct: {}",
        migration.from_server,
        migration.to_server,
        migration.bands_before,
        migration.bands_after,
        migration.bit_correct
    );
    assert!(migration.bit_correct, "migrated workload must stay bit-correct");

    if json {
        let classic = JsonValue::Arr(
            rows.iter()
                .map(|r| {
                    JsonValue::obj([
                        ("clients", JsonValue::num(r.clients as u32)),
                        ("with_device_manager", JsonValue::Bool(r.with_device_manager)),
                        (
                            "initialization_s",
                            JsonValue::Num(r.breakdown.initialization.as_secs_f64()),
                        ),
                        ("execution_s", JsonValue::Num(r.breakdown.execution.as_secs_f64())),
                        (
                            "data_transfer_s",
                            JsonValue::Num(r.breakdown.data_transfer.as_secs_f64()),
                        ),
                        ("total_s", JsonValue::Num(r.breakdown.total().as_secs_f64())),
                    ])
                })
                .collect(),
        );
        let contention_json = JsonValue::Arr(
            contention
                .iter()
                .map(|c| {
                    JsonValue::obj([
                        ("policy", JsonValue::str(format!("{:?}", c.policy))),
                        ("clients", JsonValue::num(c.clients as u32)),
                        ("admitted", JsonValue::num(c.admitted as u32)),
                        ("rejected", JsonValue::num(c.rejected as u32)),
                        (
                            "latency_ms",
                            JsonValue::obj([
                                ("p50", JsonValue::Num(c.latency_ms.p50)),
                                ("p95", JsonValue::Num(c.latency_ms.p95)),
                                ("p99", JsonValue::Num(c.latency_ms.p99)),
                            ]),
                        ),
                        (
                            "completed_work",
                            JsonValue::obj([
                                ("min", JsonValue::num(c.min_work as u32)),
                                ("max", JsonValue::num(c.max_work as u32)),
                                (
                                    "max_over_min",
                                    c.work_ratio().map(JsonValue::Num).unwrap_or(JsonValue::Null),
                                ),
                            ]),
                        ),
                    ])
                })
                .collect(),
        );
        let migration_json = JsonValue::obj([
            ("from_server", JsonValue::str(migration.from_server.clone())),
            ("to_server", JsonValue::str(migration.to_server.clone())),
            ("bands_before", JsonValue::num(migration.bands_before as u32)),
            ("bands_after", JsonValue::num(migration.bands_after as u32)),
            ("bit_correct", JsonValue::Bool(migration.bit_correct)),
        ]);
        let report = JsonValue::obj([
            ("figure", JsonValue::str("fig6")),
            ("smoke", JsonValue::Bool(smoke)),
            ("functional_scale", JsonValue::num(functional_scale as u32)),
            ("classic", classic),
            ("contention", contention_json),
            ("migration", migration_json),
        ]);
        write_json("BENCH_fig6.json", &report).expect("write BENCH_fig6.json");
        println!("\nwrote BENCH_fig6.json");
    }
}
