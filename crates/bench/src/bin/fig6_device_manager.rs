//! Regenerates Figure 6: average runtime of the Mandelbrot application when
//! 1–4 instances share the GPU server, with and without the device manager.

use dcl_bench::report::{print_table, secs};

fn main() {
    let functional_scale = 16;
    println!("Figure 6 — concurrent application instances sharing one 4-GPU server (GigE)");
    println!("(functional computation downscaled by {functional_scale}x per dimension)");
    let rows = dcl_bench::fig6::run(&[1, 2, 3, 4], functional_scale).expect("figure 6 harness");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                if r.with_device_manager { "with DM" } else { "w/o DM" }.to_string(),
                secs(r.breakdown.initialization),
                secs(r.breakdown.execution),
                secs(r.breakdown.data_transfer),
                secs(r.breakdown.total()),
            ]
        })
        .collect();
    print_table(
        "Average runtime per application instance (seconds)",
        &["clients", "device manager", "initialization", "execution", "data transfer", "total"],
        &table,
    );
}
