//! Mandelbrot set computation (Section V-A of the paper).
//!
//! "A Mandelbrot fractal is a section of the complex numbers plane where
//! each pixel corresponds to a complex number. [...] An iterative algorithm
//! is used to determine whether a complex number is part of the Mandelbrot
//! set or not."  The paper computes a 4800×3200 fractal with up to 20 000
//! iterations per pixel; each line of the fractal is assigned to a device in
//! round-robin fashion.

use oclc::{BufferBinding, KernelArgValue, NdRange, WorkItemCounters};
use std::sync::Arc;
use vocl::register_built_in_kernel;

/// Floating-point operations per Mandelbrot iteration (z = z² + c plus the
/// escape test): used to convert iteration counts into modelled device time.
pub const FLOPS_PER_ITERATION: f64 = 8.0;

/// Name of the built-in (native) kernel registered by
/// [`register_built_in_kernels`].
pub const BUILTIN_KERNEL: &str = "mandelbrot_rows";

/// OpenCL C source of the Mandelbrot kernel (used through the interpreter at
/// small problem sizes, and shipped over the network by dOpenCL exactly like
/// any other program source).
pub const KERNEL_SOURCE: &str = r#"
__kernel void mandelbrot_rows(__global uint* out,
                              uint width,
                              uint rows,
                              float x_min,
                              float y_min,
                              float dx,
                              float dy,
                              uint row_offset,
                              uint max_iter) {
    size_t gx = get_global_id(0);
    size_t gy = get_global_id(1);
    if (gx >= width || gy >= rows) return;
    float cr = x_min + dx * (float)gx;
    float ci = y_min + dy * (float)(gy + row_offset);
    float zr = 0.0f;
    float zi = 0.0f;
    uint iter = 0;
    while (zr * zr + zi * zi <= 4.0f && iter < max_iter) {
        float t = zr * zr - zi * zi + cr;
        zi = 2.0f * zr * zi + ci;
        zr = t;
        iter = iter + 1;
    }
    out[gy * width + gx] = iter;
}
"#;

/// Parameters of a Mandelbrot computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandelbrotParams {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Iteration threshold per pixel.
    pub max_iter: u32,
    /// Left edge of the complex-plane section.
    pub x_min: f64,
    /// Right edge.
    pub x_max: f64,
    /// Bottom edge.
    pub y_min: f64,
    /// Top edge.
    pub y_max: f64,
}

impl MandelbrotParams {
    /// The configuration of the paper's Figure 4: a 4800×3200 image with up
    /// to 20 000 iterations per pixel.
    pub fn paper() -> Self {
        MandelbrotParams {
            width: 4800,
            height: 3200,
            max_iter: 20_000,
            x_min: -2.5,
            x_max: 1.0,
            y_min: -1.1667,
            y_max: 1.1667,
        }
    }

    /// A small configuration suitable for functional tests and examples.
    pub fn small() -> Self {
        MandelbrotParams {
            width: 192,
            height: 128,
            max_iter: 256,
            x_min: -2.5,
            x_max: 1.0,
            y_min: -1.1667,
            y_max: 1.1667,
        }
    }

    /// Horizontal step between adjacent pixels.
    pub fn dx(&self) -> f64 {
        (self.x_max - self.x_min) / self.width as f64
    }

    /// Vertical step between adjacent pixels.
    pub fn dy(&self) -> f64 {
        (self.y_max - self.y_min) / self.height as f64
    }

    /// Total number of pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// A copy of these parameters at a reduced resolution (used to derive
    /// iteration statistics for the full-scale cost model without computing
    /// 15 M pixels).
    pub fn downscaled(&self, factor: usize) -> MandelbrotParams {
        MandelbrotParams {
            width: (self.width / factor).max(1),
            height: (self.height / factor).max(1),
            ..*self
        }
    }
}

/// Reference computation of the escape iteration count of a single pixel.
pub fn iterations_at(params: &MandelbrotParams, px: usize, py: usize) -> u32 {
    let cr = params.x_min + params.dx() * px as f64;
    let ci = params.y_min + params.dy() * py as f64;
    let (mut zr, mut zi) = (0.0f64, 0.0f64);
    let mut iter = 0u32;
    while zr * zr + zi * zi <= 4.0 && iter < params.max_iter {
        let t = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = t;
        iter += 1;
    }
    iter
}

/// Reference computation of `row_count` rows starting at `row_offset`.
///
/// Returns the per-pixel iteration counts plus the total number of
/// iterations performed (the work measure the cost model uses).
pub fn compute_rows(
    params: &MandelbrotParams,
    row_offset: usize,
    row_count: usize,
) -> (Vec<u32>, u64) {
    let mut out = Vec::with_capacity(row_count * params.width);
    let mut total = 0u64;
    for y in row_offset..row_offset + row_count {
        for x in 0..params.width {
            let it = iterations_at(params, x, y);
            total += it as u64;
            out.push(it);
        }
    }
    (out, total)
}

/// Estimate the total number of iterations of the full image by sampling one
/// pixel out of every `step × step` block.
pub fn estimate_total_iterations(params: &MandelbrotParams, step: usize) -> u64 {
    let step = step.max(1);
    let mut sampled = 0u64;
    let mut samples = 0u64;
    let mut y = 0;
    while y < params.height {
        let mut x = 0;
        while x < params.width {
            sampled += iterations_at(params, x, y) as u64;
            samples += 1;
            x += step;
        }
        y += step;
    }
    if samples == 0 {
        return 0;
    }
    sampled * params.pixels() as u64 / samples
}

/// Modelled floating-point work (in FLOPs) of computing the whole image.
pub fn estimated_flops(params: &MandelbrotParams, sample_step: usize) -> f64 {
    estimate_total_iterations(params, sample_step) as f64 * FLOPS_PER_ITERATION
}

fn scalar_arg(args: &[KernelArgValue], index: usize) -> Result<f64, String> {
    match args.get(index) {
        Some(KernelArgValue::Scalar(v)) => v.as_f64().map_err(|e| format!("argument {index}: {e}")),
        other => Err(format!("argument {index}: expected a scalar, got {other:?}")),
    }
}

/// Register the `mandelbrot_rows` built-in kernel with the `vocl` runtime.
///
/// The built-in kernel has the same signature as [`KERNEL_SOURCE`] and is
/// used for paper-scale runs where interpreting 15 M pixels would be
/// pointlessly slow; its reported operation count drives the device model.
pub fn register_built_in_kernels() {
    register_built_in_kernel(
        BUILTIN_KERNEL,
        Arc::new(|range: &NdRange, args: &[KernelArgValue], buffers: &mut [BufferBinding<'_>]| {
            let Some(&KernelArgValue::Buffer(out_idx)) = args.first() else {
                return Err("argument 0 must be the output buffer".to_string());
            };
            let width = scalar_arg(args, 1)? as usize;
            let rows = scalar_arg(args, 2)? as usize;
            let x_min = scalar_arg(args, 3)?;
            let y_min = scalar_arg(args, 4)?;
            let dx = scalar_arg(args, 5)?;
            let dy = scalar_arg(args, 6)?;
            let row_offset = scalar_arg(args, 7)? as usize;
            let max_iter = scalar_arg(args, 8)? as u32;

            let out = buffers
                .get_mut(out_idx)
                .ok_or_else(|| "output buffer binding missing".to_string())?;
            let out_bytes = out.bytes_mut();
            if out_bytes.len() < width * rows * 4 {
                return Err(format!(
                    "output buffer too small: {} bytes for {width}x{rows} pixels",
                    out_bytes.len()
                ));
            }

            let gx_count = range.global[0].max(1).min(width);
            let gy_count = range.global[1].max(1).min(rows);
            let mut total_iterations = 0u64;
            for gy in 0..gy_count {
                let ci = y_min + dy * (gy + row_offset) as f64;
                for gx in 0..gx_count {
                    let cr = x_min + dx * gx as f64;
                    let (mut zr, mut zi) = (0.0f64, 0.0f64);
                    let mut iter = 0u32;
                    while zr * zr + zi * zi <= 4.0 && iter < max_iter {
                        let t = zr * zr - zi * zi + cr;
                        zi = 2.0 * zr * zi + ci;
                        zr = t;
                        iter += 1;
                    }
                    total_iterations += iter as u64;
                    let offset = (gy * width + gx) * 4;
                    out_bytes[offset..offset + 4].copy_from_slice(&iter.to_le_bytes());
                }
            }
            Ok(WorkItemCounters {
                work_items: (gx_count * gy_count) as u64,
                ops: (total_iterations as f64 * FLOPS_PER_ITERATION) as u64,
                loads: 0,
                stores: (gx_count * gy_count) as u64,
                steps: total_iterations,
            })
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use oclc::Program;

    #[test]
    fn paper_parameters_match_section_v_a() {
        let p = MandelbrotParams::paper();
        assert_eq!(p.width, 4800);
        assert_eq!(p.height, 3200);
        assert_eq!(p.max_iter, 20_000);
        assert_eq!(p.pixels(), 15_360_000);
    }

    #[test]
    fn reference_escape_behaviour() {
        let p = MandelbrotParams::small();
        // The origin is in the set: it exhausts max_iter.
        let px_origin = ((0.0 - p.x_min) / p.dx()) as usize;
        let py_origin = ((0.0 - p.y_min) / p.dy()) as usize;
        assert_eq!(iterations_at(&p, px_origin, py_origin), p.max_iter);
        // The top-left corner (far outside) escapes almost immediately.
        assert!(iterations_at(&p, 0, 0) < 5);
    }

    #[test]
    fn interpreted_kernel_matches_reference() {
        let params =
            MandelbrotParams { width: 32, height: 16, max_iter: 64, ..MandelbrotParams::small() };
        let program = Program::build(KERNEL_SOURCE).expect("kernel source builds");
        let kernel = program.kernel("mandelbrot_rows").unwrap();
        let mut out = vec![0u8; params.width * params.height * 4];
        let args = vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Scalar(oclc::Value::uint(params.width as u64)),
            KernelArgValue::Scalar(oclc::Value::uint(params.height as u64)),
            KernelArgValue::Scalar(oclc::Value::float(params.x_min as f32)),
            KernelArgValue::Scalar(oclc::Value::float(params.y_min as f32)),
            KernelArgValue::Scalar(oclc::Value::float(params.dx() as f32)),
            KernelArgValue::Scalar(oclc::Value::float(params.dy() as f32)),
            KernelArgValue::Scalar(oclc::Value::uint(0)),
            KernelArgValue::Scalar(oclc::Value::uint(params.max_iter as u64)),
        ];
        let mut bindings = vec![BufferBinding::new(&mut out)];
        kernel.execute(&NdRange::two_d(params.width, params.height), &args, &mut bindings).unwrap();
        let (reference, _) = compute_rows(&params, 0, params.height);
        let computed: Vec<u32> =
            out.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        // f32 vs f64 rounding can shift the escape iteration slightly near
        // the set boundary; the bulk of the image must agree exactly.
        let matching = computed.iter().zip(&reference).filter(|(a, b)| a == b).count();
        assert!(
            matching as f64 / reference.len() as f64 > 0.97,
            "only {matching}/{} pixels match",
            reference.len()
        );
    }

    #[test]
    fn builtin_kernel_matches_reference_exactly() {
        register_built_in_kernels();
        let params =
            MandelbrotParams { width: 64, height: 32, max_iter: 128, ..MandelbrotParams::small() };
        let f = vocl::built_in_kernel(BUILTIN_KERNEL).expect("registered");
        let mut out = vec![0u8; params.width * params.height * 4];
        let args = vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Scalar(oclc::Value::uint(params.width as u64)),
            KernelArgValue::Scalar(oclc::Value::uint(params.height as u64)),
            KernelArgValue::Scalar(oclc::Value::double(params.x_min)),
            KernelArgValue::Scalar(oclc::Value::double(params.y_min)),
            KernelArgValue::Scalar(oclc::Value::double(params.dx())),
            KernelArgValue::Scalar(oclc::Value::double(params.dy())),
            KernelArgValue::Scalar(oclc::Value::uint(0)),
            KernelArgValue::Scalar(oclc::Value::uint(params.max_iter as u64)),
        ];
        let counters = {
            let mut bindings = vec![BufferBinding::new(&mut out)];
            f(&NdRange::two_d(params.width, params.height), &args, &mut bindings).unwrap()
        };
        let (reference, total_iters) = compute_rows(&params, 0, params.height);
        let computed: Vec<u32> =
            out.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(computed, reference);
        assert_eq!(counters.work_items, (params.width * params.height) as u64);
        assert_eq!(counters.ops, (total_iters as f64 * FLOPS_PER_ITERATION) as u64);
    }

    #[test]
    fn iteration_estimate_is_close_to_exact_count() {
        let params = MandelbrotParams {
            width: 160,
            height: 120,
            max_iter: 200,
            ..MandelbrotParams::small()
        };
        let (_, exact) = compute_rows(&params, 0, params.height);
        let estimate = estimate_total_iterations(&params, 4);
        let ratio = estimate as f64 / exact as f64;
        assert!((0.8..1.2).contains(&ratio), "estimate off by {ratio}");
        assert!(estimated_flops(&params, 4) > 0.0);
    }

    #[test]
    fn downscaled_keeps_region() {
        let p = MandelbrotParams::paper().downscaled(10);
        assert_eq!(p.width, 480);
        assert_eq!(p.height, 320);
        assert_eq!(p.x_min, MandelbrotParams::paper().x_min);
    }
}
