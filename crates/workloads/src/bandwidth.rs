//! The data-transfer test application of Section V-D (Figures 7 and 8).
//!
//! "We created a simple OpenCL application that transfers an arbitrary
//! amount of data from the host to a device and vice versa."  The
//! application is run in two configurations:
//!
//! * **native** — directly on the GPU server through its own OpenCL
//!   implementation, so transfers only cross the PCI Express bus,
//! * **dOpenCL** — from a remote client over Gigabit Ethernet, so every
//!   transfer crosses the network *and* the PCI Express bus.

use crate::iperf;
use dopencl::{Client, Context, LocalCluster};
use gcf::simtime::SimClock;
use gcf::LinkModel;
use std::time::Duration;
use vocl::{BusModel, DeviceProfile, Platform};

/// Modelled write/read times of one transfer experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTimes {
    /// Host → device ("write") time.
    pub write: Duration,
    /// Device → host ("read") time.
    pub read: Duration,
}

/// Bytes per MB as used in the paper's transfer sizes (binary mebibytes).
pub const MB: u64 = 1024 * 1024;

/// Native execution on the server: transfers only cross the PCI Express bus
/// of `profile`.
pub fn native_transfer(profile: &DeviceProfile, megabytes: u64) -> TransferTimes {
    native_transfer_on(&profile.bus, megabytes)
}

/// Native transfer times for an explicit bus model.
pub fn native_transfer_on(bus: &BusModel, megabytes: u64) -> TransferTimes {
    let bytes = megabytes * MB;
    TransferTimes { write: bus.write_time(bytes), read: bus.read_time(bytes) }
}

/// Run the transfer application through dOpenCL against `cluster` (the
/// client is connected to every daemon of the cluster) and return the
/// modelled write/read times of a `megabytes`-sized transfer to and from
/// the first device.
pub fn dopencl_transfer(cluster: &LocalCluster, megabytes: u64) -> dopencl::Result<TransferTimes> {
    let clock = SimClock::new();
    let client = cluster.client_with_clock("bandwidth-test", clock.clone())?;
    dopencl_transfer_with(&client, &clock, megabytes)
}

/// Same as [`dopencl_transfer`] but reusing an existing client and clock
/// (so callers can sweep transfer sizes over one connection, like the
/// paper's measurement loop does).
pub fn dopencl_transfer_with(
    client: &Client,
    clock: &SimClock,
    megabytes: u64,
) -> dopencl::Result<TransferTimes> {
    let bytes = (megabytes * MB) as usize;
    let devices = client.devices();
    let device = devices
        .first()
        .ok_or_else(|| dopencl::DclError::InvalidArgument("no devices available".into()))?;
    let context = Context::new(client, std::slice::from_ref(device))?;
    let queue = context.create_command_queue(device)?;
    let buffer = context.create_buffer(bytes)?;

    // Host → device: the upload crosses the network, then the PCIe bus.
    let before = clock.breakdown();
    let payload = vec![0xA5u8; bytes];
    queue.write_buffer(&buffer, &payload).blocking().submit()?;
    let after_write = clock.breakdown();

    // Device → host.
    let (data, read_event) = queue.read_buffer(&buffer).submit()?;
    read_event.wait()?;
    assert_eq!(data.len(), bytes);
    let after_read = clock.breakdown();

    Ok(TransferTimes {
        write: after_write.data_transfer - before.data_transfer,
        read: after_read.data_transfer - after_write.data_transfer,
    })
}

/// A single row of the Figure 8 efficiency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Transfer size in MB.
    pub megabytes: u64,
    /// Efficiency of the dOpenCL write path relative to theoretical Gigabit
    /// Ethernet bandwidth.
    pub write_efficiency: f64,
    /// Efficiency of the dOpenCL read path.
    pub read_efficiency: f64,
}

/// Sweep transfer sizes through dOpenCL and compute the fraction of the
/// theoretical Gigabit Ethernet bandwidth that is achieved (Figure 8).
///
/// `network_only` subtracts the modelled PCIe time so that the efficiency
/// refers to the network link alone, which is what the paper plots.
pub fn efficiency_sweep(sizes_mb: &[u64]) -> dopencl::Result<Vec<EfficiencyPoint>> {
    let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
    cluster.add_node("gpuserver", &Platform::gpu_server())?;
    let clock = SimClock::new();
    let client = cluster.client_with_clock("efficiency", clock.clone())?;
    let theoretical = LinkModel::gigabit_ethernet_theoretical();
    let bus = DeviceProfile::gpu_tesla_s1070_unit().bus;

    let mut points = Vec::with_capacity(sizes_mb.len());
    for &mb in sizes_mb {
        let times = dopencl_transfer_with(&client, &clock, mb)?;
        let bytes = mb * MB;
        let ideal = Duration::from_secs_f64(bytes as f64 / theoretical.bandwidth_bytes_per_sec);
        // Remove the device-side PCIe share so the efficiency measures how
        // well dOpenCL uses the *network*, as in the paper.
        let write_net = times.write.saturating_sub(bus.write_time(bytes));
        let read_net = times.read.saturating_sub(bus.read_time(bytes));
        points.push(EfficiencyPoint {
            megabytes: mb,
            write_efficiency: (ideal.as_secs_f64() / write_net.as_secs_f64().max(1e-9)).min(1.0),
            read_efficiency: (ideal.as_secs_f64() / read_net.as_secs_f64().max(1e-9)).min(1.0),
        });
    }
    Ok(points)
}

/// The iperf reference efficiency (the solid line of Figure 8).
pub fn iperf_reference_efficiency() -> f64 {
    iperf::measure_efficiency(
        &LinkModel::gigabit_ethernet(),
        &LinkModel::gigabit_ethernet_theoretical(),
        1024 * MB,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dopencl::LocalCluster;

    #[test]
    fn native_pcie_asymmetry() {
        let t = native_transfer(&DeviceProfile::gpu_tesla_s1070_unit(), 1024);
        let ratio = t.read.as_secs_f64() / t.write.as_secs_f64();
        assert!((12.0..18.0).contains(&ratio), "read/write ratio {ratio}");
    }

    #[test]
    fn dopencl_transfer_is_much_slower_than_native() {
        let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
        cluster.add_node("gpuserver", &Platform::gpu_server()).unwrap();
        let remote = dopencl_transfer(&cluster, 64).unwrap();
        let native = native_transfer(&DeviceProfile::gpu_tesla_s1070_unit(), 64);
        assert!(remote.write > native.write * 10);
        assert!(remote.read > native.read);
    }

    #[test]
    fn efficiency_grows_with_size_and_stays_below_iperf() {
        let points = efficiency_sweep(&[1, 16, 256]).unwrap();
        assert!(points[0].write_efficiency < points[2].write_efficiency);
        let iperf = iperf_reference_efficiency();
        assert!(iperf > 0.8 && iperf < 0.9, "iperf reference {iperf}");
        for p in &points {
            assert!(p.write_efficiency <= iperf + 0.02, "{p:?} exceeds the iperf line");
        }
    }
}
