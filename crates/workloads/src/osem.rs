//! List-mode OSEM tomography reconstruction (Section V-B of the paper).
//!
//! Positron Emission Tomography records *list-mode events* (detected photon
//! pairs); the list-mode OSEM algorithm iterates over subsets of those
//! events and, per subset, forward-projects the current image estimate along
//! each event's line of response, computes a correction factor, and
//! back-projects it into the image.
//!
//! The paper uses real quadHIDAC patient data and the EMRECON reconstruction
//! software; this reproduction substitutes a **synthetic event stream** and
//! a simplified projector (a fixed number of voxel samples along a
//! pseudo-random line per event).  The computational structure — per event,
//! `ray_steps` voxel reads for the forward projection and `ray_steps`
//! accumulations for the back projection — is preserved, which is what the
//! runtime of Figure 5 depends on.

use oclc::{BufferBinding, KernelArgValue, NdRange, WorkItemCounters};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vocl::register_built_in_kernel;

/// Floating-point operations per voxel sample of an event (forward
/// projection + correction + back projection).
pub const FLOPS_PER_EVENT_STEP: f64 = 12.0;

/// Name of the built-in (native) kernel registered by
/// [`register_built_in_kernels`].
pub const BUILTIN_KERNEL: &str = "osem_subset";

/// Number of `f32` values stored per event.
pub const FLOATS_PER_EVENT: usize = 4;

/// OpenCL C source of the per-subset kernel (interpreted path, small sizes).
pub const KERNEL_SOURCE: &str = r#"
__kernel void osem_subset(__global const float* events,
                          __global const float* image,
                          __global float* correction,
                          uint events_in_subset,
                          uint ray_steps,
                          uint num_voxels) {
    size_t e = get_global_id(0);
    if (e >= events_in_subset) return;
    float x = events[e * 4 + 0];
    float y = events[e * 4 + 1];
    float z = events[e * 4 + 2];
    float d = events[e * 4 + 3];
    float forward = 0.0f;
    for (uint s = 0; s < ray_steps; s++) {
        float t = x + y * (float)s + z * (float)s * (float)s + d;
        uint voxel = ((uint)fabs(t * 1000.0f)) % num_voxels;
        forward += image[voxel];
    }
    float ratio = 1.0f / (forward + 1.0f);
    for (uint s = 0; s < ray_steps; s++) {
        float t = x + y * (float)s + z * (float)s * (float)s + d;
        uint voxel = ((uint)fabs(t * 1000.0f)) % num_voxels;
        correction[voxel] = correction[voxel] + ratio;
    }
}
"#;

/// Parameters of a list-mode OSEM reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsemParams {
    /// Total number of list-mode events.
    pub num_events: usize,
    /// Number of subsets per iteration (OSEM processes one subset at a
    /// time).
    pub subsets: usize,
    /// Number of image voxels.
    pub num_voxels: usize,
    /// Voxel samples per event (length of the line of response).
    pub ray_steps: usize,
}

impl OsemParams {
    /// A configuration representative of the paper's quadHIDAC study:
    /// tens of millions of list-mode events, ten subsets, a
    /// clinical-resolution image volume.  Calibrated so that one iteration
    /// on the desktop GPU takes ~15 s and on the remote 4-GPU server ~4 s,
    /// matching Figure 5.
    pub fn paper() -> Self {
        OsemParams {
            num_events: 25_000_000,
            subsets: 10,
            num_voxels: 128 * 128 * 64,
            ray_steps: 220,
        }
    }

    /// A small configuration for functional tests and examples.
    pub fn small() -> Self {
        OsemParams { num_events: 4_096, subsets: 4, num_voxels: 4_096, ray_steps: 16 }
    }

    /// Events per subset.
    pub fn events_per_subset(&self) -> usize {
        self.num_events / self.subsets.max(1)
    }

    /// Modelled floating-point work of one full OSEM iteration (all
    /// subsets).
    pub fn flops_per_iteration(&self) -> f64 {
        self.num_events as f64 * self.ray_steps as f64 * FLOPS_PER_EVENT_STEP
    }

    /// Bytes of event data shipped to the device per iteration.
    pub fn event_bytes(&self) -> u64 {
        (self.num_events * FLOATS_PER_EVENT * 4) as u64
    }

    /// Bytes of one image volume.
    pub fn image_bytes(&self) -> u64 {
        (self.num_voxels * 4) as u64
    }
}

/// Generate a deterministic synthetic event stream (`FLOATS_PER_EVENT`
/// floats per event).
pub fn generate_events(params: &OsemParams, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(params.num_events * FLOATS_PER_EVENT);
    for _ in 0..params.num_events {
        events.push(rng.gen_range(-1.0f32..1.0));
        events.push(rng.gen_range(-1.0f32..1.0));
        events.push(rng.gen_range(-1.0f32..1.0));
        events.push(rng.gen_range(0.0f32..1.0));
    }
    events
}

fn voxel_for(x: f32, y: f32, z: f32, d: f32, step: usize, num_voxels: usize) -> usize {
    let s = step as f32;
    let t = x + y * s + z * s * s + d;
    ((t * 1000.0).abs() as u32 as usize) % num_voxels.max(1)
}

/// Pure-Rust reference of one subset update: returns the correction volume
/// produced from `events` (a slice of the subset's events) and `image`.
pub fn reference_subset_update(params: &OsemParams, events: &[f32], image: &[f32]) -> Vec<f32> {
    let mut correction = vec![0.0f32; params.num_voxels];
    for event in events.chunks_exact(FLOATS_PER_EVENT) {
        let (x, y, z, d) = (event[0], event[1], event[2], event[3]);
        let mut forward = 0.0f32;
        for s in 0..params.ray_steps {
            forward += image[voxel_for(x, y, z, d, s, params.num_voxels)];
        }
        let ratio = 1.0 / (forward + 1.0);
        for s in 0..params.ray_steps {
            let voxel = voxel_for(x, y, z, d, s, params.num_voxels);
            correction[voxel] += ratio;
        }
    }
    correction
}

fn f32s(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
}

fn scalar_arg(args: &[KernelArgValue], index: usize) -> Result<u64, String> {
    match args.get(index) {
        Some(KernelArgValue::Scalar(v)) => v.as_u64().map_err(|e| format!("argument {index}: {e}")),
        other => Err(format!("argument {index}: expected a scalar, got {other:?}")),
    }
}

/// Register the `osem_subset` built-in kernel with the `vocl` runtime.
pub fn register_built_in_kernels() {
    register_built_in_kernel(
        BUILTIN_KERNEL,
        Arc::new(|range: &NdRange, args: &[KernelArgValue], buffers: &mut [BufferBinding<'_>]| {
            let Some(&KernelArgValue::Buffer(events_idx)) = args.first() else {
                return Err("argument 0 must be the events buffer".to_string());
            };
            let Some(&KernelArgValue::Buffer(image_idx)) = args.get(1) else {
                return Err("argument 1 must be the image buffer".to_string());
            };
            let Some(&KernelArgValue::Buffer(correction_idx)) = args.get(2) else {
                return Err("argument 2 must be the correction buffer".to_string());
            };
            let events_in_subset = scalar_arg(args, 3)? as usize;
            let ray_steps = scalar_arg(args, 4)? as usize;
            let num_voxels = scalar_arg(args, 5)? as usize;

            // Copy out the inputs so the output buffer can be borrowed
            // mutably (the indices may alias the same unique-buffer list).
            let events = f32s(buffers[events_idx].bytes());
            let image = f32s(buffers[image_idx].bytes());
            if image.len() < num_voxels {
                return Err(format!(
                    "image buffer holds {} voxels, kernel expects {num_voxels}",
                    image.len()
                ));
            }
            let n = range.total_items().min(events_in_subset);
            let correction_bytes = buffers[correction_idx].bytes_mut();
            for e in 0..n {
                let base = e * FLOATS_PER_EVENT;
                if base + 3 >= events.len() {
                    break;
                }
                let (x, y, z, d) =
                    (events[base], events[base + 1], events[base + 2], events[base + 3]);
                let mut forward = 0.0f32;
                for s in 0..ray_steps {
                    forward += image[voxel_for(x, y, z, d, s, num_voxels)];
                }
                let ratio = 1.0 / (forward + 1.0);
                for s in 0..ray_steps {
                    let voxel = voxel_for(x, y, z, d, s, num_voxels);
                    let offset = voxel * 4;
                    let current = f32::from_le_bytes(
                        correction_bytes[offset..offset + 4].try_into().unwrap(),
                    );
                    correction_bytes[offset..offset + 4]
                        .copy_from_slice(&(current + ratio).to_le_bytes());
                }
            }
            Ok(WorkItemCounters {
                work_items: n as u64,
                ops: (n as f64 * ray_steps as f64 * FLOPS_PER_EVENT_STEP) as u64,
                loads: (n * ray_steps) as u64,
                stores: (n * ray_steps) as u64,
                steps: (n * ray_steps) as u64,
            })
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use oclc::Program;

    #[test]
    fn paper_and_small_parameters_are_consistent() {
        let p = OsemParams::paper();
        assert_eq!(p.events_per_subset(), 2_500_000);
        assert!(p.flops_per_iteration() > 1e9);
        assert_eq!(p.event_bytes(), (p.num_events * 16) as u64);
        let s = OsemParams::small();
        assert_eq!(s.events_per_subset(), 1024);
    }

    #[test]
    fn event_generation_is_deterministic() {
        let p = OsemParams::small();
        let a = generate_events(&p, 42);
        let b = generate_events(&p, 42);
        let c = generate_events(&p, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), p.num_events * FLOATS_PER_EVENT);
    }

    #[test]
    fn builtin_kernel_matches_reference() {
        register_built_in_kernels();
        let params = OsemParams { num_events: 256, subsets: 1, num_voxels: 512, ray_steps: 8 };
        let events = generate_events(&params, 7);
        let image = vec![0.5f32; params.num_voxels];

        let reference = reference_subset_update(&params, &events, &image);

        let f = vocl::built_in_kernel(BUILTIN_KERNEL).unwrap();
        let mut events_bytes: Vec<u8> = events.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut image_bytes: Vec<u8> = image.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut correction_bytes = vec![0u8; params.num_voxels * 4];
        let args = vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Buffer(1),
            KernelArgValue::Buffer(2),
            KernelArgValue::Scalar(oclc::Value::uint(params.num_events as u64)),
            KernelArgValue::Scalar(oclc::Value::uint(params.ray_steps as u64)),
            KernelArgValue::Scalar(oclc::Value::uint(params.num_voxels as u64)),
        ];
        let counters = {
            let mut bindings = vec![
                BufferBinding::new(&mut events_bytes),
                BufferBinding::new(&mut image_bytes),
                BufferBinding::new(&mut correction_bytes),
            ];
            f(&NdRange::linear(params.num_events), &args, &mut bindings).unwrap()
        };
        let computed = f32s(&correction_bytes);
        for (a, b) in computed.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(counters.work_items, params.num_events as u64);
        assert!(counters.ops > 0);
    }

    #[test]
    fn interpreted_kernel_matches_reference_on_tiny_input() {
        let params = OsemParams { num_events: 16, subsets: 1, num_voxels: 64, ray_steps: 4 };
        let events = generate_events(&params, 3);
        let image = vec![0.25f32; params.num_voxels];
        let reference = reference_subset_update(&params, &events, &image);

        let program = Program::build(KERNEL_SOURCE).expect("osem kernel builds");
        let kernel = program.kernel("osem_subset").unwrap();
        let mut events_bytes: Vec<u8> = events.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut image_bytes: Vec<u8> = image.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut correction_bytes = vec![0u8; params.num_voxels * 4];
        let args = vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Buffer(1),
            KernelArgValue::Buffer(2),
            KernelArgValue::Scalar(oclc::Value::uint(params.num_events as u64)),
            KernelArgValue::Scalar(oclc::Value::uint(params.ray_steps as u64)),
            KernelArgValue::Scalar(oclc::Value::uint(params.num_voxels as u64)),
        ];
        let mut bindings = vec![
            BufferBinding::new(&mut events_bytes),
            BufferBinding::new(&mut image_bytes),
            BufferBinding::new(&mut correction_bytes),
        ];
        kernel.execute(&NdRange::linear(params.num_events), &args, &mut bindings).unwrap();
        let computed = f32s(&correction_bytes);
        let close = computed.iter().zip(&reference).filter(|(a, b)| (*a - *b).abs() < 1e-3).count();
        assert!(
            close as f64 / reference.len() as f64 > 0.95,
            "only {close}/{} voxels close",
            reference.len()
        );
    }
}
