//! # workloads — the applications of the dOpenCL evaluation
//!
//! Section V of the paper evaluates dOpenCL with three applications:
//!
//! * [`mandelbrot`] — the scalability benchmark of Figure 4 (and the
//!   application shared between clients in the device-manager study of
//!   Figure 6),
//! * [`osem`] — the list-mode OSEM tomography reconstruction of Figure 5
//!   (synthetic PET events substitute the quadHIDAC patient data),
//! * [`bandwidth`] — the raw data-transfer application of Figures 7 and 8,
//!   together with the [`iperf`]-like probe used as the reference line.
//!
//! Every workload provides
//!
//! * an OpenCL C kernel (exercised through the `oclc` interpreter at small
//!   sizes),
//! * a *built-in* native kernel registered with the `vocl` runtime for
//!   full-scale runs (its operation counters drive the device time model),
//! * a pure-Rust reference implementation used by the tests to check
//!   functional correctness, and
//! * cost helpers that the figure harnesses use to model the paper-scale
//!   problem sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod iperf;
pub mod mandelbrot;
pub mod osem;

/// Register every built-in native kernel provided by this crate with the
/// `vocl` runtime.  Idempotent; call it once at start-up of examples,
/// benches and tests that launch built-in kernels.
pub fn register_all_built_in_kernels() {
    mandelbrot::register_built_in_kernels();
    osem::register_built_in_kernels();
}
