//! An iperf-like bandwidth probe.
//!
//! The paper uses iperf to measure the *effective* bandwidth of its Gigabit
//! Ethernet link (~106 MB/s, i.e. ~86 % of the theoretical 125 MB/s) and
//! plots that as the reference line of Figure 8.  This module measures the
//! same quantity against a [`LinkModel`]: the fraction of a reference link's
//! theoretical bandwidth that a long bulk transfer achieves.

use gcf::LinkModel;

/// Effective bandwidth (bytes/second) achieved for a bulk transfer of
/// `bytes` over `link`.
pub fn effective_bandwidth(link: &LinkModel, bytes: u64) -> f64 {
    let t = link.transfer_time(bytes).as_secs_f64();
    if t <= 0.0 {
        return f64::INFINITY;
    }
    bytes as f64 / t
}

/// Efficiency of `link` relative to `reference` for a transfer of `bytes`:
/// `effective bandwidth / reference bandwidth`, capped at 1.
pub fn measure_efficiency(link: &LinkModel, reference: &LinkModel, bytes: u64) -> f64 {
    (effective_bandwidth(link, bytes) / reference.bandwidth_bytes_per_sec).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcf::linkmodel::MIB;

    #[test]
    fn gigabit_efficiency_is_about_86_percent() {
        let eff = measure_efficiency(
            &LinkModel::gigabit_ethernet(),
            &LinkModel::gigabit_ethernet_theoretical(),
            1024 * MIB,
        );
        assert!((0.82..0.88).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn small_transfers_achieve_less_of_the_link() {
        let link = LinkModel::gigabit_ethernet();
        let reference = LinkModel::gigabit_ethernet_theoretical();
        let small = measure_efficiency(&link, &reference, MIB);
        let large = measure_efficiency(&link, &reference, 1024 * MIB);
        assert!(small < large);
    }

    #[test]
    fn effective_bandwidth_is_finite_and_positive() {
        let bw = effective_bandwidth(&LinkModel::infiniband(), 64 * MIB);
        assert!(bw > 1e9);
        assert!(bw.is_finite());
    }
}
