//! # oclc — an OpenCL C subset front end and interpreter
//!
//! OpenCL programs ship their device code as *source strings* which the
//! runtime compiles per device (`clCreateProgramWithSource` +
//! `clBuildProgram`).  dOpenCL forwards those strings over the network and
//! lets the server's native implementation build them.  To reproduce that
//! path without a vendor compiler, this crate implements a practical subset
//! of OpenCL C:
//!
//! * scalar types (`bool`, `char`, `uchar`, `short`, `ushort`, `int`, `uint`,
//!   `long`, `ulong`, `size_t`, `float`, `double`) and small vector types
//!   (`float2`, `float4`, `int2`, `int4`, ...),
//! * `__global` / `__local` / `__constant` pointer kernel arguments,
//! * the usual expression grammar (arithmetic, comparison, logical, bitwise,
//!   ternary, casts, calls, indexing, vector component access),
//! * statements: declarations, assignment (including compound assignment),
//!   `if`/`else`, `for`, `while`, `do`, `return`, `break`, `continue`,
//! * work-item built-ins (`get_global_id`, `get_local_id`, `get_group_id`,
//!   `get_global_size`, `get_local_size`, `get_work_dim`) and a set of math
//!   built-ins (`sqrt`, `exp`, `log`, `fabs`, `pow`, `min`, `max`, `clamp`,
//!   `floor`, `ceil`, `sin`, `cos`, `native_*` aliases, ...),
//! * helper (non-kernel) functions callable from kernels.
//!
//! The pipeline is classic: [`lexer`] → [`parser`] → [`sema`] → [`interp`].
//! [`Program::build`] corresponds to `clBuildProgram` and produces either a
//! list of kernels or a build log with diagnostics.
//!
//! The interpreter executes one work-item at a time over an NDRange; the
//! `vocl` runtime decides how NDRanges are scheduled onto device threads and
//! what *modelled* execution time to charge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;
pub mod types;
pub mod value;

pub use error::{BuildLog, CompileError};
pub use interp::{BufferBinding, KernelArgValue, NdRange, WorkItemCounters};
pub use types::{AddressSpace, ScalarType, Type};
pub use value::{Scalar, Value};

use std::collections::BTreeMap;
use std::sync::Arc;

/// A successfully built program: the analysed AST plus its kernel index.
#[derive(Debug, Clone)]
pub struct Program {
    source: String,
    unit: Arc<ast::TranslationUnit>,
    kernels: BTreeMap<String, ast::FunctionIndex>,
}

impl Program {
    /// Build (lex, parse, analyse) OpenCL C `source`.
    ///
    /// Mirrors `clBuildProgram`: on failure the returned [`BuildLog`]
    /// contains every diagnostic collected.
    pub fn build(source: &str) -> Result<Program, BuildLog> {
        let tokens = lexer::lex(source).map_err(BuildLog::from_single)?;
        let unit = parser::parse(&tokens).map_err(BuildLog::from_single)?;
        sema::check(&unit).map_err(BuildLog::from_errors)?;
        let mut kernels = BTreeMap::new();
        for (idx, f) in unit.functions.iter().enumerate() {
            if f.is_kernel {
                kernels.insert(f.name.clone(), ast::FunctionIndex(idx));
            }
        }
        Ok(Program { source: source.to_string(), unit: Arc::new(unit), kernels })
    }

    /// The original source string.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Names of all `__kernel` functions in the program.
    pub fn kernel_names(&self) -> Vec<String> {
        self.kernels.keys().cloned().collect()
    }

    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<KernelHandle> {
        self.kernels.get(name).map(|idx| KernelHandle {
            unit: Arc::clone(&self.unit),
            index: *idx,
            name: name.to_string(),
        })
    }

    /// The parsed translation unit (for inspection by tests and tools).
    pub fn unit(&self) -> &ast::TranslationUnit {
        &self.unit
    }
}

/// A kernel extracted from a built [`Program`] (`clCreateKernel`).
#[derive(Debug, Clone)]
pub struct KernelHandle {
    unit: Arc<ast::TranslationUnit>,
    index: ast::FunctionIndex,
    name: String,
}

impl KernelHandle {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel's declared parameters.
    pub fn params(&self) -> &[ast::Param] {
        &self.unit.functions[self.index.0].params
    }

    /// Number of declared parameters (`CL_KERNEL_NUM_ARGS`).
    pub fn num_args(&self) -> usize {
        self.params().len()
    }

    /// Execute the kernel over `range`, reading and writing the supplied
    /// argument values and buffer bindings.
    ///
    /// Returns per-work-item operation counters which the device model uses
    /// to derive modelled execution time.
    pub fn execute(
        &self,
        range: &NdRange,
        args: &[KernelArgValue],
        buffers: &mut [BufferBinding<'_>],
    ) -> Result<WorkItemCounters, CompileError> {
        interp::execute_kernel(&self.unit, self.index, range, args, buffers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VEC_ADD: &str = r#"
        __kernel void vec_add(__global const float* a,
                              __global const float* b,
                              __global float* out,
                              uint n) {
            size_t i = get_global_id(0);
            if (i < n) {
                out[i] = a[i] + b[i];
            }
        }
    "#;

    #[test]
    fn build_and_list_kernels() {
        let program = Program::build(VEC_ADD).expect("build");
        assert_eq!(program.kernel_names(), vec!["vec_add".to_string()]);
        let kernel = program.kernel("vec_add").unwrap();
        assert_eq!(kernel.num_args(), 4);
        assert!(program.kernel("missing").is_none());
    }

    #[test]
    fn build_error_produces_log() {
        let log = Program::build("__kernel void broken( {").unwrap_err();
        assert!(!log.messages.is_empty());
        assert!(log.to_string().contains("error"));
    }

    #[test]
    fn vec_add_executes() {
        let program = Program::build(VEC_ADD).unwrap();
        let kernel = program.kernel("vec_add").unwrap();
        let n = 128usize;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
        let mut a_bytes: Vec<u8> = a.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut b_bytes: Vec<u8> = b.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out_bytes = vec![0u8; n * 4];
        let range = NdRange::linear(n);
        let args = vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Buffer(1),
            KernelArgValue::Buffer(2),
            KernelArgValue::Scalar(Value::uint(n as u64)),
        ];
        let mut bindings = vec![
            BufferBinding::new(&mut a_bytes),
            BufferBinding::new(&mut b_bytes),
            BufferBinding::new(&mut out_bytes),
        ];
        let counters = kernel.execute(&range, &args, &mut bindings).expect("execute");
        assert_eq!(counters.work_items, n as u64);
        for i in 0..n {
            let v = f32::from_le_bytes(out_bytes[i * 4..i * 4 + 4].try_into().unwrap());
            assert_eq!(v, (i + 2 * i) as f32);
        }
    }
}
