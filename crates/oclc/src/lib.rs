//! # oclc — an OpenCL C subset compiler and work-group-parallel VM
//!
//! OpenCL programs ship their device code as *source strings* which the
//! runtime compiles per device (`clCreateProgramWithSource` +
//! `clBuildProgram`).  dOpenCL forwards those strings over the network and
//! lets the server's native implementation build them.  To reproduce that
//! path without a vendor compiler, this crate implements a practical subset
//! of OpenCL C:
//!
//! * scalar types (`bool`, `char`, `uchar`, `short`, `ushort`, `int`, `uint`,
//!   `long`, `ulong`, `size_t`, `float`, `double`) and small vector types
//!   (`float2`, `float4`, `int2`, `int4`, ...),
//! * `__global` / `__local` / `__constant` pointer kernel arguments,
//! * the usual expression grammar (arithmetic, comparison, logical, bitwise,
//!   ternary, casts, calls, indexing, vector component access),
//! * statements: declarations, assignment (including compound assignment),
//!   `if`/`else`, `for`, `while`, `do`, `return`, `break`, `continue`,
//! * work-item built-ins (`get_global_id`, `get_local_id`, `get_group_id`,
//!   `get_global_size`, `get_local_size`, `get_work_dim`) and a set of math
//!   built-ins (`sqrt`, `exp`, `log`, `fabs`, `pow`, `min`, `max`, `clamp`,
//!   `floor`, `ceil`, `sin`, `cos`, `native_*` aliases, ...),
//! * helper (non-kernel) functions callable from kernels,
//! * work-group `barrier(CLK_LOCAL_MEM_FENCE)` with coherent `__local`
//!   memory (see below).
//!
//! ## Compile pipeline
//!
//! [`Program::build`] corresponds to `clBuildProgram` and runs the full
//! pipeline **once**: [`lexer`] → [`parser`] → [`sema`] → lowering to a flat
//! register-style bytecode.  The bytecode is cached inside the [`Program`]
//! (and shared by every [`KernelHandle`] via `Arc`), so launching a kernel
//! never re-parses or re-lowers source — `execute` only runs the VM.
//!
//! ## Execution model and the barrier guarantee
//!
//! The VM executes one *work-group* at a time: a work-stealing driver fans
//! groups out across host threads, global buffers are shared, and each group
//! gets its own zeroed `__local` arenas.  Within a group, work-items run
//! batched in a tight bytecode loop; `barrier()` suspends each work-item
//! (its frame stack is parked) and the group resumes all items in phases.
//! This makes the classic barrier-separated local-memory reduction
//! bit-correct — all local-memory writes that precede the barrier are
//! visible to every work-item of the group after it.  Work-items of the same
//! group that reach *different* barriers (or only some of them reach one)
//! are reported as a "barrier divergence" error rather than hanging.
//!
//! ## `DCL_INTERP` escape hatch
//!
//! Setting `DCL_INTERP=tree` routes [`KernelHandle::execute`] through the
//! legacy tree-walking interpreter ([`interp`]), which remains the
//! differential-testing oracle (see [`KernelHandle::execute_tree`] /
//! [`KernelHandle::execute_vm`] for explicit selection).  The tree walker
//! runs work-items strictly one after another, so it *cannot* implement
//! barrier semantics; kernels that combine `barrier()` with `__local`-memory
//! writes are rejected with a clear error instead of silently producing
//! wrong results.  `DCL_VM_THREADS` caps the VM's worker threads (default:
//! available parallelism).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod ast;
pub mod builtins;
mod bytecode;
mod compile;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;
pub mod types;
pub mod value;
mod vm;

pub use error::{BuildLog, CompileError};
pub use interp::{BufferBinding, KernelArgValue, NdRange, WorkItemCounters};
pub use types::{AddressSpace, ScalarType, Type};
pub use value::{Scalar, Value};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts every successful [`Program::build`] in this process.  Lets the
/// runtime (and its tests) verify that launches reuse cached artifacts
/// instead of re-compiling kernel source per launch.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of successful [`Program::build`] calls so far in this process.
pub fn total_builds() -> u64 {
    BUILDS.load(Ordering::Relaxed)
}

/// Which executor [`KernelHandle::execute`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The bytecode VM with work-group parallelism (the default).
    Vm,
    /// The legacy tree-walking interpreter (`DCL_INTERP=tree`).
    Tree,
}

impl ExecMode {
    /// Parse a `DCL_INTERP` value; anything other than `"tree"` (case
    /// insensitive) selects the VM.
    pub fn parse(value: Option<&str>) -> ExecMode {
        match value {
            Some(v) if v.eq_ignore_ascii_case("tree") => ExecMode::Tree,
            _ => ExecMode::Vm,
        }
    }

    /// Read the mode from the `DCL_INTERP` environment variable.
    pub fn from_env() -> ExecMode {
        ExecMode::parse(std::env::var("DCL_INTERP").ok().as_deref())
    }
}

/// Worker-thread count for the VM: `DCL_VM_THREADS` if set (minimum 1),
/// otherwise the host's available parallelism.
fn default_threads() -> usize {
    match std::env::var("DCL_VM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// A successfully built program: the analysed AST, its kernel index, and the
/// lowered bytecode (compiled once, executed per launch).
#[derive(Debug, Clone)]
pub struct Program {
    source: String,
    unit: Arc<ast::TranslationUnit>,
    compiled: Arc<bytecode::CompiledUnit>,
    kernels: BTreeMap<String, ast::FunctionIndex>,
}

impl Program {
    /// Build (lex, parse, analyse, lower) OpenCL C `source`.
    ///
    /// Mirrors `clBuildProgram`: on failure the returned [`BuildLog`]
    /// contains every diagnostic collected.  The bytecode produced here is
    /// cached; kernel launches only execute it.
    pub fn build(source: &str) -> Result<Program, BuildLog> {
        let tokens = lexer::lex(source).map_err(BuildLog::from_single)?;
        let unit = parser::parse(&tokens).map_err(BuildLog::from_single)?;
        sema::check(&unit).map_err(BuildLog::from_errors)?;
        let compiled = compile::lower_unit(&unit).map_err(BuildLog::from_single)?;
        let mut kernels = BTreeMap::new();
        for (idx, f) in unit.functions.iter().enumerate() {
            if f.is_kernel {
                kernels.insert(f.name.clone(), ast::FunctionIndex(idx));
            }
        }
        BUILDS.fetch_add(1, Ordering::Relaxed);
        Ok(Program {
            source: source.to_string(),
            unit: Arc::new(unit),
            compiled: Arc::new(compiled),
            kernels,
        })
    }

    /// The original source string.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Names of all `__kernel` functions in the program.
    pub fn kernel_names(&self) -> Vec<String> {
        self.kernels.keys().cloned().collect()
    }

    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<KernelHandle> {
        self.kernels.get(name).map(|idx| KernelHandle {
            unit: Arc::clone(&self.unit),
            compiled: Arc::clone(&self.compiled),
            index: *idx,
            name: name.to_string(),
        })
    }

    /// The parsed translation unit (for inspection by tests and tools).
    pub fn unit(&self) -> &ast::TranslationUnit {
        &self.unit
    }
}

/// A kernel extracted from a built [`Program`] (`clCreateKernel`).  Carries
/// shared references to both the AST (for the tree-walking oracle) and the
/// cached bytecode, so cloning a handle never recompiles anything.
#[derive(Debug, Clone)]
pub struct KernelHandle {
    unit: Arc<ast::TranslationUnit>,
    compiled: Arc<bytecode::CompiledUnit>,
    index: ast::FunctionIndex,
    name: String,
}

impl KernelHandle {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel's declared parameters.
    pub fn params(&self) -> &[ast::Param] {
        &self.unit.functions[self.index.0].params
    }

    /// Number of declared parameters (`CL_KERNEL_NUM_ARGS`).
    pub fn num_args(&self) -> usize {
        self.params().len()
    }

    /// Execute the kernel over `range`, reading and writing the supplied
    /// argument values and buffer bindings.
    ///
    /// Dispatches to the bytecode VM unless `DCL_INTERP=tree` selects the
    /// legacy tree-walking interpreter.  Returns per-work-item operation
    /// counters which the device model uses to derive modelled execution
    /// time.
    pub fn execute(
        &self,
        range: &NdRange,
        args: &[KernelArgValue],
        buffers: &mut [BufferBinding<'_>],
    ) -> Result<WorkItemCounters, CompileError> {
        match ExecMode::from_env() {
            ExecMode::Vm => self.execute_vm(range, args, buffers),
            ExecMode::Tree => self.execute_tree(range, args, buffers),
        }
    }

    /// Execute on the legacy tree-walking interpreter (the differential
    /// oracle).  Rejects kernels that combine `barrier()` with
    /// `__local`-memory writes, which the serial walker would miscompute.
    pub fn execute_tree(
        &self,
        range: &NdRange,
        args: &[KernelArgValue],
        buffers: &mut [BufferBinding<'_>],
    ) -> Result<WorkItemCounters, CompileError> {
        interp::execute_kernel(&self.unit, self.index, range, args, buffers)
    }

    /// Execute on the bytecode VM with the default worker-thread count
    /// (`DCL_VM_THREADS` or the host's available parallelism).
    pub fn execute_vm(
        &self,
        range: &NdRange,
        args: &[KernelArgValue],
        buffers: &mut [BufferBinding<'_>],
    ) -> Result<WorkItemCounters, CompileError> {
        self.execute_vm_with_threads(range, args, buffers, default_threads())
    }

    /// Execute on the bytecode VM fanning work-groups across up to
    /// `threads` host threads.
    pub fn execute_vm_with_threads(
        &self,
        range: &NdRange,
        args: &[KernelArgValue],
        buffers: &mut [BufferBinding<'_>],
        threads: usize,
    ) -> Result<WorkItemCounters, CompileError> {
        vm::execute_kernel(&self.compiled, self.index.0, range, args, buffers, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VEC_ADD: &str = r#"
        __kernel void vec_add(__global const float* a,
                              __global const float* b,
                              __global float* out,
                              uint n) {
            size_t i = get_global_id(0);
            if (i < n) {
                out[i] = a[i] + b[i];
            }
        }
    "#;

    #[test]
    fn build_and_list_kernels() {
        let program = Program::build(VEC_ADD).expect("build");
        assert_eq!(program.kernel_names(), vec!["vec_add".to_string()]);
        let kernel = program.kernel("vec_add").unwrap();
        assert_eq!(kernel.num_args(), 4);
        assert!(program.kernel("missing").is_none());
    }

    #[test]
    fn build_error_produces_log() {
        let log = Program::build("__kernel void broken( {").unwrap_err();
        assert!(!log.messages.is_empty());
        assert!(log.to_string().contains("error"));
    }

    #[test]
    fn build_increments_build_counter() {
        let before = total_builds();
        let program = Program::build(VEC_ADD).unwrap();
        assert_eq!(total_builds(), before + 1);
        // Handle creation and cloning never recompile.
        let k1 = program.kernel("vec_add").unwrap();
        let _k2 = k1.clone();
        assert_eq!(total_builds(), before + 1);
    }

    #[test]
    fn exec_mode_parsing() {
        assert_eq!(ExecMode::parse(None), ExecMode::Vm);
        assert_eq!(ExecMode::parse(Some("vm")), ExecMode::Vm);
        assert_eq!(ExecMode::parse(Some("anything")), ExecMode::Vm);
        assert_eq!(ExecMode::parse(Some("tree")), ExecMode::Tree);
        assert_eq!(ExecMode::parse(Some("TREE")), ExecMode::Tree);
    }

    fn run_vec_add(
        run: impl Fn(
            &KernelHandle,
            &NdRange,
            &[KernelArgValue],
            &mut [BufferBinding<'_>],
        ) -> Result<WorkItemCounters, CompileError>,
    ) {
        let program = Program::build(VEC_ADD).unwrap();
        let kernel = program.kernel("vec_add").unwrap();
        let n = 128usize;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
        let mut a_bytes: Vec<u8> = a.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut b_bytes: Vec<u8> = b.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out_bytes = vec![0u8; n * 4];
        let range = NdRange::linear(n);
        let args = vec![
            KernelArgValue::Buffer(0),
            KernelArgValue::Buffer(1),
            KernelArgValue::Buffer(2),
            KernelArgValue::Scalar(Value::uint(n as u64)),
        ];
        let mut bindings = vec![
            BufferBinding::new(&mut a_bytes),
            BufferBinding::new(&mut b_bytes),
            BufferBinding::new(&mut out_bytes),
        ];
        let counters = run(&kernel, &range, &args, &mut bindings).expect("execute");
        assert_eq!(counters.work_items, n as u64);
        for i in 0..n {
            let v = f32::from_le_bytes(out_bytes[i * 4..i * 4 + 4].try_into().unwrap());
            assert_eq!(v, (i + 2 * i) as f32);
        }
    }

    #[test]
    fn vec_add_executes() {
        run_vec_add(|k, r, a, b| k.execute(r, a, b));
    }

    #[test]
    fn vec_add_executes_on_tree_walker() {
        run_vec_add(|k, r, a, b| k.execute_tree(r, a, b));
    }

    #[test]
    fn vec_add_executes_on_parallel_vm() {
        run_vec_add(|k, r, a, b| k.execute_vm_with_threads(r, a, b, 4));
    }
}
