//! Lexer for the OpenCL C subset.
//!
//! Handles line (`//`) and block (`/* */`) comments, preprocessor lines
//! (`#pragma`, `#define` of simple object-like constants is *not* expanded —
//! directive lines are skipped), decimal/hex integer literals with `u`/`U`
//! and `l`/`L` suffixes, and float literals with `f`/`F` suffixes.

use crate::error::{CompileError, Location};
use crate::token::{keyword_from_str, Punct, Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, column: 1 }
    }

    fn location(&self) -> Location {
        Location::new(self.line, self.column)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.location();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(CompileError::at(start, "unterminated block comment"))
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                Some(b'#') if self.column == 1 || self.prev_is_newline() => {
                    // Preprocessor directive: skip the whole (possibly
                    // continued) line.
                    loop {
                        match self.peek() {
                            None => break,
                            Some(b'\\') if self.peek2() == Some(b'\n') => {
                                self.bump();
                                self.bump();
                            }
                            Some(b'\n') => {
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn prev_is_newline(&self) -> bool {
        if self.pos == 0 {
            return true;
        }
        // Walk back over spaces/tabs to find the previous significant byte.
        let mut i = self.pos;
        while i > 0 {
            let c = self.src[i - 1];
            if c == b' ' || c == b'\t' {
                i -= 1;
            } else {
                return c == b'\n';
            }
        }
        true
    }

    fn lex_number(&mut self) -> Result<Token, CompileError> {
        let loc = self.location();
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start + 2..self.pos]).unwrap();
            let value = u64::from_str_radix(text, 16)
                .map_err(|e| CompileError::at(loc, format!("invalid hex literal: {e}")))?;
            let unsigned = self.consume_int_suffix();
            return Ok(Token::new(TokenKind::IntLiteral(value, unsigned), loc));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        } else if self.peek() == Some(b'.') {
            // e.g. "1." — still a float
            is_float = true;
            self.bump();
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut lookahead = self.pos + 1;
            if matches!(self.src.get(lookahead), Some(b'+') | Some(b'-')) {
                lookahead += 1;
            }
            if matches!(self.src.get(lookahead), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string();
        if is_float || matches!(self.peek(), Some(b'f') | Some(b'F')) {
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.bump();
            }
            let value: f64 = text
                .parse()
                .map_err(|e| CompileError::at(loc, format!("invalid float literal: {e}")))?;
            Ok(Token::new(TokenKind::FloatLiteral(value), loc))
        } else {
            let value: u64 = text
                .parse()
                .map_err(|e| CompileError::at(loc, format!("invalid integer literal: {e}")))?;
            let unsigned = self.consume_int_suffix();
            Ok(Token::new(TokenKind::IntLiteral(value, unsigned), loc))
        }
    }

    fn consume_int_suffix(&mut self) -> bool {
        let mut unsigned = false;
        for _ in 0..3 {
            match self.peek() {
                Some(b'u') | Some(b'U') => {
                    unsigned = true;
                    self.bump();
                }
                Some(b'l') | Some(b'L') => {
                    self.bump();
                }
                _ => break,
            }
        }
        unsigned
    }

    fn lex_ident(&mut self) -> Token {
        let loc = self.location();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if let Some(kw) = keyword_from_str(text) {
            Token::new(TokenKind::Keyword(kw), loc)
        } else {
            Token::new(TokenKind::Ident(text.to_string()), loc)
        }
    }

    fn lex_punct(&mut self) -> Result<Token, CompileError> {
        let loc = self.location();
        let c = self.bump().unwrap();
        let next = self.peek();
        let punct = match (c, next) {
            (b'+', Some(b'+')) => {
                self.bump();
                Punct::PlusPlus
            }
            (b'+', Some(b'=')) => {
                self.bump();
                Punct::PlusAssign
            }
            (b'+', _) => Punct::Plus,
            (b'-', Some(b'-')) => {
                self.bump();
                Punct::MinusMinus
            }
            (b'-', Some(b'=')) => {
                self.bump();
                Punct::MinusAssign
            }
            (b'-', _) => Punct::Minus,
            (b'*', Some(b'=')) => {
                self.bump();
                Punct::StarAssign
            }
            (b'*', _) => Punct::Star,
            (b'/', Some(b'=')) => {
                self.bump();
                Punct::SlashAssign
            }
            (b'/', _) => Punct::Slash,
            (b'%', Some(b'=')) => {
                self.bump();
                Punct::PercentAssign
            }
            (b'%', _) => Punct::Percent,
            (b'=', Some(b'=')) => {
                self.bump();
                Punct::Eq
            }
            (b'=', _) => Punct::Assign,
            (b'!', Some(b'=')) => {
                self.bump();
                Punct::Ne
            }
            (b'!', _) => Punct::Not,
            (b'<', Some(b'<')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Punct::ShlAssign
                } else {
                    Punct::Shl
                }
            }
            (b'<', Some(b'=')) => {
                self.bump();
                Punct::Le
            }
            (b'<', _) => Punct::Lt,
            (b'>', Some(b'>')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Punct::ShrAssign
                } else {
                    Punct::Shr
                }
            }
            (b'>', Some(b'=')) => {
                self.bump();
                Punct::Ge
            }
            (b'>', _) => Punct::Gt,
            (b'&', Some(b'&')) => {
                self.bump();
                Punct::AndAnd
            }
            (b'&', Some(b'=')) => {
                self.bump();
                Punct::AndAssign
            }
            (b'&', _) => Punct::Amp,
            (b'|', Some(b'|')) => {
                self.bump();
                Punct::OrOr
            }
            (b'|', Some(b'=')) => {
                self.bump();
                Punct::OrAssign
            }
            (b'|', _) => Punct::Pipe,
            (b'^', Some(b'=')) => {
                self.bump();
                Punct::XorAssign
            }
            (b'^', _) => Punct::Caret,
            (b'~', _) => Punct::Tilde,
            (b'(', _) => Punct::LParen,
            (b')', _) => Punct::RParen,
            (b'{', _) => Punct::LBrace,
            (b'}', _) => Punct::RBrace,
            (b'[', _) => Punct::LBracket,
            (b']', _) => Punct::RBracket,
            (b';', _) => Punct::Semicolon,
            (b',', _) => Punct::Comma,
            (b'.', _) => Punct::Dot,
            (b'?', _) => Punct::Question,
            (b':', _) => Punct::Colon,
            (other, _) => {
                return Err(CompileError::at(
                    loc,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        };
        Ok(Token::new(TokenKind::Punct(punct), loc))
    }
}

/// Tokenize `source`.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut lexer = Lexer::new(source);
    let mut tokens = Vec::new();
    loop {
        lexer.skip_trivia()?;
        let Some(c) = lexer.peek() else {
            tokens.push(Token::new(TokenKind::Eof, lexer.location()));
            return Ok(tokens);
        };
        let token = if c.is_ascii_digit() {
            lexer.lex_number()?
        } else if c.is_ascii_alphabetic() || c == b'_' {
            lexer.lex_ident()
        } else {
            lexer.lex_punct()?
        };
        tokens.push(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Keyword, Punct, TokenKind};

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_kernel_header() {
        let ks = kinds("__kernel void f(__global float* a)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Kernel),
                TokenKind::Keyword(Keyword::Void),
                TokenKind::Ident("f".into()),
                TokenKind::Punct(Punct::LParen),
                TokenKind::Keyword(Keyword::Global),
                TokenKind::Ident("float".into()),
                TokenKind::Punct(Punct::Star),
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::RParen),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLiteral(42, false));
        assert_eq!(kinds("42u")[0], TokenKind::IntLiteral(42, true));
        assert_eq!(kinds("0xff")[0], TokenKind::IntLiteral(255, false));
        assert_eq!(kinds("1.5")[0], TokenKind::FloatLiteral(1.5));
        assert_eq!(kinds("2.0f")[0], TokenKind::FloatLiteral(2.0));
        assert_eq!(kinds("3f")[0], TokenKind::FloatLiteral(3.0));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLiteral(1000.0));
        assert_eq!(kinds("1.5e-2")[0], TokenKind::FloatLiteral(0.015));
        assert_eq!(kinds("7ul")[0], TokenKind::IntLiteral(7, true));
    }

    #[test]
    fn skips_comments_and_directives() {
        let src = r#"
            // line comment
            /* block
               comment */
            #pragma OPENCL EXTENSION cl_khr_fp64 : enable
            #define UNUSED 1
            int
        "#;
        let ks = kinds(src);
        assert_eq!(ks, vec![TokenKind::Ident("int".into()), TokenKind::Eof]);
    }

    #[test]
    fn multi_char_operators() {
        let ks = kinds("a += b << 2; c >= d && e != f");
        assert!(ks.contains(&TokenKind::Punct(Punct::PlusAssign)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Shl)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ge)));
        assert!(ks.contains(&TokenKind::Punct(Punct::AndAnd)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ne)));
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("int x; /* oops").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        assert!(lex("int x = $;").is_err());
    }

    #[test]
    fn locations_track_lines() {
        let tokens = lex("int\nfloat x").unwrap();
        assert_eq!(tokens[0].location.line, 1);
        assert_eq!(tokens[1].location.line, 2);
        assert_eq!(tokens[2].location.line, 2);
        assert!(tokens[2].location.column > 1);
    }
}
