//! Flat register-style bytecode produced by [`crate::compile`] and executed
//! by [`crate::vm`].
//!
//! Each function (kernel or helper) lowers to a linear instruction stream
//! over an unbounded virtual register file.  Registers hold [`Value`]s; named
//! variables get a fixed register for their whole scope, expression
//! temporaries get fresh registers.  Control flow is explicit jumps, so the
//! VM's inner loop is a tight `match` over instructions instead of an AST
//! walk — this is what makes work-item batching in the inner loop cheap.
//!
//! Builtins are resolved at lowering time: work-item queries carry a
//! [`WorkItemFn`] tag, atomics an [`AtomicOp`], and `barrier()` becomes the
//! explicit [`Inst::Barrier`] instruction that the VM uses to suspend and
//! resume work-items in phases.

use crate::ast::{BinOp, UnOp};
use crate::error::Location;
use crate::types::{ScalarType, Type};
use crate::value::{Pointer, Scalar, Value};

/// A virtual register index within the current frame.
pub(crate) type Reg = u32;

/// Work-item query builtins, resolved at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkItemFn {
    GlobalId,
    LocalId,
    GroupId,
    GlobalSize,
    LocalSize,
    NumGroups,
    GlobalOffset,
    WorkDim,
}

/// Atomic read-modify-write builtins, resolved at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AtomicOp {
    Add,
    Sub,
    Xchg,
    Min,
    Max,
}

/// One bytecode instruction.
///
/// Conventions: `dst` registers are always written, operand registers are
/// only read.  Memory operands are `Value::Ptr` registers; `index` scales by
/// the pointee size exactly like the interpreter's place resolution.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// `dst = value` (literals and resolved builtin constants).
    Const { dst: Reg, value: Value },
    /// `dst = src` (register copy).
    Move { dst: Reg, src: Reg },
    /// `dst = (ty)src` — C-style conversion via `Value::convert_to`.
    Convert { dst: Reg, src: Reg, ty: Type },
    /// `dst = lhs op rhs` with the interpreter's promotion rules.
    Binary { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg },
    /// `dst = op src`.
    Unary { op: UnOp, dst: Reg, src: Reg },
    /// `dst = int(bool(src))` — normalises logical-operator results.
    Bool { dst: Reg, src: Reg },
    /// `dst = ptr[index]` (or `*ptr` when `index` is `None`).
    Load { dst: Reg, ptr: Reg, index: Option<Reg> },
    /// `ptr[index] = src` (or `*ptr = src`).
    Store { ptr: Reg, index: Option<Reg>, src: Reg },
    /// `dst = src.<lanes>` — vector component read / swizzle.
    Swizzle { dst: Reg, src: Reg, lanes: Vec<usize> },
    /// `dst.<lane> = src` — component write into a named vector register.
    SetLane { dst: Reg, lane: usize, src: Reg },
    /// `dst = (ty<width>)(args...)` — vector constructor with splat rules.
    VecCtor { dst: Reg, ty: ScalarType, width: u8, args: Vec<Reg> },
    /// Call a user function by compiled-function index.
    CallUser { dst: Reg, func: usize, args: Vec<Reg> },
    /// Call a pure math builtin by name.
    CallMath { dst: Reg, name: String, args: Vec<Reg> },
    /// `dst = get_*([dim])` work-item query.
    WorkItem { dst: Reg, which: WorkItemFn, dim: Option<Reg> },
    /// Atomic read-modify-write through a pointer; `dst` receives the old
    /// value.  `operand` defaults to `int 1` (the `atomic_inc` family).
    Atomic { op: AtomicOp, dst: Reg, ptr: Reg, operand: Option<Reg> },
    /// Work-group barrier: suspend this work-item until every item in the
    /// group reaches the same barrier.
    Barrier,
    /// Unconditional jump to instruction index `target`.
    Jump { target: usize },
    /// Jump to `target` when `cond` is falsy.
    JumpIfFalse { cond: Reg, target: usize },
    /// Jump to `target` when `cond` is truthy.
    JumpIfTrue { cond: Reg, target: usize },
    /// Return from the current frame (kernels always return `None`).
    Return { src: Option<Reg> },
}

// ---------------------------------------------------------------------------
// Quickened execution format
// ---------------------------------------------------------------------------
//
// [`Inst`] is the architectural bytecode: readable, debuggable, with inline
// heap payloads (constant `Value`s, lane lists, argument lists).  Executing
// it directly makes every dispatch drag those payloads along and every
// register write pay `Value`'s clone/drop glue.  `quicken` therefore decodes
// the stream **once per build** into fixed-size `Copy` instructions
// ([`QInst`], one per `Inst`, same indices — so jump targets and the
// per-instruction source-location table carry over unchanged) over a `Copy`
// register representation ([`Slot`]), with the rare heap payloads moved into
// side pools.  The VM executes only the quickened form; launches never pay
// for decoding.

/// Sentinel for "no register" in optional operand fields ([`QInst::Load`]
/// index, [`QInst::Return`] source, ...).
pub(crate) const NO_REG: Reg = Reg::MAX;

/// A `Copy` register slot.  Scalars and pointers are stored inline; vector
/// values live out of line in the frame's vector arena, where each register
/// owns the arena entry of its own index (`Slot::Vector` in register `r`
/// means "the lanes are in `vecs[r]`").  Keeping slots `Copy` is what makes
/// register moves plain 24-byte stores instead of clone + drop-glue calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Slot {
    /// A typed scalar, stored inline.
    Scalar(ScalarType, Scalar),
    /// A pointer into a buffer, stored inline.
    Ptr(Pointer),
    /// A vector whose lanes live in the frame arena at this register's index.
    Vector,
    /// The absence of a value (`void` returns, uninitialised registers).
    Void,
}

/// One quickened instruction.  Fixed-size and `Copy`; anything that would
/// need a heap payload refers into the [`QuickFunction`] pools instead.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QInst {
    /// `dst = slot` — scalar / pointer / void constants, inline.
    Const { dst: Reg, slot: Slot },
    /// `dst = vec_consts[pool]` — vector-valued constants (cold).
    ConstVec { dst: Reg, pool: u32 },
    /// `dst = src`.
    Move { dst: Reg, src: Reg },
    /// `dst = (ty)src` for scalar targets — the hot conversion (every
    /// variable assignment emits one).
    ConvertScalar { dst: Reg, src: Reg, ty: ScalarType },
    /// `dst = (types[pool])src` for vector / pointer targets.
    Convert { dst: Reg, src: Reg, pool: u32 },
    /// `dst = lhs op rhs`.
    Binary { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg },
    /// `dst = op src`.
    Unary { op: UnOp, dst: Reg, src: Reg },
    /// `dst = int(bool(src))`.
    Bool { dst: Reg, src: Reg },
    /// `dst = ptr[index]` (`index == NO_REG` means `*ptr`).
    Load { dst: Reg, ptr: Reg, index: Reg },
    /// `ptr[index] = src` (`index == NO_REG` means `*ptr`).
    Store { ptr: Reg, index: Reg, src: Reg },
    /// `dst = src.<lane>` — single-component read, the hot swizzle.
    Lane { dst: Reg, src: Reg, lane: u32 },
    /// `dst = src.<lane_lists[pool]>` — multi-component swizzle.
    Swizzle { dst: Reg, src: Reg, pool: u32 },
    /// `dst.<lane> = src`.
    SetLane { dst: Reg, lane: u32, src: Reg },
    /// `dst = (ty<width>)(reg_lists[pool]...)`.
    VecCtor { dst: Reg, ty: ScalarType, width: u8, pool: u32 },
    /// Call helper function `func` with arguments `reg_lists[pool]`.
    CallUser { dst: Reg, func: u32, pool: u32 },
    /// Call the math builtin described by `math_calls[pool]`.
    CallMath { dst: Reg, pool: u32 },
    /// `dst = get_*([dim])` (`dim == NO_REG` means no dimension argument).
    WorkItem { dst: Reg, which: WorkItemFn, dim: Reg },
    /// Atomic read-modify-write (`operand == NO_REG` means the implicit 1).
    Atomic { op: AtomicOp, dst: Reg, ptr: Reg, operand: Reg },
    /// Work-group barrier.
    Barrier,
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `cond` is falsy.
    JumpIfFalse { cond: Reg, target: u32 },
    /// Jump when `cond` is truthy.
    JumpIfTrue { cond: Reg, target: u32 },
    /// Return from the frame (`src == NO_REG` means no value).
    Return { src: Reg },
    /// Padding left behind by [`fuse`]; never executed (the preceding fused
    /// instruction advances `pc` past it), only keeps indices aligned with
    /// the location table and jump targets.
    Nop,
    /// Fused `Const` + `Binary` with the constant on the right:
    /// `cdst = imms[imm]; dst = lhs op cdst`.  The constant lives in the
    /// [`QuickFunction::imms`] pool so this variant does not grow [`QInst`].
    BinaryImmR { op: BinOp, dst: Reg, lhs: Reg, cdst: Reg, imm: u32 },
    /// Fused `Const` + `Binary` with the constant on the left:
    /// `cdst = imms[imm]; dst = cdst op rhs`.
    BinaryImmL { op: BinOp, dst: Reg, cdst: Reg, rhs: Reg, imm: u32 },
    /// Fused `Binary` + `JumpIfFalse` on its result.
    BinaryJf { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg, target: u32 },
    /// Fused `Binary` + `JumpIfTrue` on its result.
    BinaryJt { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg, target: u32 },
    /// Fused `Binary` + `ConvertScalar` of its result: `dst = lhs op rhs;
    /// cdst = (ty)dst`.
    BinaryCvt { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg, cdst: Reg, ty: ScalarType },
    /// Fused `Mul` + `Mul` + `Add`/`Sub` over the two products:
    /// `t1 = a * b; t2 = c * d; dst = t1 op t2`.  Both temporaries are still
    /// written, so the fusion is invisible to any other reader and every
    /// error surfaces at its original instruction's location.
    MulMulOp { op: BinOp, dst: Reg, t1: Reg, a: Reg, b: Reg, t2: Reg, c: Reg, d: Reg },
    /// Fused `Const` + `Binary` + `JumpIfFalse` on the result:
    /// `cdst = imms[imm]; dst = lhs op cdst; if !dst jump target`.
    BinaryImmJf { op: BinOp, dst: Reg, lhs: Reg, cdst: Reg, imm: u32, target: u32 },
    /// Fused `Const` + `Binary` + `ConvertScalar` of the result:
    /// `cdst = imms[imm]; dst = lhs op cdst; vdst = (ty)dst`.
    BinaryImmCvt { op: BinOp, dst: Reg, lhs: Reg, cdst: Reg, imm: u32, vdst: Reg, ty: ScalarType },
}

/// A quickened function body: the `Copy` instruction stream plus the side
/// pools its instructions index into.
#[derive(Debug, Clone, Default)]
pub(crate) struct QuickFunction {
    /// Quickened stream, index-for-index parallel to [`CompiledFunction::insts`].
    pub insts: Vec<QInst>,
    /// Vector-valued constants ([`QInst::ConstVec`]).
    pub vec_consts: Vec<Value>,
    /// Conversion targets that are not plain scalars ([`QInst::Convert`]).
    pub types: Vec<Type>,
    /// Multi-component swizzle lane lists ([`QInst::Swizzle`]).
    pub lane_lists: Vec<Vec<usize>>,
    /// Argument registers for calls and vector constructors.
    pub reg_lists: Vec<Vec<Reg>>,
    /// Math-builtin calls: name and argument registers ([`QInst::CallMath`]).
    pub math_calls: Vec<(String, Vec<Reg>)>,
    /// Immediate operands of fused instructions ([`QInst::BinaryImmR`] /
    /// [`QInst::BinaryImmL`]).
    pub imms: Vec<Slot>,
}

/// Decode an [`Inst`] stream into its quickened form.  Runs once per
/// [`crate::Program::build`]; the mapping is 1:1 so jump targets and the
/// location table stay valid without rewriting.
pub(crate) fn quicken(insts: &[Inst]) -> QuickFunction {
    let mut q = QuickFunction { insts: Vec::with_capacity(insts.len()), ..Default::default() };
    for inst in insts {
        let qi = match inst {
            Inst::Const { dst, value } => match value {
                Value::Scalar(t, s) => QInst::Const { dst: *dst, slot: Slot::Scalar(*t, *s) },
                Value::Ptr(p) => QInst::Const { dst: *dst, slot: Slot::Ptr(*p) },
                Value::Void => QInst::Const { dst: *dst, slot: Slot::Void },
                Value::Vector(..) => {
                    q.vec_consts.push(value.clone());
                    QInst::ConstVec { dst: *dst, pool: (q.vec_consts.len() - 1) as u32 }
                }
            },
            Inst::Move { dst, src } => QInst::Move { dst: *dst, src: *src },
            Inst::Convert { dst, src, ty } => match ty {
                Type::Scalar(st) => QInst::ConvertScalar { dst: *dst, src: *src, ty: *st },
                other => {
                    q.types.push(other.clone());
                    QInst::Convert { dst: *dst, src: *src, pool: (q.types.len() - 1) as u32 }
                }
            },
            Inst::Binary { op, dst, lhs, rhs } => {
                QInst::Binary { op: *op, dst: *dst, lhs: *lhs, rhs: *rhs }
            }
            Inst::Unary { op, dst, src } => QInst::Unary { op: *op, dst: *dst, src: *src },
            Inst::Bool { dst, src } => QInst::Bool { dst: *dst, src: *src },
            Inst::Load { dst, ptr, index } => {
                QInst::Load { dst: *dst, ptr: *ptr, index: index.unwrap_or(NO_REG) }
            }
            Inst::Store { ptr, index, src } => {
                QInst::Store { ptr: *ptr, index: index.unwrap_or(NO_REG), src: *src }
            }
            Inst::Swizzle { dst, src, lanes } if lanes.len() == 1 => {
                QInst::Lane { dst: *dst, src: *src, lane: lanes[0] as u32 }
            }
            Inst::Swizzle { dst, src, lanes } => {
                q.lane_lists.push(lanes.clone());
                QInst::Swizzle { dst: *dst, src: *src, pool: (q.lane_lists.len() - 1) as u32 }
            }
            Inst::SetLane { dst, lane, src } => {
                QInst::SetLane { dst: *dst, lane: *lane as u32, src: *src }
            }
            Inst::VecCtor { dst, ty, width, args } => {
                q.reg_lists.push(args.clone());
                QInst::VecCtor {
                    dst: *dst,
                    ty: *ty,
                    width: *width,
                    pool: (q.reg_lists.len() - 1) as u32,
                }
            }
            Inst::CallUser { dst, func, args } => {
                q.reg_lists.push(args.clone());
                QInst::CallUser {
                    dst: *dst,
                    func: *func as u32,
                    pool: (q.reg_lists.len() - 1) as u32,
                }
            }
            Inst::CallMath { dst, name, args } => {
                q.math_calls.push((name.clone(), args.clone()));
                QInst::CallMath { dst: *dst, pool: (q.math_calls.len() - 1) as u32 }
            }
            Inst::WorkItem { dst, which, dim } => {
                QInst::WorkItem { dst: *dst, which: *which, dim: dim.unwrap_or(NO_REG) }
            }
            Inst::Atomic { op, dst, ptr, operand } => {
                QInst::Atomic { op: *op, dst: *dst, ptr: *ptr, operand: operand.unwrap_or(NO_REG) }
            }
            Inst::Barrier => QInst::Barrier,
            Inst::Jump { target } => QInst::Jump { target: *target as u32 },
            Inst::JumpIfFalse { cond, target } => {
                QInst::JumpIfFalse { cond: *cond, target: *target as u32 }
            }
            Inst::JumpIfTrue { cond, target } => {
                QInst::JumpIfTrue { cond: *cond, target: *target as u32 }
            }
            Inst::Return { src } => QInst::Return { src: src.unwrap_or(NO_REG) },
        };
        q.insts.push(qi);
    }
    fuse(&mut q);
    q
}

/// Superinstruction pass: greedily fuse adjacent triples and pairs into one
/// dispatch, replacing the consumed instructions with [`QInst::Nop`] so
/// every index (and with it the location table and all jump targets) stays
/// put.  A group is only fused when none of its trailing instructions is a
/// jump target — a fused instruction advances `pc` past its padding, so
/// control must never be able to land on it.  Every fused form still writes
/// all the intermediate registers the original sequence wrote and evaluates
/// in the original order, so fusion is invisible to other readers and to
/// error reporting.
fn fuse(q: &mut QuickFunction) {
    let QuickFunction { insts, imms, .. } = q;
    let mut is_target = vec![false; insts.len()];
    for inst in insts.iter() {
        let t = match *inst {
            QInst::Jump { target }
            | QInst::JumpIfFalse { target, .. }
            | QInst::JumpIfTrue { target, .. } => target,
            _ => continue,
        };
        if let Some(flag) = is_target.get_mut(t as usize) {
            *flag = true;
        }
    }

    let mut i = 0;
    while i + 1 < insts.len() {
        if is_target[i + 1] {
            i += 1;
            continue;
        }
        // Triples first, so a pair rule does not eat the head of a longer
        // pattern.
        if i + 2 < insts.len() && !is_target[i + 2] {
            let fused3 = match (insts[i], insts[i + 1], insts[i + 2]) {
                // `t1 = a * b; t2 = c * d; dst = t1 op t2` — the polynomial
                // step shape (`zr*zr + zi*zi`, dot products, ...).
                (
                    QInst::Binary { op: BinOp::Mul, dst: t1, lhs: a, rhs: b },
                    QInst::Binary { op: BinOp::Mul, dst: t2, lhs: c, rhs: d },
                    QInst::Binary { op, dst, lhs, rhs },
                ) if (op == BinOp::Add || op == BinOp::Sub)
                    && lhs == t1
                    && rhs == t2
                    && t1 != t2
                    && c != t1
                    && d != t1 =>
                {
                    Some(QInst::MulMulOp { op, dst, t1, a, b, t2, c, d })
                }
                // Constant compared / combined and immediately branched on
                // (`while (x <= 4.0f)` loop headers).
                (
                    QInst::Const { dst: c, slot },
                    QInst::Binary { op, dst, lhs, rhs },
                    QInst::JumpIfFalse { cond, target },
                ) if rhs == c && lhs != c && cond == dst => {
                    imms.push(slot);
                    Some(QInst::BinaryImmJf {
                        op,
                        dst,
                        lhs,
                        cdst: c,
                        imm: (imms.len() - 1) as u32,
                        target,
                    })
                }
                // Constant combined and the result converted into a typed
                // variable (`iter = iter + 1` counter updates).
                (
                    QInst::Const { dst: c, slot },
                    QInst::Binary { op, dst, lhs, rhs },
                    QInst::ConvertScalar { dst: vdst, src, ty },
                ) if rhs == c && lhs != c && src == dst => {
                    imms.push(slot);
                    Some(QInst::BinaryImmCvt {
                        op,
                        dst,
                        lhs,
                        cdst: c,
                        imm: (imms.len() - 1) as u32,
                        vdst,
                        ty,
                    })
                }
                _ => None,
            };
            if let Some(f) = fused3 {
                insts[i] = f;
                insts[i + 1] = QInst::Nop;
                insts[i + 2] = QInst::Nop;
                i += 3;
                continue;
            }
        }
        let fused = match (insts[i], insts[i + 1]) {
            // A constant feeding the next binary op becomes an immediate
            // operand; the constant register is still written, so any other
            // (unexpected) reader stays correct.
            (QInst::Const { dst: c, slot }, QInst::Binary { op, dst, lhs, rhs })
                if rhs == c && lhs != c =>
            {
                imms.push(slot);
                Some(QInst::BinaryImmR { op, dst, lhs, cdst: c, imm: (imms.len() - 1) as u32 })
            }
            (QInst::Const { dst: c, slot }, QInst::Binary { op, dst, lhs, rhs })
                if lhs == c && rhs != c =>
            {
                imms.push(slot);
                Some(QInst::BinaryImmL { op, dst, cdst: c, rhs, imm: (imms.len() - 1) as u32 })
            }
            // A binary op whose result is immediately branched on (loop and
            // `if` conditions after short-circuit lowering).
            (QInst::Binary { op, dst, lhs, rhs }, QInst::JumpIfFalse { cond, target })
                if cond == dst =>
            {
                Some(QInst::BinaryJf { op, dst, lhs, rhs, target })
            }
            (QInst::Binary { op, dst, lhs, rhs }, QInst::JumpIfTrue { cond, target })
                if cond == dst =>
            {
                Some(QInst::BinaryJt { op, dst, lhs, rhs, target })
            }
            // A binary op whose result is immediately converted (every
            // arithmetic assignment lowers to this shape).
            (QInst::Binary { op, dst, lhs, rhs }, QInst::ConvertScalar { dst: cd, src, ty })
                if src == dst =>
            {
                Some(QInst::BinaryCvt { op, dst, lhs, rhs, cdst: cd, ty })
            }
            _ => None,
        };
        match fused {
            Some(f) => {
                insts[i] = f;
                insts[i + 1] = QInst::Nop;
                i += 2;
            }
            None => i += 1,
        }
    }
}

/// A lowered function body: instructions plus per-instruction source
/// locations (used only on error paths) and frame metadata.
#[derive(Debug, Clone)]
pub(crate) struct CompiledFunction {
    /// Function name (for diagnostics).
    pub name: String,
    /// Quickened stream the VM executes, decoded once at build from the
    /// architectural [`Inst`] form (see [`quicken`]).
    pub quick: QuickFunction,
    /// Source location per instruction, attached to runtime errors.
    pub locs: Vec<Location>,
    /// Size of the register file a frame needs.
    pub num_regs: usize,
    /// Declared parameter types; arguments are converted on call.
    pub param_types: Vec<Type>,
    /// Declared parameter names (for argument-binding diagnostics).
    pub param_names: Vec<String>,
    /// Declared return type; return values are converted on return.
    pub return_type: Type,
}

/// A lowered kernel: the function body plus the launch-relevant facts the
/// driver needs to pick an execution strategy.
#[derive(Debug, Clone)]
pub(crate) struct CompiledKernel {
    /// The kernel body (and `param_types` for argument binding).
    pub func: CompiledFunction,
    /// The kernel (or a helper it calls) executes `barrier()`.
    pub has_barrier: bool,
    /// The kernel observes work-group shape (`get_local_id`,
    /// `get_local_size`, `get_group_id`, `get_num_groups`), so the driver
    /// must not re-chunk an unspecified local size.
    pub observes_group_shape: bool,
}

/// All lowered functions of a translation unit.  Kernels are keyed by their
/// [`crate::ast::FunctionIndex`] position; helpers by their compiled index
/// (referenced from [`Inst::CallUser`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct CompiledUnit {
    /// Non-kernel helper functions, indexed by `Inst::CallUser::func`.
    pub functions: Vec<CompiledFunction>,
    /// Kernels keyed by AST function index.
    pub kernels: std::collections::HashMap<usize, CompiledKernel>,
}

/// Prove the invariants the VM's dispatch loop relies on to skip bounds
/// checks (see the `trusted` helpers in [`crate::vm`]):
///
/// * every register operand is `< num_regs` (or the `NO_REG` sentinel where
///   the instruction allows one), including registers inside pooled lists;
/// * every pool index is in bounds for its pool;
/// * every jump target is in bounds and never lands on [`QInst::Nop`]
///   padding;
/// * every fused instruction is followed by its [`QInst::Nop`] pad, so a
///   `pc += 2` advance stays on real instructions;
/// * the stream ends with [`QInst::Return`], so sequential fall-through can
///   never run past the end.
///
/// Lowering establishes all of these by construction; this pass re-checks
/// them once per build so a lowering bug surfaces as a build error instead
/// of undefined behaviour at launch time.
pub(crate) fn verify(q: &QuickFunction, num_regs: usize) -> Result<(), String> {
    let len = q.insts.len();
    let reg = |r: Reg| -> Result<(), String> {
        if (r as usize) < num_regs {
            Ok(())
        } else {
            Err(format!("register r{r} out of range (frame has {num_regs})"))
        }
    };
    let opt_reg = |r: Reg| if r == NO_REG { Ok(()) } else { reg(r) };
    let target = |t: u32| -> Result<(), String> {
        match q.insts.get(t as usize) {
            Some(QInst::Nop) => Err(format!("jump target {t} lands on fusion padding")),
            Some(_) => Ok(()),
            None => Err(format!("jump target {t} out of range (stream has {len})")),
        }
    };
    let pool = |p: u32, len: usize, name: &str| -> Result<(), String> {
        if (p as usize) < len {
            Ok(())
        } else {
            Err(format!("{name} pool index {p} out of range ({len})"))
        }
    };
    match q.insts.last() {
        Some(QInst::Return { .. }) => {}
        _ => return Err("instruction stream does not end with Return".into()),
    }
    for (i, inst) in q.insts.iter().enumerate() {
        match *inst {
            QInst::Const { dst, .. } => reg(dst)?,
            QInst::ConstVec { dst, pool: p } => {
                reg(dst)?;
                pool(p, q.vec_consts.len(), "vec_consts")?;
            }
            QInst::Move { dst, src }
            | QInst::ConvertScalar { dst, src, .. }
            | QInst::Unary { dst, src, .. }
            | QInst::Bool { dst, src }
            | QInst::Lane { dst, src, .. }
            | QInst::SetLane { dst, src, .. } => {
                reg(dst)?;
                reg(src)?;
            }
            QInst::Convert { dst, src, pool: p } => {
                reg(dst)?;
                reg(src)?;
                pool(p, q.types.len(), "types")?;
            }
            QInst::Binary { dst, lhs, rhs, .. } => {
                reg(dst)?;
                reg(lhs)?;
                reg(rhs)?;
            }
            QInst::Load { dst, ptr, index } => {
                reg(dst)?;
                reg(ptr)?;
                opt_reg(index)?;
            }
            QInst::Store { ptr, index, src } => {
                reg(ptr)?;
                opt_reg(index)?;
                reg(src)?;
            }
            QInst::Swizzle { dst, src, pool: p } => {
                reg(dst)?;
                reg(src)?;
                pool(p, q.lane_lists.len(), "lane_lists")?;
            }
            QInst::VecCtor { dst, pool: p, .. } | QInst::CallUser { dst, pool: p, .. } => {
                reg(dst)?;
                pool(p, q.reg_lists.len(), "reg_lists")?;
                for &a in &q.reg_lists[p as usize] {
                    reg(a)?;
                }
            }
            QInst::CallMath { dst, pool: p } => {
                reg(dst)?;
                pool(p, q.math_calls.len(), "math_calls")?;
                for &a in &q.math_calls[p as usize].1 {
                    reg(a)?;
                }
            }
            QInst::WorkItem { dst, dim, .. } => {
                reg(dst)?;
                opt_reg(dim)?;
            }
            QInst::Atomic { dst, ptr, operand, .. } => {
                reg(dst)?;
                reg(ptr)?;
                opt_reg(operand)?;
            }
            QInst::Barrier | QInst::Nop => {}
            QInst::Jump { target: t } => target(t)?,
            QInst::JumpIfFalse { cond, target: t } | QInst::JumpIfTrue { cond, target: t } => {
                reg(cond)?;
                target(t)?;
            }
            QInst::Return { src } => opt_reg(src)?,
            QInst::BinaryImmR { dst, lhs, cdst, imm, .. } => {
                reg(dst)?;
                reg(lhs)?;
                reg(cdst)?;
                pool(imm, q.imms.len(), "imms")?;
            }
            QInst::BinaryImmL { dst, cdst, rhs, imm, .. } => {
                reg(dst)?;
                reg(cdst)?;
                reg(rhs)?;
                pool(imm, q.imms.len(), "imms")?;
            }
            QInst::BinaryJf { dst, lhs, rhs, target: t, .. }
            | QInst::BinaryJt { dst, lhs, rhs, target: t, .. } => {
                reg(dst)?;
                reg(lhs)?;
                reg(rhs)?;
                target(t)?;
            }
            QInst::BinaryCvt { dst, lhs, rhs, cdst, .. } => {
                reg(dst)?;
                reg(lhs)?;
                reg(rhs)?;
                reg(cdst)?;
            }
            QInst::MulMulOp { dst, t1, a, b, t2, c, d, .. } => {
                reg(dst)?;
                reg(t1)?;
                reg(a)?;
                reg(b)?;
                reg(t2)?;
                reg(c)?;
                reg(d)?;
            }
            QInst::BinaryImmJf { dst, lhs, cdst, imm, target: t, .. } => {
                reg(dst)?;
                reg(lhs)?;
                reg(cdst)?;
                pool(imm, q.imms.len(), "imms")?;
                target(t)?;
            }
            QInst::BinaryImmCvt { dst, lhs, cdst, imm, vdst, .. } => {
                reg(dst)?;
                reg(lhs)?;
                reg(cdst)?;
                pool(imm, q.imms.len(), "imms")?;
                reg(vdst)?;
            }
        }
        // A fused instruction advances `pc` past its padding; every padding
        // slot must exist and actually be padding.
        let pads = match inst {
            QInst::BinaryImmR { .. }
            | QInst::BinaryImmL { .. }
            | QInst::BinaryJf { .. }
            | QInst::BinaryJt { .. }
            | QInst::BinaryCvt { .. } => 1,
            QInst::MulMulOp { .. } | QInst::BinaryImmJf { .. } | QInst::BinaryImmCvt { .. } => 2,
            _ => 0,
        };
        for pad in 1..=pads {
            if !matches!(q.insts.get(i + pad), Some(QInst::Nop)) {
                return Err(format!(
                    "fused instruction at {i} is missing Nop padding at {}",
                    i + pad
                ));
            }
        }
    }
    Ok(())
}
