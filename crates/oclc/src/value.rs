//! Runtime values used by the interpreter.

use crate::error::CompileError;
use crate::types::{AddressSpace, ScalarType, Type};

/// A scalar runtime value.  Signed integers, unsigned integers and floats are
/// kept in their widest representation; the associated [`ScalarType`] on
/// [`Value`] determines truncation on stores and conversions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Signed integer payload.
    I(i64),
    /// Unsigned integer payload.
    U(u64),
    /// Floating-point payload.
    F(f64),
}

impl Scalar {
    /// Value as f64 (integers are converted).
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::I(v) => v as f64,
            Scalar::U(v) => v as f64,
            Scalar::F(v) => v,
        }
    }

    /// Value as i64 (floats are truncated toward zero).
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::I(v) => v,
            Scalar::U(v) => v as i64,
            Scalar::F(v) => v as i64,
        }
    }

    /// Value as u64 (floats truncated; negative signed values wrap).
    pub fn as_u64(self) -> u64 {
        match self {
            Scalar::I(v) => v as u64,
            Scalar::U(v) => v,
            Scalar::F(v) => v as u64,
        }
    }

    /// C truthiness.
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::I(v) => v != 0,
            Scalar::U(v) => v != 0,
            Scalar::F(v) => v != 0.0,
        }
    }
}

/// A pointer into one of the kernel's buffer bindings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pointer {
    /// Index of the buffer binding this pointer refers to.  `u32` keeps
    /// [`Pointer`] at 16 bytes so the VM's `Copy` register slots stay 24
    /// bytes; launches never bind anywhere near 2^32 buffers.
    pub buffer: u32,
    /// Byte offset from the start of the buffer.
    pub byte_offset: i64,
    /// Element type pointed at.
    pub pointee: ScalarType,
    /// Address space of the pointee.
    pub space: AddressSpace,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A typed scalar.
    Scalar(ScalarType, Scalar),
    /// A typed vector of scalar lanes.
    Vector(ScalarType, Vec<Scalar>),
    /// A pointer into a buffer.
    Ptr(Pointer),
    /// The absence of a value (`void` returns).
    Void,
}

impl Value {
    /// Convenience constructor: `int`.
    pub fn int(v: i64) -> Value {
        Value::Scalar(ScalarType::Int, Scalar::I(v))
    }

    /// Convenience constructor: `uint` / `size_t`-compatible unsigned value.
    pub fn uint(v: u64) -> Value {
        Value::Scalar(ScalarType::UInt, Scalar::U(v))
    }

    /// Convenience constructor: `size_t`.
    pub fn size_t(v: u64) -> Value {
        Value::Scalar(ScalarType::SizeT, Scalar::U(v))
    }

    /// Convenience constructor: `long`.
    pub fn long(v: i64) -> Value {
        Value::Scalar(ScalarType::Long, Scalar::I(v))
    }

    /// Convenience constructor: `float`.
    pub fn float(v: f32) -> Value {
        Value::Scalar(ScalarType::Float, Scalar::F(v as f64))
    }

    /// Convenience constructor: `double`.
    pub fn double(v: f64) -> Value {
        Value::Scalar(ScalarType::Double, Scalar::F(v))
    }

    /// Convenience constructor: `bool`.
    pub fn boolean(v: bool) -> Value {
        Value::Scalar(ScalarType::Bool, Scalar::U(u64::from(v)))
    }

    /// The static type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::Scalar(t, _) => Type::Scalar(*t),
            Value::Vector(t, lanes) => Type::Vector(*t, lanes.len() as u8),
            Value::Ptr(p) => Type::Pointer {
                pointee: Box::new(Type::Scalar(p.pointee)),
                space: p.space,
                is_const: false,
            },
            Value::Void => Type::Void,
        }
    }

    /// Truthiness for conditions; errors on pointers/vectors used directly.
    pub fn as_bool(&self) -> Result<bool, CompileError> {
        match self {
            Value::Scalar(_, s) => Ok(s.as_bool()),
            other => Err(CompileError::new(format!(
                "value of type {} cannot be used as a condition",
                other.ty()
            ))),
        }
    }

    /// Scalar payload (error for non-scalars).
    pub fn scalar(&self) -> Result<Scalar, CompileError> {
        match self {
            Value::Scalar(_, s) => Ok(*s),
            other => {
                Err(CompileError::new(format!("expected a scalar value, found {}", other.ty())))
            }
        }
    }

    /// Value as f64.
    pub fn as_f64(&self) -> Result<f64, CompileError> {
        Ok(self.scalar()?.as_f64())
    }

    /// Value as i64.
    pub fn as_i64(&self) -> Result<i64, CompileError> {
        Ok(self.scalar()?.as_i64())
    }

    /// Value as u64.
    pub fn as_u64(&self) -> Result<u64, CompileError> {
        Ok(self.scalar()?.as_u64())
    }

    /// Value as usize (for indices and sizes).
    pub fn as_usize(&self) -> Result<usize, CompileError> {
        Ok(self.scalar()?.as_u64() as usize)
    }

    /// Convert this value to the given scalar type (C-style conversion with
    /// truncation/wrapping).
    pub fn convert_to_scalar(&self, target: ScalarType) -> Result<Value, CompileError> {
        let s = self.scalar()?;
        Ok(Value::Scalar(target, convert_scalar(s, target)))
    }

    /// Convert to an arbitrary subset type (scalar, vector splat, or pointer
    /// passthrough).
    pub fn convert_to(&self, target: &Type) -> Result<Value, CompileError> {
        match (self, target) {
            (_, Type::Scalar(t)) => self.convert_to_scalar(*t),
            (Value::Vector(_, lanes), Type::Vector(t, n)) => {
                if lanes.len() != *n as usize {
                    return Err(CompileError::new(format!(
                        "cannot convert {}-lane vector to {}",
                        lanes.len(),
                        target
                    )));
                }
                Ok(Value::Vector(*t, lanes.iter().map(|l| convert_scalar(*l, *t)).collect()))
            }
            (Value::Scalar(_, s), Type::Vector(t, n)) => {
                // Scalar splat.
                Ok(Value::Vector(*t, vec![convert_scalar(*s, *t); *n as usize]))
            }
            (Value::Ptr(p), Type::Pointer { pointee, space, .. }) => {
                let pointee = pointee.element_scalar().ok_or_else(|| {
                    CompileError::new("only pointers to scalar types are supported")
                })?;
                Ok(Value::Ptr(Pointer { pointee, space: *space, ..*p }))
            }
            (v, t) => Err(CompileError::new(format!("cannot convert {} to {}", v.ty(), t))),
        }
    }
}

/// Convert a scalar payload to the representation appropriate for `target`,
/// applying C-style truncation and wrapping semantics.
pub fn convert_scalar(s: Scalar, target: ScalarType) -> Scalar {
    match target {
        ScalarType::Float | ScalarType::Double => {
            let f = s.as_f64();
            if target == ScalarType::Float {
                Scalar::F(f as f32 as f64)
            } else {
                Scalar::F(f)
            }
        }
        ScalarType::Bool => Scalar::U(u64::from(s.as_bool())),
        ScalarType::Char => Scalar::I(s.as_i64() as i8 as i64),
        ScalarType::UChar => Scalar::U(s.as_u64() as u8 as u64),
        ScalarType::Short => Scalar::I(s.as_i64() as i16 as i64),
        ScalarType::UShort => Scalar::U(s.as_u64() as u16 as u64),
        ScalarType::Int => Scalar::I(s.as_i64() as i32 as i64),
        ScalarType::UInt => Scalar::U(s.as_u64() as u32 as u64),
        ScalarType::Long => Scalar::I(s.as_i64()),
        ScalarType::ULong | ScalarType::SizeT => Scalar::U(s.as_u64()),
    }
}

/// Read a scalar of type `ty` from `bytes` at `offset` (little-endian).
pub fn load_scalar(bytes: &[u8], offset: usize, ty: ScalarType) -> Result<Scalar, CompileError> {
    let size = ty.size();
    let end =
        offset.checked_add(size).ok_or_else(|| CompileError::new("pointer offset overflow"))?;
    if end > bytes.len() {
        return Err(CompileError::new(format!(
            "out-of-bounds read of {size} bytes at offset {offset} (buffer is {} bytes)",
            bytes.len()
        )));
    }
    let raw = &bytes[offset..end];
    Ok(match ty {
        ScalarType::Bool => Scalar::U(u64::from(raw[0] != 0)),
        ScalarType::Char => Scalar::I(raw[0] as i8 as i64),
        ScalarType::UChar => Scalar::U(raw[0] as u64),
        ScalarType::Short => Scalar::I(i16::from_le_bytes([raw[0], raw[1]]) as i64),
        ScalarType::UShort => Scalar::U(u16::from_le_bytes([raw[0], raw[1]]) as u64),
        ScalarType::Int => Scalar::I(i32::from_le_bytes(raw.try_into().unwrap()) as i64),
        ScalarType::UInt => Scalar::U(u32::from_le_bytes(raw.try_into().unwrap()) as u64),
        ScalarType::Long => Scalar::I(i64::from_le_bytes(raw.try_into().unwrap())),
        ScalarType::ULong | ScalarType::SizeT => {
            Scalar::U(u64::from_le_bytes(raw.try_into().unwrap()))
        }
        ScalarType::Float => Scalar::F(f32::from_le_bytes(raw.try_into().unwrap()) as f64),
        ScalarType::Double => Scalar::F(f64::from_le_bytes(raw.try_into().unwrap())),
    })
}

/// Write scalar `s` (converted to `ty`) into `bytes` at `offset`
/// (little-endian).
pub fn store_scalar(
    bytes: &mut [u8],
    offset: usize,
    ty: ScalarType,
    s: Scalar,
) -> Result<(), CompileError> {
    let size = ty.size();
    let end =
        offset.checked_add(size).ok_or_else(|| CompileError::new("pointer offset overflow"))?;
    if end > bytes.len() {
        return Err(CompileError::new(format!(
            "out-of-bounds write of {size} bytes at offset {offset} (buffer is {} bytes)",
            bytes.len()
        )));
    }
    let s = convert_scalar(s, ty);
    let dst = &mut bytes[offset..end];
    match ty {
        ScalarType::Bool => dst[0] = u8::from(s.as_bool()),
        ScalarType::Char => dst[0] = s.as_i64() as i8 as u8,
        ScalarType::UChar => dst[0] = s.as_u64() as u8,
        ScalarType::Short => dst.copy_from_slice(&(s.as_i64() as i16).to_le_bytes()),
        ScalarType::UShort => dst.copy_from_slice(&(s.as_u64() as u16).to_le_bytes()),
        ScalarType::Int => dst.copy_from_slice(&(s.as_i64() as i32).to_le_bytes()),
        ScalarType::UInt => dst.copy_from_slice(&(s.as_u64() as u32).to_le_bytes()),
        ScalarType::Long => dst.copy_from_slice(&s.as_i64().to_le_bytes()),
        ScalarType::ULong | ScalarType::SizeT => dst.copy_from_slice(&s.as_u64().to_le_bytes()),
        ScalarType::Float => dst.copy_from_slice(&(s.as_f64() as f32).to_le_bytes()),
        ScalarType::Double => dst.copy_from_slice(&s.as_f64().to_le_bytes()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_truncate_like_c() {
        assert_eq!(convert_scalar(Scalar::I(300), ScalarType::UChar), Scalar::U(44));
        assert_eq!(convert_scalar(Scalar::I(-1), ScalarType::UInt), Scalar::U(0xffff_ffff));
        assert_eq!(convert_scalar(Scalar::F(3.9), ScalarType::Int), Scalar::I(3));
        assert_eq!(convert_scalar(Scalar::U(1), ScalarType::Bool), Scalar::U(1));
        assert_eq!(convert_scalar(Scalar::I(0), ScalarType::Bool), Scalar::U(0));
    }

    #[test]
    fn float_conversion_goes_through_f32() {
        let v = convert_scalar(Scalar::F(1.000000001), ScalarType::Float);
        assert_eq!(v, Scalar::F(1.000000001f32 as f64));
    }

    #[test]
    fn load_store_roundtrip_all_types() {
        let types = [
            ScalarType::Char,
            ScalarType::UChar,
            ScalarType::Short,
            ScalarType::UShort,
            ScalarType::Int,
            ScalarType::UInt,
            ScalarType::Long,
            ScalarType::ULong,
            ScalarType::SizeT,
            ScalarType::Float,
            ScalarType::Double,
        ];
        for ty in types {
            let mut bytes = vec![0u8; 16];
            store_scalar(&mut bytes, 4, ty, Scalar::I(37)).unwrap();
            let loaded = load_scalar(&bytes, 4, ty).unwrap();
            assert_eq!(loaded.as_i64(), 37, "type {ty:?}");
        }
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let mut bytes = vec![0u8; 4];
        assert!(load_scalar(&bytes, 2, ScalarType::Float).is_err());
        assert!(store_scalar(&mut bytes, 4, ScalarType::Int, Scalar::I(1)).is_err());
        assert!(load_scalar(&bytes, 0, ScalarType::Float).is_ok());
    }

    #[test]
    fn value_helpers() {
        assert!(Value::boolean(true).as_bool().unwrap());
        assert_eq!(Value::int(-5).as_i64().unwrap(), -5);
        assert_eq!(Value::uint(5).as_u64().unwrap(), 5);
        assert_eq!(Value::float(2.5).as_f64().unwrap(), 2.5);
        assert_eq!(Value::size_t(9).ty(), Type::Scalar(ScalarType::SizeT));
        assert!(Value::Void.as_bool().is_err());
    }

    #[test]
    fn convert_to_vector_splats_scalars() {
        let v = Value::float(2.0).convert_to(&Type::Vector(ScalarType::Float, 4)).unwrap();
        match v {
            Value::Vector(ScalarType::Float, lanes) => {
                assert_eq!(lanes.len(), 4);
                assert!(lanes.iter().all(|l| l.as_f64() == 2.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn convert_vector_length_mismatch_errors() {
        let v = Value::Vector(ScalarType::Float, vec![Scalar::F(1.0); 2]);
        assert!(v.convert_to(&Type::Vector(ScalarType::Float, 4)).is_err());
    }
}
