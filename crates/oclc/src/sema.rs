//! Semantic analysis: scope / call / flow checks performed at build time.
//!
//! The checks are deliberately pragmatic: they catch the mistakes that would
//! otherwise surface as confusing interpreter errors (unknown identifiers,
//! unknown callees, `break` outside a loop, assigning to something that is
//! not an lvalue, non-`void` kernels) and report them with source locations
//! through the build log, the way `clBuildProgram` would.

use crate::ast::*;
use crate::builtins;
use crate::error::CompileError;
use crate::types::Type;
use std::collections::{HashMap, HashSet};

/// Check a parsed translation unit; returns every diagnostic found.
pub fn check(unit: &TranslationUnit) -> Result<(), Vec<CompileError>> {
    let mut checker = Checker::new(unit);
    checker.check_unit();
    if checker.errors.is_empty() {
        Ok(())
    } else {
        Err(checker.errors)
    }
}

struct Checker<'a> {
    unit: &'a TranslationUnit,
    functions: HashMap<&'a str, &'a Function>,
    errors: Vec<CompileError>,
}

struct Scope {
    names: Vec<HashSet<String>>,
    loop_depth: usize,
}

impl Scope {
    fn new() -> Self {
        Scope { names: vec![HashSet::new()], loop_depth: 0 }
    }

    fn push(&mut self) {
        self.names.push(HashSet::new());
    }

    fn pop(&mut self) {
        self.names.pop();
    }

    fn declare(&mut self, name: &str) {
        if let Some(top) = self.names.last_mut() {
            top.insert(name.to_string());
        }
    }

    fn is_declared(&self, name: &str) -> bool {
        self.names.iter().any(|s| s.contains(name))
    }
}

impl<'a> Checker<'a> {
    fn new(unit: &'a TranslationUnit) -> Self {
        Checker { unit, functions: HashMap::new(), errors: Vec::new() }
    }

    fn check_unit(&mut self) {
        for f in &self.unit.functions {
            if self.functions.insert(f.name.as_str(), f).is_some() {
                self.errors.push(CompileError::at(
                    f.location,
                    format!("function '{}' is defined more than once", f.name),
                ));
            }
        }
        let mut has_kernel = false;
        for f in &self.unit.functions {
            if f.is_kernel {
                has_kernel = true;
                if f.return_type != Type::Void {
                    self.errors.push(CompileError::at(
                        f.location,
                        format!("kernel '{}' must return void", f.name),
                    ));
                }
            }
            self.check_function(f);
        }
        if !has_kernel && !self.unit.functions.is_empty() {
            // Not an error per the OpenCL spec, but worth noting: programs
            // without kernels cannot be launched.  We keep it silent.
        }
    }

    fn check_function(&mut self, f: &Function) {
        let mut scope = Scope::new();
        let mut seen_params = HashSet::new();
        for p in &f.params {
            if !seen_params.insert(p.name.clone()) {
                self.errors.push(CompileError::at(
                    f.location,
                    format!("duplicate parameter name '{}' in '{}'", p.name, f.name),
                ));
            }
            scope.declare(&p.name);
        }
        self.check_block(&f.body, &mut scope, f);
    }

    fn check_block(&mut self, block: &Block, scope: &mut Scope, f: &Function) {
        scope.push();
        for stmt in &block.statements {
            self.check_stmt(stmt, scope, f);
        }
        scope.pop();
    }

    fn check_stmt(&mut self, stmt: &Stmt, scope: &mut Scope, f: &Function) {
        match stmt {
            Stmt::Decl { name, ty, init, location } => {
                if *ty == Type::Void {
                    self.errors.push(CompileError::at(
                        *location,
                        format!("variable '{name}' cannot have type void"),
                    ));
                }
                if let Some(e) = init {
                    self.check_expr(e, scope);
                }
                scope.declare(name);
            }
            Stmt::Expr(e) => self.check_expr(e, scope),
            Stmt::If { cond, then_block, else_block } => {
                self.check_expr(cond, scope);
                self.check_block(then_block, scope, f);
                if let Some(b) = else_block {
                    self.check_block(b, scope, f);
                }
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond, scope);
                scope.loop_depth += 1;
                self.check_block(body, scope, f);
                scope.loop_depth -= 1;
            }
            Stmt::DoWhile { body, cond } => {
                scope.loop_depth += 1;
                self.check_block(body, scope, f);
                scope.loop_depth -= 1;
                self.check_expr(cond, scope);
            }
            Stmt::For { init, cond, step, body } => {
                scope.push();
                if let Some(s) = init {
                    self.check_stmt(s, scope, f);
                }
                if let Some(c) = cond {
                    self.check_expr(c, scope);
                }
                if let Some(s) = step {
                    self.check_expr(s, scope);
                }
                scope.loop_depth += 1;
                self.check_block(body, scope, f);
                scope.loop_depth -= 1;
                scope.pop();
            }
            Stmt::Return(e) => {
                match (e, &f.return_type) {
                    (Some(_), Type::Void) => self.errors.push(CompileError::at(
                        f.location,
                        format!("function '{}' returns void but a value is returned", f.name),
                    )),
                    (None, t) if *t != Type::Void => self.errors.push(CompileError::at(
                        f.location,
                        format!("function '{}' must return a value of type {t}", f.name),
                    )),
                    _ => {}
                }
                if let Some(e) = e {
                    self.check_expr(e, scope);
                }
            }
            Stmt::Break | Stmt::Continue => {
                if scope.loop_depth == 0 {
                    self.errors.push(CompileError::new(
                        "'break'/'continue' outside of a loop".to_string(),
                    ));
                }
            }
            Stmt::Block(b) => self.check_block(b, scope, f),
        }
    }

    fn check_lvalue(&mut self, target: &Expr) {
        match &target.kind {
            ExprKind::Ident(_) | ExprKind::Index { .. } | ExprKind::Member { .. } => {}
            ExprKind::Unary { op: UnOp::Deref, .. } => {}
            _ => self.errors.push(CompileError::at(
                target.location,
                "assignment target is not an lvalue".to_string(),
            )),
        }
    }

    fn check_expr(&mut self, expr: &Expr, scope: &mut Scope) {
        match &expr.kind {
            ExprKind::IntLit(..) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) => {}
            ExprKind::Ident(name) => {
                if !scope.is_declared(name) && builtins::builtin_constant(name).is_none() {
                    self.errors.push(CompileError::at(
                        expr.location,
                        format!("use of undeclared identifier '{name}'"),
                    ));
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs, scope);
                self.check_expr(rhs, scope);
            }
            ExprKind::Unary { expr: inner, .. } => self.check_expr(inner, scope),
            ExprKind::Assign { target, value, .. } => {
                self.check_lvalue(target);
                self.check_expr(target, scope);
                self.check_expr(value, scope);
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                self.check_expr(cond, scope);
                self.check_expr(then_expr, scope);
                self.check_expr(else_expr, scope);
            }
            ExprKind::Call { name, args } => {
                for a in args {
                    self.check_expr(a, scope);
                }
                if let Some(f) = self.functions.get(name.as_str()) {
                    if f.params.len() != args.len() {
                        self.errors.push(CompileError::at(
                            expr.location,
                            format!(
                                "call to '{name}' passes {} argument(s), expected {}",
                                args.len(),
                                f.params.len()
                            ),
                        ));
                    }
                } else if builtins::classify(name).is_none() {
                    self.errors.push(CompileError::at(
                        expr.location,
                        format!("call to unknown function '{name}'"),
                    ));
                }
            }
            ExprKind::Index { base, index } => {
                self.check_expr(base, scope);
                self.check_expr(index, scope);
            }
            ExprKind::Member { base, .. } => self.check_expr(base, scope),
            ExprKind::Cast { expr: inner, .. } => self.check_expr(inner, scope),
            ExprKind::PostIncDec { target, .. } | ExprKind::PreIncDec { target, .. } => {
                self.check_lvalue(target);
                self.check_expr(target, scope);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), Vec<CompileError>> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_valid_kernel() {
        check_src(
            r#"
            float helper(float x) { return x + 1.0f; }
            __kernel void k(__global float* a, uint n) {
                size_t i = get_global_id(0);
                if (i < n) { a[i] = helper(a[i]); }
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_non_void_kernel() {
        let errs = check_src("__kernel int k() { return 1; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("must return void")));
    }

    #[test]
    fn rejects_undeclared_identifier() {
        let errs = check_src("__kernel void k() { int a = b; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared identifier 'b'")));
    }

    #[test]
    fn rejects_unknown_callee() {
        let errs = check_src("__kernel void k() { frobnicate(1); }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown function")));
    }

    #[test]
    fn rejects_wrong_arity_call() {
        let errs = check_src(
            "float f(float a, float b) { return a + b; } __kernel void k() { float x = f(1.0f); }",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 2")));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let errs = check_src("__kernel void k() { break; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("outside of a loop")));
    }

    #[test]
    fn rejects_duplicate_functions_and_params() {
        let errs = check_src("void f(int a, int a) { } void f(int b) { } __kernel void k() { }")
            .unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("more than once")));
        assert!(errs.iter().any(|e| e.message.contains("duplicate parameter")));
    }

    #[test]
    fn rejects_invalid_assignment_target() {
        let errs = check_src("__kernel void k() { 3 = 4; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not an lvalue")));
    }

    #[test]
    fn rejects_return_value_from_void() {
        let errs = check_src("__kernel void k() { return 3; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("returns void")));
    }

    #[test]
    fn rejects_void_variable() {
        let errs = check_src("__kernel void k() { void x; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("cannot have type void")));
    }

    #[test]
    fn builtin_constants_are_in_scope() {
        check_src("__kernel void k() { barrier(CLK_LOCAL_MEM_FENCE); float pi = M_PI; }").unwrap();
    }

    #[test]
    fn variables_scope_to_blocks() {
        let errs = check_src("__kernel void k() { { int x = 1; } int y = x; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared identifier 'x'")));
    }

    #[test]
    fn for_loop_variable_scoped_to_loop() {
        let errs = check_src(
            "__kernel void k(__global int* a) { for (int i = 0; i < 4; i++) { a[i] = i; } a[0] = i; }",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared identifier 'i'")));
    }
}
