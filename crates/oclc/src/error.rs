//! Compile-time diagnostics and the build log.

use std::fmt;

/// A source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Location {
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
    /// 1-based column number; 0 means "unknown".
    pub column: u32,
}

impl Location {
    /// Construct a location.
    pub fn new(line: u32, column: u32) -> Self {
        Location { line, column }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.line, self.column)
        }
    }
}

/// A single diagnostic produced while building or executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where the problem was detected.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Diagnostic at a known location.
    pub fn at(location: Location, message: impl Into<String>) -> Self {
        CompileError { location, message: message.into() }
    }

    /// Diagnostic without location information (e.g. runtime errors).
    pub fn new(message: impl Into<String>) -> Self {
        CompileError { location: Location::default(), message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.location, self.message)
    }
}

impl std::error::Error for CompileError {}

/// The build log returned on failure, mirroring
/// `clGetProgramBuildInfo(..., CL_PROGRAM_BUILD_LOG, ...)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildLog {
    /// Every diagnostic collected during the build.
    pub messages: Vec<CompileError>,
}

impl BuildLog {
    /// Build log containing a single diagnostic.
    pub fn from_single(error: CompileError) -> Self {
        BuildLog { messages: vec![error] }
    }

    /// Build log from a list of diagnostics.
    pub fn from_errors(errors: Vec<CompileError>) -> Self {
        BuildLog { messages: errors }
    }

    /// True if the log contains no diagnostics.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

impl fmt::Display for BuildLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.messages {
            writeln!(f, "{m}")?;
        }
        Ok(())
    }
}

impl std::error::Error for BuildLog {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = CompileError::at(Location::new(3, 14), "unexpected token");
        assert_eq!(e.to_string(), "error at 3:14: unexpected token");
    }

    #[test]
    fn unknown_location_display() {
        let e = CompileError::new("runtime issue");
        assert!(e.to_string().contains("<unknown>"));
    }

    #[test]
    fn build_log_collects_messages() {
        let log = BuildLog::from_errors(vec![CompileError::new("a"), CompileError::new("b")]);
        assert_eq!(log.messages.len(), 2);
        assert!(log.to_string().lines().count() == 2);
        assert!(!log.is_empty());
    }
}
