//! Bytecode VM executing kernels one work-group at a time.
//!
//! The unit of parallelism is the *work-group*: a work-stealing driver fans
//! groups out across host threads, every group gets its own `__local`
//! arenas, and global buffers are shared by all groups.  Inside a group,
//! work-items run batched in a tight instruction loop; a [`Inst::Barrier`]
//! suspends the current item (its frame stack stays intact) and the group
//! resumes every item in phases, which is what makes barrier-separated
//! local-memory reductions bit-correct instead of silently wrong.
//!
//! Work-items that disagree about which barrier they reached (or whether
//! they reached one at all) are reported as a "barrier divergence" error —
//! that is undefined behaviour in OpenCL C, so an error beats a hang.
//!
//! Semantics mirror the tree-walking interpreter (`crate::interp`)
//! instruction by instruction; the differential test suite keeps the two in
//! lockstep.  Counter *magnitudes* differ (the VM counts instructions where
//! the interpreter counts statements), but `work_items`, `loads` and
//! `stores` agree.

use crate::ast::{BinOp, UnOp};
use crate::builtins;
use crate::bytecode::*;
use crate::error::{CompileError, Location};
use crate::interp::{
    eval_binary, eval_binary_ptr, eval_binary_scalars, eval_unary, BufferBinding, KernelArgValue,
    NdRange, WorkItemCounters,
};
use crate::types::{AddressSpace, ScalarType, Type};
use crate::value::{convert_scalar, load_scalar, store_scalar, Pointer, Scalar, Value};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum user-function call depth (same limit as the interpreter).
const MAX_CALL_DEPTH: usize = 64;

/// Maximum instructions per work-item.  The interpreter counts statements,
/// the VM counts instructions (roughly 4× finer), so the cap is scaled to
/// trip at about the same amount of work.
const MAX_STEPS_PER_ITEM: u64 = 8_000_000;

/// Bounds-check-free access for the dispatch loop's hottest paths.
///
/// [`crate::bytecode::verify`] proves, once per build, that every register
/// operand is in bounds for its frame, every jump target is in bounds and
/// off padding, fused instructions are followed by their `Nop` pad, and the
/// stream ends with `Return` — so `pc` and every `Reg` reaching these
/// helpers is already known valid.  The `debug_assert!`s re-state the
/// invariant in debug builds.
#[allow(unsafe_code)]
mod trusted {
    use crate::bytecode::{QInst, Slot};

    /// Read register `i`.
    #[inline(always)]
    pub(super) fn reg(regs: &[Slot], i: u32) -> Slot {
        debug_assert!((i as usize) < regs.len());
        // SAFETY: the bytecode verifier bounds every register operand.
        unsafe { *regs.get_unchecked(i as usize) }
    }

    /// Write register `i`.
    #[inline(always)]
    pub(super) fn set_reg(regs: &mut [Slot], i: u32, v: Slot) {
        debug_assert!((i as usize) < regs.len());
        // SAFETY: the bytecode verifier bounds every register operand.
        unsafe { *regs.get_unchecked_mut(i as usize) = v }
    }

    /// Fetch the instruction at `pc`.
    #[inline(always)]
    pub(super) fn inst(code: &[QInst], pc: usize) -> QInst {
        debug_assert!(pc < code.len());
        // SAFETY: the verifier bounds every jump target and proves the
        // stream ends with a terminator, so sequential advance stays in
        // range.
        unsafe { *code.get_unchecked(pc) }
    }
}

/// Shared, unsynchronised view of the launch's global buffers.
///
/// Work-groups run on different threads but address disjoint elements in
/// well-formed kernels (cross-group conflicts must go through atomics, which
/// the VM serialises with a lock).  Kernels with genuine cross-group races
/// get racy bytes, exactly like real OpenCL devices.
#[allow(unsafe_code)]
mod shared {
    use std::marker::PhantomData;

    struct RawBuf {
        ptr: *mut u8,
        len: usize,
    }

    /// Raw-pointer view over the bound buffers, shareable across the
    /// work-group worker threads for the duration of one launch.  `'m` is
    /// the `&mut` borrow of the bindings, so the bindings stay untouchable
    /// while the view exists.
    pub(super) struct SharedBufs<'m> {
        bufs: Vec<RawBuf>,
        _marker: PhantomData<&'m mut [u8]>,
    }

    // SAFETY: the view lives strictly inside `execute_kernel`, which holds
    // the unique `&mut` borrow of every buffer for the whole launch; scoped
    // threads cannot outlive it.
    unsafe impl Send for SharedBufs<'_> {}
    unsafe impl Sync for SharedBufs<'_> {}

    impl<'m> SharedBufs<'m> {
        pub(super) fn new(bufs: &'m mut [super::BufferBinding<'_>]) -> Self {
            SharedBufs {
                bufs: bufs
                    .iter_mut()
                    .map(|b| {
                        let bytes = b.bytes_mut();
                        RawBuf { ptr: bytes.as_mut_ptr(), len: bytes.len() }
                    })
                    .collect(),
                _marker: PhantomData,
            }
        }

        pub(super) fn len(&self) -> usize {
            self.bufs.len()
        }

        /// Bounds-checked byte view of buffer `i` (checked by the caller's
        /// `load_scalar` / `store_scalar`, which also produce the canonical
        /// out-of-bounds diagnostics).
        pub(super) fn bytes(&self, i: usize) -> &[u8] {
            let b = &self.bufs[i];
            // SAFETY: ptr/len come from a live `&mut [u8]` held by
            // `execute_kernel`; see the Send/Sync justification above.
            unsafe { std::slice::from_raw_parts(b.ptr, b.len) }
        }

        /// Mutable byte view of buffer `i`.
        #[allow(clippy::mut_from_ref)]
        pub(super) fn bytes_mut(&self, i: usize) -> &mut [u8] {
            let b = &self.bufs[i];
            // SAFETY: as above; disjointness across threads is the kernel's
            // contract (matching real device behaviour for racy kernels).
            unsafe { std::slice::from_raw_parts_mut(b.ptr, b.len) }
        }
    }
}

use shared::SharedBufs;

/// Identity of one work-item (same fields the interpreter tracks).
#[derive(Debug, Clone, Copy, Default)]
struct WorkItem {
    global_id: [usize; 3],
    global_size: [usize; 3],
    local_id: [usize; 3],
    local_size: [usize; 3],
    group_id: [usize; 3],
    num_groups: [usize; 3],
    offset: [usize; 3],
    work_dim: u8,
}

/// Which compiled function a frame executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuncId {
    Kernel,
    Helper(usize),
}

/// A vector register's out-of-line payload (see [`Slot::Vector`]: register
/// `r` holding a vector keeps its lanes in the frame arena at index `r`).
#[derive(Debug, Clone)]
struct VecVal {
    ty: ScalarType,
    lanes: Vec<Scalar>,
}

impl Default for VecVal {
    fn default() -> Self {
        VecVal { ty: ScalarType::Int, lanes: Vec::new() }
    }
}

/// One call frame: its register file, vector arena and resume point.
struct Frame {
    func: FuncId,
    pc: usize,
    /// `Copy` register slots — writes are plain stores, no clone/drop glue.
    regs: Vec<Slot>,
    /// Vector arena, indexed by register.  Lazily sized; scalar-only
    /// kernels never allocate it.
    vecs: Vec<VecVal>,
    /// Caller register receiving the (converted) return value.
    ret_dst: Option<Reg>,
}

/// Rebuild the full [`Value`] of register `idx` (vector lanes are cloned).
/// Cold paths and diagnostics only; hot arms stay on [`Slot`]s.
fn slot_to_value(slot: Slot, idx: usize, vecs: &[VecVal]) -> Value {
    match slot {
        Slot::Scalar(t, s) => Value::Scalar(t, s),
        Slot::Ptr(p) => Value::Ptr(p),
        Slot::Vector => {
            let v = &vecs[idx];
            Value::Vector(v.ty, v.lanes.clone())
        }
        Slot::Void => Value::Void,
    }
}

/// Store `lanes` as the vector value of register `dst`, growing the arena on
/// first use.
fn write_vec(
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    dst: usize,
    ty: ScalarType,
    lanes: Vec<Scalar>,
) {
    if vecs.len() < regs.len() {
        vecs.resize_with(regs.len(), VecVal::default);
    }
    vecs[dst] = VecVal { ty, lanes };
    regs[dst] = Slot::Vector;
}

/// Store a full [`Value`] into register `dst`.
fn write_value(regs: &mut [Slot], vecs: &mut Vec<VecVal>, dst: usize, value: Value) {
    match value {
        Value::Scalar(t, s) => regs[dst] = Slot::Scalar(t, s),
        Value::Ptr(p) => regs[dst] = Slot::Ptr(p),
        Value::Void => regs[dst] = Slot::Void,
        Value::Vector(t, lanes) => write_vec(regs, vecs, dst, t, lanes),
    }
}

/// Rare opcodes live out of line (`#[inline(never)]`) so the dispatch
/// loop's hot function stays small enough for the optimiser to keep `pc`,
/// the instruction pointer and the register file base in machine registers.
/// Errors are returned without a location; the dispatch loop's `at!` macro
/// attaches the faulting instruction's source location.
#[inline(never)]
fn op_const_vec(
    quick: &QuickFunction,
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    dst: Reg,
    pool: u32,
) {
    let v = quick.vec_consts[pool as usize].clone();
    write_value(regs, vecs, dst as usize, v);
}

#[inline(never)]
fn op_convert(
    quick: &QuickFunction,
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    dst: Reg,
    src: Reg,
    pool: u32,
) -> Result<(), CompileError> {
    let v = slot_to_value(regs[src as usize], src as usize, vecs);
    let c = v.convert_to(&quick.types[pool as usize])?;
    write_value(regs, vecs, dst as usize, c);
    Ok(())
}

#[inline(never)]
fn op_unary(
    op: UnOp,
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    dst: Reg,
    src: Reg,
) -> Result<(), CompileError> {
    let v = slot_to_value(regs[src as usize], src as usize, vecs);
    let out = eval_unary(op, &v)?;
    write_value(regs, vecs, dst as usize, out);
    Ok(())
}

#[inline(never)]
fn op_lane(
    regs: &mut [Slot],
    vecs: &[VecVal],
    dst: Reg,
    src: Reg,
    lane: u32,
) -> Result<(), CompileError> {
    match regs[src as usize] {
        Slot::Vector => {
            let v = &vecs[src as usize];
            if lane as usize >= v.lanes.len() {
                return Err(CompileError::new("vector component out of range"));
            }
            regs[dst as usize] = Slot::Scalar(v.ty, v.lanes[lane as usize]);
            Ok(())
        }
        other => {
            let ty = slot_to_value(other, src as usize, vecs).ty();
            Err(CompileError::new(format!("cannot access a component of type {ty}")))
        }
    }
}

#[inline(never)]
fn op_swizzle(
    quick: &QuickFunction,
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    dst: Reg,
    src: Reg,
    pool: u32,
) -> Result<(), CompileError> {
    let lane_idx = &quick.lane_lists[pool as usize];
    match regs[src as usize] {
        Slot::Vector => {
            let v = &vecs[src as usize];
            if lane_idx.iter().any(|&i| i >= v.lanes.len()) {
                return Err(CompileError::new("vector component out of range"));
            }
            let ty = v.ty;
            let gathered: Vec<Scalar> = lane_idx.iter().map(|&i| v.lanes[i]).collect();
            write_vec(regs, vecs, dst as usize, ty, gathered);
            Ok(())
        }
        other => {
            let ty = slot_to_value(other, src as usize, vecs).ty();
            Err(CompileError::new(format!("cannot access a component of type {ty}")))
        }
    }
}

#[inline(never)]
fn op_set_lane(
    regs: &mut [Slot],
    vecs: &mut [VecVal],
    dst: Reg,
    lane: u32,
    src: Reg,
) -> Result<(), CompileError> {
    let s = match regs[src as usize] {
        Slot::Scalar(_, s) => s,
        other => slot_to_value(other, src as usize, vecs).scalar()?,
    };
    match regs[dst as usize] {
        Slot::Vector => {
            let v = &mut vecs[dst as usize];
            if lane as usize >= v.lanes.len() {
                return Err(CompileError::new("vector component out of range"));
            }
            let t = v.ty;
            v.lanes[lane as usize] = convert_scalar(s, t);
            Ok(())
        }
        other => {
            let ty = slot_to_value(other, dst as usize, vecs).ty();
            Err(CompileError::new(format!("cannot access a component of type {ty}")))
        }
    }
}

#[inline(never)]
fn op_vec_ctor(
    quick: &QuickFunction,
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    dst: Reg,
    ty: ScalarType,
    width: u8,
    pool: u32,
) -> Result<(), CompileError> {
    let args = &quick.reg_lists[pool as usize];
    let mut lanes = Vec::with_capacity(width as usize);
    for a in args {
        match regs[*a as usize] {
            Slot::Scalar(_, s) => lanes.push(convert_scalar(s, ty)),
            Slot::Vector => {
                lanes.extend(vecs[*a as usize].lanes.iter().map(|s| convert_scalar(*s, ty)))
            }
            other => {
                let vt = slot_to_value(other, *a as usize, vecs).ty();
                return Err(CompileError::new(format!("cannot build a vector from {vt}")));
            }
        }
    }
    if lanes.len() == 1 {
        lanes = vec![lanes[0]; width as usize];
    }
    if lanes.len() != width as usize {
        return Err(CompileError::new(format!(
            "vector literal has {} element(s), expected {width}",
            lanes.len()
        )));
    }
    write_vec(regs, vecs, dst as usize, ty, lanes);
    Ok(())
}

#[inline(never)]
fn op_call_math(
    quick: &QuickFunction,
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    dst: Reg,
    pool: u32,
) -> Result<(), CompileError> {
    let (name, args) = &quick.math_calls[pool as usize];
    let values: Vec<Value> =
        args.iter().map(|a| slot_to_value(regs[*a as usize], *a as usize, vecs)).collect();
    let v = builtins::eval_math(name, &values)?;
    write_value(regs, vecs, dst as usize, v);
    Ok(())
}

#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn op_atomic(
    ctx: &LaunchCtx<'_, '_>,
    locals: &mut [Vec<u8>],
    counters: &mut WorkItemCounters,
    regs: &mut [Slot],
    vecs: &[VecVal],
    op: AtomicOp,
    dst: Reg,
    ptr: Reg,
    operand: Reg,
) -> Result<(), CompileError> {
    let p = match regs[ptr as usize] {
        Slot::Ptr(p) => p,
        other => {
            let ty = slot_to_value(other, ptr as usize, vecs).ty();
            return Err(CompileError::new(format!("cannot dereference a value of type {ty}")));
        }
    };
    if p.byte_offset < 0 {
        return Err(CompileError::new("negative pointer offset"));
    }
    let operand = if operand == NO_REG {
        Value::int(1)
    } else {
        slot_to_value(regs[operand as usize], operand as usize, vecs)
    };
    // Global-buffer atomics serialise across groups; `__local` arenas are
    // group-private and a group runs on one thread, so local atomics need
    // no lock.
    let _guard = if (p.buffer as usize) < ctx.shared.len() {
        Some(ctx.atomic_lock.lock().unwrap())
    } else {
        None
    };
    counters.loads += 1;
    let old_s = mem_load(ctx.shared, locals, p.buffer as usize, p.byte_offset as usize, p.pointee)?;
    let old = Value::Scalar(p.pointee, old_s);
    let new = match op {
        AtomicOp::Add => eval_binary(BinOp::Add, &old, &operand)?,
        AtomicOp::Sub => eval_binary(BinOp::Sub, &old, &operand)?,
        AtomicOp::Xchg => operand,
        AtomicOp::Min => builtins::eval_math("min", &[old.clone(), operand])?,
        AtomicOp::Max => builtins::eval_math("max", &[old.clone(), operand])?,
    };
    let new_s = new.scalar()?;
    counters.stores += 1;
    mem_store(ctx.shared, locals, p.buffer as usize, p.byte_offset as usize, p.pointee, new_s)?;
    regs[dst as usize] = Slot::Scalar(p.pointee, old_s);
    Ok(())
}

/// Everything [`binary_fast`] declines: mixed scalar shapes, pointer
/// arithmetic, vector operands, and every error case.  Kept out of line so
/// the dispatch loop inlines only the fast path at each fused arm.
#[inline(never)]
fn binary_slow(
    regs: &mut [Slot],
    vecs: &mut Vec<VecVal>,
    op: BinOp,
    dst: usize,
    lhs: usize,
    rhs: usize,
) -> Result<(), CompileError> {
    match (regs[lhs], regs[rhs]) {
        (Slot::Scalar(lt, ls), Slot::Scalar(rt, rs)) => {
            let (t, s) = eval_binary_scalars(op, lt, ls, rt, rs)?;
            regs[dst] = Slot::Scalar(t, s);
        }
        (Slot::Ptr(p), Slot::Scalar(_, s)) => {
            regs[dst] = Slot::Ptr(eval_binary_ptr(op, &p, s)?);
        }
        (l, r) => {
            let lv = slot_to_value(l, lhs, vecs);
            let rv = slot_to_value(r, rhs, vecs);
            let v = eval_binary(op, &lv, &rv)?;
            write_value(regs, vecs, dst, v);
        }
    }
    Ok(())
}

/// Fast paths for the dominant same-type scalar operand pairs, mirroring
/// `eval_binary_scalars` bit for bit (the differential suite holds the two
/// together).  `None` falls back to the shared, semantically authoritative
/// implementation — including every error case, so this function is total.
#[inline(always)]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(a <= b)` ≠ `a > b` for NaN; the negation is the point
fn binary_fast(op: BinOp, lt: ScalarType, ls: Scalar, rt: ScalarType, rs: Scalar) -> Option<Slot> {
    let int = |v: bool| Some(Slot::Scalar(ScalarType::Int, Scalar::I(i64::from(v))));
    match (lt, ls, rt, rs) {
        (ScalarType::Float, Scalar::F(a), ScalarType::Float, Scalar::F(b)) => {
            let f = |v: f64| Some(Slot::Scalar(ScalarType::Float, Scalar::F(v as f32 as f64)));
            match op {
                BinOp::Add => f(a + b),
                BinOp::Sub => f(a - b),
                BinOp::Mul => f(a * b),
                BinOp::Div => f(a / b),
                // NaN orderings mirror `partial_cmp(..).unwrap_or(Greater)`:
                // Gt/Ge are true for NaN operands, the rest follow IEEE.
                BinOp::Lt => int(a < b),
                BinOp::Le => int(a <= b),
                BinOp::Gt => int(!(a <= b)),
                BinOp::Ge => int(!(a < b)),
                BinOp::Eq => int(a == b),
                BinOp::Ne => int(a != b),
                _ => None,
            }
        }
        (ScalarType::Int, Scalar::I(a), ScalarType::Int, Scalar::I(b)) => int_ops(op, a, b),
        // `promote` is lhs-biased at equal integer rank, so uint⊕int stays
        // unsigned while int⊕uint stays signed — each mixed arm converts the
        // other operand exactly like `Scalar::as_u64`/`as_i64` would.
        (ScalarType::UInt, Scalar::U(a), ScalarType::UInt, Scalar::U(b)) => uint_ops(op, a, b),
        (ScalarType::UInt, Scalar::U(a), ScalarType::Int, Scalar::I(b)) => {
            uint_ops(op, a, b as u64)
        }
        (ScalarType::Int, Scalar::I(a), ScalarType::UInt, Scalar::U(b)) => int_ops(op, a, b as i64),
        _ => None,
    }
}

/// Unsigned-int fast ops for [`binary_fast`] (result type `uint`).
#[inline(always)]
fn uint_ops(op: BinOp, a: u64, b: u64) -> Option<Slot> {
    let int = |v: bool| Some(Slot::Scalar(ScalarType::Int, Scalar::I(i64::from(v))));
    let u = |v: u64| Some(Slot::Scalar(ScalarType::UInt, Scalar::U(v as u32 as u64)));
    match op {
        BinOp::Add => u(a.wrapping_add(b)),
        BinOp::Sub => u(a.wrapping_sub(b)),
        BinOp::Mul => u(a.wrapping_mul(b)),
        BinOp::Lt => int(a < b),
        BinOp::Le => int(a <= b),
        BinOp::Gt => int(a > b),
        BinOp::Ge => int(a >= b),
        BinOp::Eq => int(a == b),
        BinOp::Ne => int(a != b),
        _ => None,
    }
}

/// Signed-int fast ops for [`binary_fast`] (result type `int`).
#[inline(always)]
fn int_ops(op: BinOp, a: i64, b: i64) -> Option<Slot> {
    let int = |v: bool| Some(Slot::Scalar(ScalarType::Int, Scalar::I(i64::from(v))));
    let i = |v: i64| Some(Slot::Scalar(ScalarType::Int, Scalar::I(v as i32 as i64)));
    match op {
        BinOp::Add => i(a.wrapping_add(b)),
        BinOp::Sub => i(a.wrapping_sub(b)),
        BinOp::Mul => i(a.wrapping_mul(b)),
        BinOp::Lt => int(a < b),
        BinOp::Le => int(a <= b),
        BinOp::Gt => int(a > b),
        BinOp::Ge => int(a >= b),
        BinOp::Eq => int(a == b),
        BinOp::Ne => int(a != b),
        _ => None,
    }
}

/// Why `exec_frames` stopped.
#[derive(Debug, PartialEq, Eq)]
enum Stop {
    /// The kernel frame returned.
    Done,
    /// A barrier was reached; the frame stack is parked mid-kernel.
    Barrier,
}

/// Everything a group executor needs, shared across worker threads.
struct LaunchCtx<'a, 'v> {
    unit: &'a CompiledUnit,
    kernel: &'a CompiledKernel,
    shared: &'a SharedBufs<'v>,
    /// Serialises atomics on global buffers across groups.
    atomic_lock: &'a Mutex<()>,
    bound_args: &'a [Value],
    local_sizes: &'a [usize],
    local: [usize; 3],
    global: [usize; 3],
    num_groups: [usize; 3],
    offset: [usize; 3],
    work_dim: u8,
}

impl LaunchCtx<'_, '_> {
    fn resolve(&self, id: FuncId) -> &CompiledFunction {
        match id {
            FuncId::Kernel => &self.kernel.func,
            FuncId::Helper(i) => &self.unit.functions[i],
        }
    }
}

/// Execute the compiled kernel keyed by AST function index `index` over
/// `range`, fanning work-groups across up to `threads` host threads.
pub(crate) fn execute_kernel(
    unit: &CompiledUnit,
    index: usize,
    range: &NdRange,
    args: &[KernelArgValue],
    buffers: &mut [BufferBinding<'_>],
    threads: usize,
) -> Result<WorkItemCounters, CompileError> {
    let kernel =
        unit.kernels.get(&index).ok_or_else(|| CompileError::new("invalid kernel index"))?;
    if args.len() != kernel.func.param_types.len() {
        return Err(CompileError::new(format!(
            "kernel '{}' expects {} argument(s), got {}",
            kernel.func.name,
            kernel.func.param_types.len(),
            args.len()
        )));
    }

    // Bind arguments once; pointer values are shared by every work-item.
    let n_bufs = buffers.len();
    let mut bound_args = Vec::with_capacity(args.len());
    let mut local_sizes: Vec<usize> = Vec::new();
    for ((name, ty), arg) in kernel.func.param_names.iter().zip(&kernel.func.param_types).zip(args)
    {
        bound_args.push(bind_argument(name, ty, arg, n_bufs, &mut local_sizes)?);
    }

    let threads = threads.max(1);
    let global = [range.global[0].max(1), range.global[1].max(1), range.global[2].max(1)];
    let mut local = range.local_size();
    local = [local[0].max(1), local[1].max(1), local[2].max(1)];

    // Implicit chunking: when the caller left the group size unspecified and
    // the kernel can't tell groups apart (no barrier, no group-shape
    // queries, no `__local` args), split dimension 0 so groups can fan out
    // across threads.  Otherwise the default group shape is kept identical
    // to the interpreter's.
    if range.local.is_none()
        && threads > 1
        && !kernel.has_barrier
        && !kernel.observes_group_shape
        && local_sizes.is_empty()
    {
        local[0] = global[0].div_ceil(threads * 4).max(1);
    }

    let num_groups =
        [global[0].div_ceil(local[0]), global[1].div_ceil(local[1]), global[2].div_ceil(local[2])];
    let total_groups = num_groups[0] * num_groups[1] * num_groups[2];

    let shared = SharedBufs::new(buffers);
    let atomic_lock = Mutex::new(());
    let ctx = LaunchCtx {
        unit,
        kernel,
        shared: &shared,
        atomic_lock: &atomic_lock,
        bound_args: &bound_args,
        local_sizes: &local_sizes,
        local,
        global,
        num_groups,
        offset: range.offset,
        work_dim: range.work_dim,
    };

    if threads == 1 || total_groups == 1 {
        let mut counters = WorkItemCounters::default();
        for g in 0..total_groups {
            run_group(&ctx, g, &mut counters)?;
        }
        return Ok(counters);
    }

    // Work-stealing fan-out: workers claim the next unprocessed group from a
    // shared counter, so fast groups never wait on slow ones.
    let next_group = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let first_error: Mutex<Option<CompileError>> = Mutex::new(None);
    let total: Mutex<WorkItemCounters> = Mutex::new(WorkItemCounters::default());
    std::thread::scope(|s| {
        for _ in 0..threads.min(total_groups) {
            s.spawn(|| {
                let mut counters = WorkItemCounters::default();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let g = next_group.fetch_add(1, Ordering::Relaxed);
                    if g >= total_groups {
                        break;
                    }
                    if let Err(e) = run_group(&ctx, g, &mut counters) {
                        let mut slot = first_error.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let mut t = total.lock().unwrap();
                t.work_items += counters.work_items;
                t.ops += counters.ops;
                t.loads += counters.loads;
                t.stores += counters.stores;
                t.steps += counters.steps;
            });
        }
    });
    if let Some(e) = first_error.into_inner().unwrap() {
        return Err(e);
    }
    Ok(total.into_inner().unwrap())
}

fn bind_argument(
    name: &str,
    ty: &Type,
    arg: &KernelArgValue,
    n_bufs: usize,
    local_sizes: &mut Vec<usize>,
) -> Result<Value, CompileError> {
    match (arg, ty) {
        (KernelArgValue::Buffer(idx), Type::Pointer { pointee, space, .. }) => {
            if *idx >= n_bufs {
                return Err(CompileError::new(format!(
                    "argument '{name}' references buffer binding {idx}, but only {n_bufs} are bound"
                )));
            }
            let pointee = pointee.element_scalar().ok_or_else(|| {
                CompileError::new("only pointers to scalar element types are supported")
            })?;
            Ok(Value::Ptr(Pointer { buffer: *idx as u32, byte_offset: 0, pointee, space: *space }))
        }
        (KernelArgValue::Local(bytes), Type::Pointer { pointee, .. }) => {
            let pointee = pointee.element_scalar().ok_or_else(|| {
                CompileError::new("only pointers to scalar element types are supported")
            })?;
            local_sizes.push(*bytes);
            Ok(Value::Ptr(Pointer {
                buffer: (n_bufs + local_sizes.len() - 1) as u32,
                byte_offset: 0,
                pointee,
                space: AddressSpace::Local,
            }))
        }
        (KernelArgValue::Scalar(v), ty) => v.convert_to(ty),
        (arg, ty) => Err(CompileError::new(format!(
            "argument '{name}' of type {ty} cannot be bound from {arg:?}"
        ))),
    }
}

/// Execute every work-item of group `g` (linear index over the group grid).
fn run_group(
    ctx: &LaunchCtx<'_, '_>,
    g: usize,
    counters: &mut WorkItemCounters,
) -> Result<(), CompileError> {
    let [ng0, ng1, _] = ctx.num_groups;
    let group_id = [g % ng0, (g / ng0) % ng1, g / (ng0 * ng1)];

    // Per-group `__local` arenas, zeroed like freshly mapped device memory.
    let mut locals: Vec<Vec<u8>> = ctx.local_sizes.iter().map(|n| vec![0u8; *n]).collect();

    // Enumerate this group's work-items (edge groups may be partial).
    let mut items: Vec<WorkItem> = Vec::new();
    for lz in 0..ctx.local[2] {
        let z = group_id[2] * ctx.local[2] + lz;
        if z >= ctx.global[2] {
            break;
        }
        for ly in 0..ctx.local[1] {
            let y = group_id[1] * ctx.local[1] + ly;
            if y >= ctx.global[1] {
                break;
            }
            for lx in 0..ctx.local[0] {
                let x = group_id[0] * ctx.local[0] + lx;
                if x >= ctx.global[0] {
                    break;
                }
                items.push(WorkItem {
                    global_id: [x + ctx.offset[0], y + ctx.offset[1], z + ctx.offset[2]],
                    global_size: ctx.global,
                    local_id: [lx, ly, lz],
                    local_size: ctx.local,
                    group_id,
                    num_groups: ctx.num_groups,
                    offset: ctx.offset,
                    work_dim: ctx.work_dim,
                });
            }
        }
    }

    let num_regs = ctx.kernel.func.num_regs;
    // Bind the arguments into a seed register file once per group; restoring
    // it per work-item is then a plain memcpy of `Copy` slots.
    let mut seed_regs = vec![Slot::Void; num_regs];
    let mut seed_vecs: Vec<VecVal> = Vec::new();
    for (i, v) in ctx.bound_args.iter().enumerate() {
        write_value(&mut seed_regs, &mut seed_vecs, i, v.clone());
    }

    if !ctx.kernel.has_barrier {
        // Fast path: run items straight through, reusing one frame stack and
        // register file for the whole batch (registers are written before
        // read, so stale values never leak between items).
        let mut frames: Vec<Frame> = Vec::new();
        let mut regs = seed_regs.clone();
        let mut vecs = seed_vecs.clone();
        for item in &items {
            regs[..ctx.bound_args.len()].copy_from_slice(&seed_regs[..ctx.bound_args.len()]);
            if !seed_vecs.is_empty() {
                vecs.clone_from(&seed_vecs);
            }
            frames.clear();
            frames.push(Frame {
                func: FuncId::Kernel,
                pc: 0,
                regs: std::mem::take(&mut regs),
                vecs: std::mem::take(&mut vecs),
                ret_dst: None,
            });
            let mut steps = 0u64;
            let stop = exec_frames(ctx, &mut locals, item, &mut frames, counters, &mut steps);
            // Reclaim the register file for the next item before `?`.
            if let Some(f) = frames.pop() {
                regs = f.regs;
                vecs = f.vecs;
            }
            match stop? {
                Stop::Done => counters.work_items += 1,
                Stop::Barrier => {
                    return Err(CompileError::new(
                        "internal error: barrier reached in a kernel analysed as barrier-free",
                    ))
                }
            }
        }
        return Ok(());
    }

    // Barrier path: every item keeps its own parked frame stack; the group
    // advances in phases until all items retire.
    struct ItemRun {
        item: WorkItem,
        frames: Vec<Frame>,
        steps: u64,
        done: bool,
    }
    let mut runs: Vec<ItemRun> = items
        .into_iter()
        .map(|item| ItemRun {
            item,
            frames: vec![Frame {
                func: FuncId::Kernel,
                pc: 0,
                regs: seed_regs.clone(),
                vecs: seed_vecs.clone(),
                ret_dst: None,
            }],
            steps: 0,
            done: false,
        })
        .collect();

    loop {
        // One phase: run every live item to its next barrier or to the end.
        let mut at_barrier = 0usize;
        let mut finished = 0usize;
        let mut signature: Option<(FuncId, usize, usize)> = None;
        for run in runs.iter_mut().filter(|r| !r.done) {
            let stop = exec_frames(
                ctx,
                &mut locals,
                &run.item,
                &mut run.frames,
                counters,
                &mut run.steps,
            )?;
            match stop {
                Stop::Done => {
                    run.done = true;
                    counters.work_items += 1;
                    finished += 1;
                }
                Stop::Barrier => {
                    at_barrier += 1;
                    let top = run.frames.last().expect("parked item has a frame");
                    let sig = (top.func, top.pc, run.frames.len());
                    match &signature {
                        None => signature = Some(sig),
                        Some(s) if *s != sig => {
                            return Err(CompileError::new(
                                "barrier divergence: work-items in the same group reached \
                                 different barriers",
                            ))
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        if at_barrier == 0 {
            return Ok(());
        }
        if finished > 0 {
            return Err(CompileError::new(
                "barrier divergence: not all work-items in the group reached the barrier",
            ));
        }
    }
}

/// Run the item's frame stack until it returns from the kernel frame or
/// parks at a barrier.
fn exec_frames(
    ctx: &LaunchCtx<'_, '_>,
    locals: &mut [Vec<u8>],
    item: &WorkItem,
    frames: &mut Vec<Frame>,
    counters: &mut WorkItemCounters,
    steps: &mut u64,
) -> Result<Stop, CompileError> {
    // Counter accounting lives in locals so the dispatch loop pays register
    // increments instead of memory read-modify-writes; everything is flushed
    // back at every exit (returns and the error macros below).
    let entry_steps = *steps;
    let mut nsteps = *steps;
    let mut nops: u64 = 0;
    let mut nloads: u64 = 0;
    let mut nstores: u64 = 0;

    macro_rules! flush_steps {
        () => {{
            counters.steps += nsteps - entry_steps;
            *steps = nsteps;
            counters.ops += nops;
            counters.loads += nloads;
            counters.stores += nstores;
        }};
    }

    'frames: loop {
        let depth = frames.len() - 1;
        let func_id = frames[depth].func;
        let func = ctx.resolve(func_id);
        let quick = &func.quick;
        let code = &quick.insts[..];

        macro_rules! fail {
            ($pc:expr, $($arg:tt)*) => {{
                let mut e = CompileError::new(format!($($arg)*));
                e.location = func.locs.get($pc).copied().unwrap_or_default();
                flush_steps!();
                return Err(e);
            }};
        }
        // Attach the instruction's source location to helper errors that
        // carry none of their own.
        macro_rules! at {
            ($pc:expr, $res:expr) => {
                match $res {
                    Ok(v) => v,
                    Err(mut e) => {
                        if e.location == Location::default() {
                            e.location = func.locs.get($pc).copied().unwrap_or_default();
                        }
                        flush_steps!();
                        return Err(e);
                    }
                }
            };
        }

        // One frame borrow for the whole dispatch loop; `CallUser`/`Return`
        // finish with `fr` before touching `frames` and re-enter `'frames`,
        // which rebinds it.
        let fr = &mut frames[depth];
        let mut pc = fr.pc;

        // Shared body of `Binary` and the fused variants; `$pc` is the index
        // whose source location a failure should carry.
        macro_rules! binop {
            ($op:expr, $dst:expr, $lhs:expr, $rhs:expr, $pc:expr) => {
                match (trusted::reg(&fr.regs, $lhs), trusted::reg(&fr.regs, $rhs)) {
                    (Slot::Scalar(lt, ls), Slot::Scalar(rt, rs))
                        if let Some(slot) = binary_fast($op, lt, ls, rt, rs) =>
                    {
                        trusted::set_reg(&mut fr.regs, $dst, slot);
                    }
                    _ => at!(
                        $pc,
                        binary_slow(
                            &mut fr.regs,
                            &mut fr.vecs,
                            $op,
                            $dst as usize,
                            $lhs as usize,
                            $rhs as usize,
                        )
                    ),
                }
            };
        }

        // Any infinite loop must take some jump infinitely often, so the
        // step-limit check runs at taken jumps (and nowhere on the
        // straight-line path, which is bounded by the stream length).
        macro_rules! check_steps {
            () => {
                if nsteps > MAX_STEPS_PER_ITEM {
                    flush_steps!();
                    return Err(CompileError::new(
                        "work-item exceeded the interpreter step limit (possible infinite loop)",
                    ));
                }
            };
        }

        loop {
            nsteps += 1;
            match trusted::inst(code, pc) {
                QInst::Const { dst, slot } => {
                    trusted::set_reg(&mut fr.regs, dst, slot);
                }
                QInst::ConstVec { dst, pool } => {
                    op_const_vec(quick, &mut fr.regs, &mut fr.vecs, dst, pool);
                }
                QInst::Move { dst, src } => match trusted::reg(&fr.regs, src) {
                    Slot::Vector => {
                        let v = fr.vecs[src as usize].clone();
                        write_vec(&mut fr.regs, &mut fr.vecs, dst as usize, v.ty, v.lanes);
                    }
                    s => trusted::set_reg(&mut fr.regs, dst, s),
                },
                QInst::ConvertScalar { dst, src, ty } => {
                    let s = match trusted::reg(&fr.regs, src) {
                        Slot::Scalar(_, s) => s,
                        other => {
                            at!(pc, slot_to_value(other, src as usize, &fr.vecs).scalar())
                        }
                    };
                    trusted::set_reg(&mut fr.regs, dst, Slot::Scalar(ty, convert_scalar(s, ty)));
                }
                QInst::Convert { dst, src, pool } => {
                    at!(pc, op_convert(quick, &mut fr.regs, &mut fr.vecs, dst, src, pool));
                }
                QInst::Binary { op, dst, lhs, rhs } => {
                    nops += 1;
                    binop!(op, dst, lhs, rhs, pc);
                }
                QInst::Nop => {}
                QInst::BinaryImmR { op, dst, lhs, cdst, imm } => {
                    nops += 1;
                    trusted::set_reg(&mut fr.regs, cdst, quick.imms[imm as usize]);
                    binop!(op, dst, lhs, cdst, pc + 1);
                    pc += 2;
                    continue;
                }
                QInst::BinaryImmL { op, dst, cdst, rhs, imm } => {
                    nops += 1;
                    trusted::set_reg(&mut fr.regs, cdst, quick.imms[imm as usize]);
                    binop!(op, dst, cdst, rhs, pc + 1);
                    pc += 2;
                    continue;
                }
                QInst::BinaryJf { op, dst, lhs, rhs, target } => {
                    nops += 1;
                    binop!(op, dst, lhs, rhs, pc);
                    let b = match trusted::reg(&fr.regs, dst) {
                        Slot::Scalar(_, s) => s.as_bool(),
                        other => {
                            at!(pc + 1, slot_to_value(other, dst as usize, &fr.vecs).as_bool())
                        }
                    };
                    if b {
                        pc += 2;
                    } else {
                        check_steps!();
                        pc = target as usize;
                    }
                    continue;
                }
                QInst::BinaryJt { op, dst, lhs, rhs, target } => {
                    nops += 1;
                    binop!(op, dst, lhs, rhs, pc);
                    let b = match trusted::reg(&fr.regs, dst) {
                        Slot::Scalar(_, s) => s.as_bool(),
                        other => {
                            at!(pc + 1, slot_to_value(other, dst as usize, &fr.vecs).as_bool())
                        }
                    };
                    if b {
                        check_steps!();
                        pc = target as usize;
                    } else {
                        pc += 2;
                    }
                    continue;
                }
                QInst::BinaryCvt { op, dst, lhs, rhs, cdst, ty } => {
                    nops += 1;
                    binop!(op, dst, lhs, rhs, pc);
                    let s = match trusted::reg(&fr.regs, dst) {
                        Slot::Scalar(_, s) => s,
                        other => {
                            at!(pc + 1, slot_to_value(other, dst as usize, &fr.vecs).scalar())
                        }
                    };
                    trusted::set_reg(&mut fr.regs, cdst, Slot::Scalar(ty, convert_scalar(s, ty)));
                    pc += 2;
                    continue;
                }
                QInst::MulMulOp { op, dst, t1, a, b, t2, c, d } => {
                    nops += 3;
                    binop!(BinOp::Mul, t1, a, b, pc);
                    binop!(BinOp::Mul, t2, c, d, pc + 1);
                    binop!(op, dst, t1, t2, pc + 2);
                    pc += 3;
                    continue;
                }
                QInst::BinaryImmJf { op, dst, lhs, cdst, imm, target } => {
                    nops += 1;
                    trusted::set_reg(&mut fr.regs, cdst, quick.imms[imm as usize]);
                    binop!(op, dst, lhs, cdst, pc + 1);
                    let b = match trusted::reg(&fr.regs, dst) {
                        Slot::Scalar(_, s) => s.as_bool(),
                        other => {
                            at!(pc + 2, slot_to_value(other, dst as usize, &fr.vecs).as_bool())
                        }
                    };
                    if b {
                        pc += 3;
                    } else {
                        check_steps!();
                        pc = target as usize;
                    }
                    continue;
                }
                QInst::BinaryImmCvt { op, dst, lhs, cdst, imm, vdst, ty } => {
                    nops += 1;
                    trusted::set_reg(&mut fr.regs, cdst, quick.imms[imm as usize]);
                    binop!(op, dst, lhs, cdst, pc + 1);
                    let s = match trusted::reg(&fr.regs, dst) {
                        Slot::Scalar(_, s) => s,
                        other => {
                            at!(pc + 2, slot_to_value(other, dst as usize, &fr.vecs).scalar())
                        }
                    };
                    trusted::set_reg(&mut fr.regs, vdst, Slot::Scalar(ty, convert_scalar(s, ty)));
                    pc += 3;
                    continue;
                }
                QInst::Unary { op, dst, src } => {
                    nops += 1;
                    at!(pc, op_unary(op, &mut fr.regs, &mut fr.vecs, dst, src));
                }
                QInst::Bool { dst, src } => {
                    nops += 1;
                    let b = match trusted::reg(&fr.regs, src) {
                        Slot::Scalar(_, s) => s.as_bool(),
                        other => {
                            at!(pc, slot_to_value(other, src as usize, &fr.vecs).as_bool())
                        }
                    };
                    trusted::set_reg(
                        &mut fr.regs,
                        dst,
                        Slot::Scalar(ScalarType::Int, Scalar::I(i64::from(b))),
                    );
                }
                QInst::Load { dst, ptr, index } => {
                    let p = match trusted::reg(&fr.regs, ptr) {
                        Slot::Ptr(p) => p,
                        other => {
                            let ty = slot_to_value(other, ptr as usize, &fr.vecs).ty();
                            if index != NO_REG {
                                fail!(pc, "cannot index a value of type {}", ty)
                            } else {
                                fail!(pc, "cannot dereference a value of type {}", ty)
                            }
                        }
                    };
                    let offset = if index != NO_REG {
                        let idx = match trusted::reg(&fr.regs, index) {
                            Slot::Scalar(_, s) => s.as_i64(),
                            other => {
                                at!(pc, slot_to_value(other, index as usize, &fr.vecs).as_i64())
                            }
                        };
                        p.byte_offset + idx * p.pointee.size() as i64
                    } else {
                        p.byte_offset
                    };
                    if offset < 0 {
                        fail!(pc, "negative pointer offset");
                    }
                    nloads += 1;
                    let s = at!(
                        pc,
                        mem_load(ctx.shared, locals, p.buffer as usize, offset as usize, p.pointee)
                    );
                    trusted::set_reg(&mut fr.regs, dst, Slot::Scalar(p.pointee, s));
                }
                QInst::Store { ptr, index, src } => {
                    let p = match trusted::reg(&fr.regs, ptr) {
                        Slot::Ptr(p) => p,
                        other => {
                            let ty = slot_to_value(other, ptr as usize, &fr.vecs).ty();
                            if index != NO_REG {
                                fail!(pc, "cannot index a value of type {}", ty)
                            } else {
                                fail!(pc, "cannot dereference a value of type {}", ty)
                            }
                        }
                    };
                    let offset = if index != NO_REG {
                        let idx = match trusted::reg(&fr.regs, index) {
                            Slot::Scalar(_, s) => s.as_i64(),
                            other => {
                                at!(pc, slot_to_value(other, index as usize, &fr.vecs).as_i64())
                            }
                        };
                        p.byte_offset + idx * p.pointee.size() as i64
                    } else {
                        p.byte_offset
                    };
                    if offset < 0 {
                        fail!(pc, "negative pointer offset");
                    }
                    let s = match trusted::reg(&fr.regs, src) {
                        Slot::Scalar(_, s) => s,
                        other => {
                            at!(pc, slot_to_value(other, src as usize, &fr.vecs).scalar())
                        }
                    };
                    nstores += 1;
                    at!(
                        pc,
                        mem_store(
                            ctx.shared,
                            locals,
                            p.buffer as usize,
                            offset as usize,
                            p.pointee,
                            s
                        )
                    );
                }
                QInst::Lane { dst, src, lane } => {
                    at!(pc, op_lane(&mut fr.regs, &fr.vecs, dst, src, lane));
                }
                QInst::Swizzle { dst, src, pool } => {
                    at!(pc, op_swizzle(quick, &mut fr.regs, &mut fr.vecs, dst, src, pool));
                }
                QInst::SetLane { dst, lane, src } => {
                    at!(pc, op_set_lane(&mut fr.regs, &mut fr.vecs, dst, lane, src));
                }
                QInst::VecCtor { dst, ty, width, pool } => {
                    at!(pc, op_vec_ctor(quick, &mut fr.regs, &mut fr.vecs, dst, ty, width, pool));
                }
                QInst::CallMath { dst, pool } => {
                    nops += 1;
                    at!(pc, op_call_math(quick, &mut fr.regs, &mut fr.vecs, dst, pool));
                }
                QInst::WorkItem { dst, which, dim } => {
                    let d = if dim == NO_REG {
                        0
                    } else {
                        match trusted::reg(&fr.regs, dim) {
                            Slot::Scalar(_, s) => (s.as_u64() as usize).min(2),
                            other => {
                                at!(pc, slot_to_value(other, dim as usize, &fr.vecs).as_usize())
                                    .min(2)
                            }
                        }
                    };
                    let v = match which {
                        WorkItemFn::GlobalId => item.global_id[d],
                        WorkItemFn::LocalId => item.local_id[d],
                        WorkItemFn::GroupId => item.group_id[d],
                        WorkItemFn::GlobalSize => item.global_size[d],
                        WorkItemFn::LocalSize => item.local_size[d],
                        WorkItemFn::NumGroups => item.num_groups[d],
                        WorkItemFn::GlobalOffset => item.offset[d],
                        WorkItemFn::WorkDim => item.work_dim as usize,
                    };
                    trusted::set_reg(
                        &mut fr.regs,
                        dst,
                        Slot::Scalar(ScalarType::SizeT, Scalar::U(v as u64)),
                    );
                }
                QInst::Atomic { op, dst, ptr, operand } => {
                    at!(
                        pc,
                        op_atomic(
                            ctx,
                            locals,
                            counters,
                            &mut fr.regs,
                            &fr.vecs,
                            op,
                            dst,
                            ptr,
                            operand,
                        )
                    );
                }
                QInst::Jump { target } => {
                    check_steps!();
                    pc = target as usize;
                    continue;
                }
                QInst::JumpIfFalse { cond, target } => {
                    let b = match trusted::reg(&fr.regs, cond) {
                        Slot::Scalar(_, s) => s.as_bool(),
                        other => {
                            at!(pc, slot_to_value(other, cond as usize, &fr.vecs).as_bool())
                        }
                    };
                    if !b {
                        check_steps!();
                        pc = target as usize;
                        continue;
                    }
                }
                QInst::JumpIfTrue { cond, target } => {
                    let b = match trusted::reg(&fr.regs, cond) {
                        Slot::Scalar(_, s) => s.as_bool(),
                        other => {
                            at!(pc, slot_to_value(other, cond as usize, &fr.vecs).as_bool())
                        }
                    };
                    if b {
                        check_steps!();
                        pc = target as usize;
                        continue;
                    }
                }
                QInst::Barrier => {
                    fr.pc = pc + 1;
                    flush_steps!();
                    return Ok(Stop::Barrier);
                }
                QInst::CallUser { dst, func: f, pool } => {
                    if depth + 1 > MAX_CALL_DEPTH {
                        fail!(pc, "maximum call depth exceeded");
                    }
                    let callee = &ctx.unit.functions[f as usize];
                    let args = &quick.reg_lists[pool as usize];
                    let mut callee_regs = vec![Slot::Void; callee.num_regs];
                    let mut callee_vecs: Vec<VecVal> = Vec::new();
                    for (i, (a, ty)) in args.iter().zip(&callee.param_types).enumerate() {
                        let v = slot_to_value(fr.regs[*a as usize], *a as usize, &fr.vecs);
                        let c = at!(pc, v.convert_to(ty));
                        write_value(&mut callee_regs, &mut callee_vecs, i, c);
                    }
                    fr.pc = pc + 1;
                    frames.push(Frame {
                        func: FuncId::Helper(f as usize),
                        pc: 0,
                        regs: callee_regs,
                        vecs: callee_vecs,
                        ret_dst: Some(dst),
                    });
                    continue 'frames;
                }
                QInst::Return { src } => {
                    let ret = if func.return_type == Type::Void {
                        Value::Void
                    } else if src == NO_REG {
                        fail!(pc, "function '{}' ended without returning a value", func.name)
                    } else {
                        let v = slot_to_value(fr.regs[src as usize], src as usize, &fr.vecs);
                        at!(pc, v.convert_to(&func.return_type))
                    };
                    if depth == 0 {
                        // Keep the kernel frame so callers can reclaim its
                        // register file between work-items.
                        flush_steps!();
                        return Ok(Stop::Done);
                    }
                    let finished = frames.pop().expect("returning frame exists");
                    if let Some(dst) = finished.ret_dst {
                        let caller = &mut frames[depth - 1];
                        write_value(&mut caller.regs, &mut caller.vecs, dst as usize, ret);
                    }
                    continue 'frames;
                }
            }
            pc += 1;
        }
    }
}

fn mem_load(
    shared: &SharedBufs<'_>,
    locals: &[Vec<u8>],
    buffer: usize,
    offset: usize,
    ty: ScalarType,
) -> Result<Scalar, CompileError> {
    if buffer < shared.len() {
        load_scalar(shared.bytes(buffer), offset, ty)
    } else {
        load_scalar(&locals[buffer - shared.len()], offset, ty)
    }
}

fn mem_store(
    shared: &SharedBufs<'_>,
    locals: &mut [Vec<u8>],
    buffer: usize,
    offset: usize,
    ty: ScalarType,
    value: Scalar,
) -> Result<(), CompileError> {
    if buffer < shared.len() {
        store_scalar(shared.bytes_mut(buffer), offset, ty, value)
    } else {
        store_scalar(&mut locals[buffer - shared.len()], offset, ty, value)
    }
}
