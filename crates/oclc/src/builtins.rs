//! Built-in functions of the OpenCL C subset.
//!
//! Three families are distinguished:
//!
//! * **work-item functions** (`get_global_id`, ...) — evaluated by the
//!   executors against the current work-item context,
//! * **atomic functions** (`atomic_add`, ...) — evaluated by the executors
//!   because they need access to buffer memory,
//! * **math / common functions** (`sqrt`, `clamp`, `dot`, ...) — pure, and
//!   evaluated here.
//!
//! Synchronisation built-ins split by executor: the bytecode VM
//! (`crate::vm`) lowers `barrier()` to a real suspension point and resumes
//! the work-group in phases, so barrier-separated `__local` traffic is
//! coherent; `mem_fence()` and friends are no-ops there (each phase runs to
//! completion, so ordering is already program order).  The legacy
//! tree-walking interpreter runs work-items sequentially and treats
//! `barrier()` as a no-op, which is why it rejects kernels combining
//! barriers with `__local`-memory writes.

use crate::error::CompileError;
use crate::types::ScalarType;
use crate::value::{Scalar, Value};

/// Classification of a built-in function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinKind {
    /// Needs the work-item context (ids and sizes).
    WorkItem,
    /// Needs buffer memory access (atomics).
    Atomic,
    /// Pure math / common function.
    Math,
    /// Synchronisation no-op (`barrier`, `mem_fence`, ...).
    Sync,
    /// Vector constructor lowered by the parser (`__vec_float4`, ...).
    VectorCtor,
}

/// Classify `name`; returns `None` for names that are not built-ins.
pub fn classify(name: &str) -> Option<BuiltinKind> {
    if name.starts_with("__vec_") {
        return Some(BuiltinKind::VectorCtor);
    }
    let kind = match name {
        "get_global_id" | "get_local_id" | "get_group_id" | "get_global_size"
        | "get_local_size" | "get_num_groups" | "get_work_dim" | "get_global_offset" => {
            BuiltinKind::WorkItem
        }
        "atomic_add" | "atomic_sub" | "atomic_inc" | "atomic_dec" | "atomic_xchg"
        | "atomic_min" | "atomic_max" | "atom_add" | "atom_inc" => BuiltinKind::Atomic,
        "barrier" | "mem_fence" | "read_mem_fence" | "write_mem_fence" => BuiltinKind::Sync,
        _ if MATH_BUILTINS.contains(&name) => BuiltinKind::Math,
        _ => return None,
    };
    Some(kind)
}

/// Names of the pure math / common built-ins supported by [`eval_math`].
pub const MATH_BUILTINS: &[&str] = &[
    "sqrt",
    "rsqrt",
    "native_sqrt",
    "native_rsqrt",
    "fabs",
    "abs",
    "exp",
    "native_exp",
    "exp2",
    "log",
    "native_log",
    "log2",
    "log10",
    "pow",
    "powr",
    "native_powr",
    "sin",
    "native_sin",
    "cos",
    "native_cos",
    "tan",
    "native_tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "hypot",
    "floor",
    "ceil",
    "round",
    "trunc",
    "fmin",
    "fmax",
    "min",
    "max",
    "clamp",
    "mix",
    "fma",
    "mad",
    "fmod",
    "dot",
    "length",
    "distance",
    "normalize",
    "isnan",
    "isinf",
    "sign",
    "convert_int",
    "convert_uint",
    "convert_float",
    "convert_double",
    "convert_long",
    "convert_ulong",
];

/// Identifier-level built-in constants (flag arguments to `barrier`).
pub fn builtin_constant(name: &str) -> Option<Value> {
    match name {
        "CLK_LOCAL_MEM_FENCE" => Some(Value::uint(1)),
        "CLK_GLOBAL_MEM_FENCE" => Some(Value::uint(2)),
        "M_PI" | "M_PI_F" => Some(Value::double(std::f64::consts::PI)),
        "M_E" | "M_E_F" => Some(Value::double(std::f64::consts::E)),
        "FLT_MAX" => Some(Value::float(f32::MAX)),
        "FLT_MIN" => Some(Value::float(f32::MIN_POSITIVE)),
        "FLT_EPSILON" => Some(Value::float(f32::EPSILON)),
        "INT_MAX" => Some(Value::int(i32::MAX as i64)),
        "UINT_MAX" => Some(Value::uint(u32::MAX as u64)),
        _ => None,
    }
}

fn f_arg(args: &[Value], i: usize, name: &str) -> Result<f64, CompileError> {
    args.get(i).ok_or_else(|| CompileError::new(format!("{name}: missing argument {i}")))?.as_f64()
}

fn float_result(args: &[Value], v: f64) -> Value {
    // Follow the widest floating type among the arguments; default float.
    let is_double = args.iter().any(|a| matches!(a, Value::Scalar(ScalarType::Double, _)));
    if is_double {
        Value::double(v)
    } else {
        Value::float(v as f32)
    }
}

fn lanes_of(v: &Value) -> Option<(&ScalarType, &Vec<Scalar>)> {
    match v {
        Value::Vector(t, lanes) => Some((t, lanes)),
        _ => None,
    }
}

fn expect_args(name: &str, args: &[Value], n: usize) -> Result<(), CompileError> {
    if args.len() != n {
        return Err(CompileError::new(format!(
            "{name}: expected {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

/// Evaluate a pure math built-in.
pub fn eval_math(name: &str, args: &[Value]) -> Result<Value, CompileError> {
    // Component-wise application over vectors for single-argument functions.
    if args.len() == 1 {
        if let Some((t, lanes)) = lanes_of(&args[0]) {
            let mapped: Result<Vec<Scalar>, CompileError> = lanes
                .iter()
                .map(|l| {
                    let v = eval_math(name, &[Value::Scalar(*t, *l)])?;
                    v.scalar()
                })
                .collect();
            // dot/length/normalize handled separately below, so reaching here
            // is fine for elementwise ops.
            if !matches!(name, "length" | "normalize" | "dot" | "distance") {
                return Ok(Value::Vector(*t, mapped?));
            }
        }
    }
    match name {
        "sqrt" | "native_sqrt" => Ok(float_result(args, f_arg(args, 0, name)?.sqrt())),
        "rsqrt" | "native_rsqrt" => Ok(float_result(args, 1.0 / f_arg(args, 0, name)?.sqrt())),
        "fabs" => Ok(float_result(args, f_arg(args, 0, name)?.abs())),
        "abs" => {
            expect_args(name, args, 1)?;
            match &args[0] {
                Value::Scalar(t, s) if t.is_integer() => {
                    Ok(Value::Scalar(*t, Scalar::U(s.as_i64().unsigned_abs())))
                }
                other => Ok(float_result(args, other.as_f64()?.abs())),
            }
        }
        "exp" | "native_exp" => Ok(float_result(args, f_arg(args, 0, name)?.exp())),
        "exp2" => Ok(float_result(args, f_arg(args, 0, name)?.exp2())),
        "log" | "native_log" => Ok(float_result(args, f_arg(args, 0, name)?.ln())),
        "log2" => Ok(float_result(args, f_arg(args, 0, name)?.log2())),
        "log10" => Ok(float_result(args, f_arg(args, 0, name)?.log10())),
        "pow" | "powr" | "native_powr" => {
            expect_args(name, args, 2)?;
            Ok(float_result(args, f_arg(args, 0, name)?.powf(f_arg(args, 1, name)?)))
        }
        "sin" | "native_sin" => Ok(float_result(args, f_arg(args, 0, name)?.sin())),
        "cos" | "native_cos" => Ok(float_result(args, f_arg(args, 0, name)?.cos())),
        "tan" | "native_tan" => Ok(float_result(args, f_arg(args, 0, name)?.tan())),
        "asin" => Ok(float_result(args, f_arg(args, 0, name)?.asin())),
        "acos" => Ok(float_result(args, f_arg(args, 0, name)?.acos())),
        "atan" => Ok(float_result(args, f_arg(args, 0, name)?.atan())),
        "atan2" => {
            expect_args(name, args, 2)?;
            Ok(float_result(args, f_arg(args, 0, name)?.atan2(f_arg(args, 1, name)?)))
        }
        "hypot" => {
            expect_args(name, args, 2)?;
            Ok(float_result(args, f_arg(args, 0, name)?.hypot(f_arg(args, 1, name)?)))
        }
        "floor" => Ok(float_result(args, f_arg(args, 0, name)?.floor())),
        "ceil" => Ok(float_result(args, f_arg(args, 0, name)?.ceil())),
        "round" => Ok(float_result(args, f_arg(args, 0, name)?.round())),
        "trunc" => Ok(float_result(args, f_arg(args, 0, name)?.trunc())),
        "fmod" => {
            expect_args(name, args, 2)?;
            Ok(float_result(args, f_arg(args, 0, name)? % f_arg(args, 1, name)?))
        }
        "fmin" | "min" => {
            expect_args(name, args, 2)?;
            binary_min_max(args, true)
        }
        "fmax" | "max" => {
            expect_args(name, args, 2)?;
            binary_min_max(args, false)
        }
        "clamp" => {
            expect_args(name, args, 3)?;
            let lo = binary_min_max(&[args[0].clone(), args[2].clone()], true)?;
            binary_min_max(&[lo, args[1].clone()], false)
        }
        "mix" => {
            expect_args(name, args, 3)?;
            let a = f_arg(args, 0, name)?;
            let b = f_arg(args, 1, name)?;
            let t = f_arg(args, 2, name)?;
            Ok(float_result(args, a + (b - a) * t))
        }
        "fma" | "mad" => {
            expect_args(name, args, 3)?;
            Ok(float_result(
                args,
                f_arg(args, 0, name)? * f_arg(args, 1, name)? + f_arg(args, 2, name)?,
            ))
        }
        "dot" => {
            expect_args(name, args, 2)?;
            let (_, a) = lanes_of(&args[0])
                .ok_or_else(|| CompileError::new("dot: expected vector arguments"))?;
            let (_, b) = lanes_of(&args[1])
                .ok_or_else(|| CompileError::new("dot: expected vector arguments"))?;
            if a.len() != b.len() {
                return Err(CompileError::new("dot: vector length mismatch"));
            }
            let v: f64 = a.iter().zip(b).map(|(x, y)| x.as_f64() * y.as_f64()).sum();
            Ok(Value::float(v as f32))
        }
        "length" => {
            expect_args(name, args, 1)?;
            let (_, a) = lanes_of(&args[0])
                .ok_or_else(|| CompileError::new("length: expected a vector argument"))?;
            let v: f64 = a.iter().map(|x| x.as_f64() * x.as_f64()).sum();
            Ok(Value::float(v.sqrt() as f32))
        }
        "distance" => {
            expect_args(name, args, 2)?;
            let (_, a) = lanes_of(&args[0])
                .ok_or_else(|| CompileError::new("distance: expected vector arguments"))?;
            let (_, b) = lanes_of(&args[1])
                .ok_or_else(|| CompileError::new("distance: expected vector arguments"))?;
            let v: f64 = a.iter().zip(b).map(|(x, y)| (x.as_f64() - y.as_f64()).powi(2)).sum();
            Ok(Value::float(v.sqrt() as f32))
        }
        "normalize" => {
            expect_args(name, args, 1)?;
            let (t, a) = lanes_of(&args[0])
                .ok_or_else(|| CompileError::new("normalize: expected a vector argument"))?;
            let len: f64 = a.iter().map(|x| x.as_f64() * x.as_f64()).sum::<f64>().sqrt();
            let lanes = a.iter().map(|x| Scalar::F(x.as_f64() / len)).collect();
            Ok(Value::Vector(*t, lanes))
        }
        "isnan" => Ok(Value::int(i64::from(f_arg(args, 0, name)?.is_nan()))),
        "isinf" => Ok(Value::int(i64::from(f_arg(args, 0, name)?.is_infinite()))),
        "sign" => {
            let v = f_arg(args, 0, name)?;
            Ok(float_result(
                args,
                if v > 0.0 {
                    1.0
                } else if v < 0.0 {
                    -1.0
                } else {
                    0.0
                },
            ))
        }
        "convert_int" => Ok(Value::int(args[0].as_i64()? as i32 as i64)),
        "convert_uint" => Ok(Value::uint(args[0].as_u64()? as u32 as u64)),
        "convert_long" => Ok(Value::long(args[0].as_i64()?)),
        "convert_ulong" => Ok(Value::Scalar(ScalarType::ULong, Scalar::U(args[0].as_u64()?))),
        "convert_float" => Ok(Value::float(args[0].as_f64()? as f32)),
        "convert_double" => Ok(Value::double(args[0].as_f64()?)),
        other => Err(CompileError::new(format!("unknown math builtin '{other}'"))),
    }
}

fn binary_min_max(args: &[Value], is_min: bool) -> Result<Value, CompileError> {
    // Integer-preserving when both operands are integer scalars.
    match (&args[0], &args[1]) {
        (Value::Scalar(ta, a), Value::Scalar(tb, b)) if ta.is_integer() && tb.is_integer() => {
            if ta.is_signed() || tb.is_signed() {
                let (x, y) = (a.as_i64(), b.as_i64());
                let v = if is_min { x.min(y) } else { x.max(y) };
                Ok(Value::Scalar(*ta, Scalar::I(v)))
            } else {
                let (x, y) = (a.as_u64(), b.as_u64());
                let v = if is_min { x.min(y) } else { x.max(y) };
                Ok(Value::Scalar(*ta, Scalar::U(v)))
            }
        }
        _ => {
            let x = args[0].as_f64()?;
            let y = args[1].as_f64()?;
            let v = if is_min { x.min(y) } else { x.max(y) };
            Ok(float_result(args, v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_known_builtins() {
        assert_eq!(classify("get_global_id"), Some(BuiltinKind::WorkItem));
        assert_eq!(classify("atomic_add"), Some(BuiltinKind::Atomic));
        assert_eq!(classify("sqrt"), Some(BuiltinKind::Math));
        assert_eq!(classify("barrier"), Some(BuiltinKind::Sync));
        assert_eq!(classify("__vec_float4"), Some(BuiltinKind::VectorCtor));
        assert_eq!(classify("not_a_builtin"), None);
    }

    #[test]
    fn math_scalar_functions() {
        assert_eq!(eval_math("sqrt", &[Value::float(9.0)]).unwrap().as_f64().unwrap(), 3.0);
        assert_eq!(eval_math("max", &[Value::int(3), Value::int(7)]).unwrap().as_i64().unwrap(), 7);
        assert_eq!(
            eval_math("min", &[Value::uint(3), Value::uint(7)]).unwrap().as_u64().unwrap(),
            3
        );
        let clamped =
            eval_math("clamp", &[Value::float(5.0), Value::float(0.0), Value::float(1.0)]).unwrap();
        assert_eq!(clamped.as_f64().unwrap(), 1.0);
        assert_eq!(
            eval_math("fma", &[Value::float(2.0), Value::float(3.0), Value::float(4.0)])
                .unwrap()
                .as_f64()
                .unwrap(),
            10.0
        );
    }

    #[test]
    fn double_arguments_produce_double_results() {
        let v = eval_math("sqrt", &[Value::double(2.0)]).unwrap();
        assert!(matches!(v, Value::Scalar(ScalarType::Double, _)));
    }

    #[test]
    fn vector_functions() {
        let a = Value::Vector(ScalarType::Float, vec![Scalar::F(1.0), Scalar::F(2.0)]);
        let b = Value::Vector(ScalarType::Float, vec![Scalar::F(3.0), Scalar::F(4.0)]);
        assert_eq!(eval_math("dot", &[a.clone(), b]).unwrap().as_f64().unwrap(), 11.0);
        let len = eval_math("length", std::slice::from_ref(&a)).unwrap().as_f64().unwrap();
        assert!((len - 5f64.sqrt()).abs() < 1e-6);
        // Elementwise application over vectors.
        let sq = eval_math(
            "sqrt",
            &[Value::Vector(ScalarType::Float, vec![Scalar::F(4.0), Scalar::F(9.0)])],
        )
        .unwrap();
        match sq {
            Value::Vector(_, lanes) => {
                assert_eq!(lanes[0].as_f64(), 2.0);
                assert_eq!(lanes[1].as_f64(), 3.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn integer_abs() {
        assert_eq!(eval_math("abs", &[Value::int(-5)]).unwrap().as_u64().unwrap(), 5);
    }

    #[test]
    fn errors_on_wrong_arity() {
        assert!(eval_math("pow", &[Value::float(2.0)]).is_err());
        assert!(eval_math("dot", &[Value::float(2.0), Value::float(1.0)]).is_err());
    }

    #[test]
    fn constants_resolve() {
        assert!(builtin_constant("CLK_LOCAL_MEM_FENCE").is_some());
        assert!(builtin_constant("M_PI").is_some());
        assert!(builtin_constant("NOT_A_CONSTANT").is_none());
    }
}
