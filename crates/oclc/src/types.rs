//! The OpenCL C type system subset.

use std::fmt;

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// `bool`
    Bool,
    /// `char` (8-bit signed)
    Char,
    /// `uchar` (8-bit unsigned)
    UChar,
    /// `short` (16-bit signed)
    Short,
    /// `ushort` (16-bit unsigned)
    UShort,
    /// `int` (32-bit signed)
    Int,
    /// `uint` (32-bit unsigned)
    UInt,
    /// `long` (64-bit signed)
    Long,
    /// `ulong` (64-bit unsigned)
    ULong,
    /// `size_t` (64-bit unsigned in this implementation)
    SizeT,
    /// `float` (32-bit IEEE)
    Float,
    /// `double` (64-bit IEEE)
    Double,
}

impl ScalarType {
    /// Size of the scalar in bytes.
    pub fn size(self) -> usize {
        match self {
            ScalarType::Bool | ScalarType::Char | ScalarType::UChar => 1,
            ScalarType::Short | ScalarType::UShort => 2,
            ScalarType::Int | ScalarType::UInt | ScalarType::Float => 4,
            ScalarType::Long | ScalarType::ULong | ScalarType::SizeT | ScalarType::Double => 8,
        }
    }

    /// True for integer types (including `bool` and `size_t`).
    pub fn is_integer(self) -> bool {
        !matches!(self, ScalarType::Float | ScalarType::Double)
    }

    /// True for `float` / `double`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float | ScalarType::Double)
    }

    /// True for signed integer types.
    pub fn is_signed(self) -> bool {
        matches!(self, ScalarType::Char | ScalarType::Short | ScalarType::Int | ScalarType::Long)
    }

    /// Resolve a scalar type name.
    pub fn from_name(name: &str) -> Option<ScalarType> {
        Some(match name {
            "bool" => ScalarType::Bool,
            "char" => ScalarType::Char,
            "uchar" | "unsigned_char" => ScalarType::UChar,
            "short" => ScalarType::Short,
            "ushort" => ScalarType::UShort,
            "int" => ScalarType::Int,
            "uint" | "unsigned" => ScalarType::UInt,
            "long" => ScalarType::Long,
            "ulong" => ScalarType::ULong,
            "size_t" => ScalarType::SizeT,
            "float" => ScalarType::Float,
            "double" => ScalarType::Double,
            _ => return None,
        })
    }

    /// The OpenCL C name of the type.
    pub fn name(self) -> &'static str {
        match self {
            ScalarType::Bool => "bool",
            ScalarType::Char => "char",
            ScalarType::UChar => "uchar",
            ScalarType::Short => "short",
            ScalarType::UShort => "ushort",
            ScalarType::Int => "int",
            ScalarType::UInt => "uint",
            ScalarType::Long => "long",
            ScalarType::ULong => "ulong",
            ScalarType::SizeT => "size_t",
            ScalarType::Float => "float",
            ScalarType::Double => "double",
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// OpenCL address spaces for pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressSpace {
    /// `__global`
    Global,
    /// `__local`
    Local,
    /// `__constant`
    Constant,
    /// `__private` (the default for automatic variables)
    #[default]
    Private,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressSpace::Global => "__global",
            AddressSpace::Local => "__local",
            AddressSpace::Constant => "__constant",
            AddressSpace::Private => "__private",
        };
        f.write_str(s)
    }
}

/// A type in the OpenCL C subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` (only valid as a return type).
    Void,
    /// A scalar.
    Scalar(ScalarType),
    /// A vector of 2, 3, 4, 8 or 16 scalar elements (e.g. `float4`).
    Vector(ScalarType, u8),
    /// A pointer to an element type in an address space.
    Pointer {
        /// What the pointer points at.
        pointee: Box<Type>,
        /// Where the memory lives.
        space: AddressSpace,
        /// Whether the pointee is `const`-qualified.
        is_const: bool,
    },
}

impl Type {
    /// Scalar shorthand.
    pub fn scalar(s: ScalarType) -> Type {
        Type::Scalar(s)
    }

    /// Global-pointer shorthand.
    pub fn global_ptr(pointee: Type) -> Type {
        Type::Pointer { pointee: Box::new(pointee), space: AddressSpace::Global, is_const: false }
    }

    /// Size of a value of this type in bytes (pointers report 8).
    pub fn size(&self) -> usize {
        match self {
            Type::Void => 0,
            Type::Scalar(s) => s.size(),
            Type::Vector(s, n) => {
                // OpenCL aligns 3-component vectors like 4-component ones.
                let n = if *n == 3 { 4 } else { *n };
                s.size() * n as usize
            }
            Type::Pointer { .. } => 8,
        }
    }

    /// Resolve a type name such as `float`, `uint4`, `size_t`.
    pub fn from_name(name: &str) -> Option<Type> {
        if let Some(s) = ScalarType::from_name(name) {
            return Some(Type::Scalar(s));
        }
        // Vector names: scalar name followed by 2/3/4/8/16.
        for width in [16u8, 8, 4, 3, 2] {
            let suffix = width.to_string();
            if let Some(base) = name.strip_suffix(&suffix) {
                if let Some(s) = ScalarType::from_name(base) {
                    if s != ScalarType::Bool {
                        return Some(Type::Vector(s, width));
                    }
                }
            }
        }
        None
    }

    /// True if `name` names a type in this subset.
    pub fn is_type_name(name: &str) -> bool {
        name == "void" || Type::from_name(name).is_some()
    }

    /// The scalar element type of a scalar or vector type.
    pub fn element_scalar(&self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(*s),
            Type::Vector(s, _) => Some(*s),
            _ => None,
        }
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer { .. })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector(s, n) => write!(f, "{s}{n}"),
            Type::Pointer { pointee, space, is_const } => {
                if *is_const {
                    write!(f, "{space} const {pointee}*")
                } else {
                    write!(f, "{space} {pointee}*")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarType::Char.size(), 1);
        assert_eq!(ScalarType::UShort.size(), 2);
        assert_eq!(ScalarType::Int.size(), 4);
        assert_eq!(ScalarType::Float.size(), 4);
        assert_eq!(ScalarType::SizeT.size(), 8);
        assert_eq!(ScalarType::Double.size(), 8);
    }

    #[test]
    fn type_names_resolve() {
        assert_eq!(Type::from_name("float"), Some(Type::Scalar(ScalarType::Float)));
        assert_eq!(Type::from_name("uint"), Some(Type::Scalar(ScalarType::UInt)));
        assert_eq!(Type::from_name("float4"), Some(Type::Vector(ScalarType::Float, 4)));
        assert_eq!(Type::from_name("int2"), Some(Type::Vector(ScalarType::Int, 2)));
        assert_eq!(Type::from_name("double16"), Some(Type::Vector(ScalarType::Double, 16)));
        assert_eq!(Type::from_name("float5"), None);
        assert_eq!(Type::from_name("mystruct"), None);
        assert!(Type::is_type_name("void"));
        assert!(Type::is_type_name("size_t"));
        assert!(!Type::is_type_name("banana"));
    }

    #[test]
    fn vector_sizes_follow_opencl_alignment() {
        assert_eq!(Type::Vector(ScalarType::Float, 4).size(), 16);
        assert_eq!(Type::Vector(ScalarType::Float, 3).size(), 16);
        assert_eq!(Type::Vector(ScalarType::Int, 2).size(), 8);
    }

    #[test]
    fn classification_helpers() {
        assert!(ScalarType::Int.is_signed());
        assert!(!ScalarType::UInt.is_signed());
        assert!(ScalarType::Float.is_float());
        assert!(ScalarType::SizeT.is_integer());
        assert!(Type::global_ptr(Type::scalar(ScalarType::Float)).is_pointer());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Type::Scalar(ScalarType::Float).to_string(), "float");
        assert_eq!(Type::Vector(ScalarType::UInt, 4).to_string(), "uint4");
        let p = Type::Pointer {
            pointee: Box::new(Type::Scalar(ScalarType::Float)),
            space: AddressSpace::Global,
            is_const: true,
        };
        assert_eq!(p.to_string(), "__global const float*");
    }
}
