//! Token definitions for the OpenCL C subset.

use crate::error::Location;

/// Keywords recognised by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `__kernel` / `kernel`
    Kernel,
    /// `__global` / `global`
    Global,
    /// `__local` / `local`
    Local,
    /// `__constant` / `constant`
    Constant,
    /// `__private` / `private`
    Private,
    /// `const`
    Const,
    /// `void`
    Void,
    /// `if`
    If,
    /// `else`
    Else,
    /// `for`
    For,
    /// `while`
    While,
    /// `do`
    Do,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `struct` (recognised but unsupported — produces a clear diagnostic)
    Struct,
    /// `true`
    True,
    /// `false`
    False,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `&=`
    AndAssign,
    /// `|=`
    OrAssign,
    /// `^=`
    XorAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword.
    Keyword(Keyword),
    /// An identifier (including type names, which the parser resolves).
    Ident(String),
    /// An integer literal (value plus whether it was suffixed unsigned).
    IntLiteral(u64, bool),
    /// A floating-point literal.
    FloatLiteral(f64),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub location: Location,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, location: Location) -> Self {
        Token { kind, location }
    }
}

/// Try to interpret an identifier as a keyword.
pub fn keyword_from_str(s: &str) -> Option<Keyword> {
    Some(match s {
        "__kernel" | "kernel" => Keyword::Kernel,
        "__global" | "global" => Keyword::Global,
        "__local" | "local" => Keyword::Local,
        "__constant" | "constant" => Keyword::Constant,
        "__private" | "private" => Keyword::Private,
        "const" => Keyword::Const,
        "void" => Keyword::Void,
        "if" => Keyword::If,
        "else" => Keyword::Else,
        "for" => Keyword::For,
        "while" => Keyword::While,
        "do" => Keyword::Do,
        "return" => Keyword::Return,
        "break" => Keyword::Break,
        "continue" => Keyword::Continue,
        "struct" => Keyword::Struct,
        "true" => Keyword::True,
        "false" => Keyword::False,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve_with_and_without_underscores() {
        assert_eq!(keyword_from_str("__kernel"), Some(Keyword::Kernel));
        assert_eq!(keyword_from_str("kernel"), Some(Keyword::Kernel));
        assert_eq!(keyword_from_str("__global"), Some(Keyword::Global));
        assert_eq!(keyword_from_str("float"), None);
        assert_eq!(keyword_from_str("whatever"), None);
    }
}
