//! Recursive-descent parser for the OpenCL C subset.

use crate::ast::*;
use crate::error::{CompileError, Location};
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::types::{AddressSpace, Type};

/// Parse a token stream produced by [`crate::lexer::lex`] into a
/// [`TranslationUnit`].
pub fn parse(tokens: &[Token]) -> Result<TranslationUnit, CompileError> {
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_translation_unit()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn location(&self) -> Location {
        self.tokens[self.pos.min(self.tokens.len() - 1)].location
    }

    fn bump(&mut self) -> &'a Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CompileError::at(
                self.location(),
                format!("expected {p:?}, found {:?}", self.peek()),
            ))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(CompileError::at(
                self.location(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    // ----- types ---------------------------------------------------------

    /// True when the current position starts a declaration (type followed by
    /// an identifier).
    fn at_declaration(&self) -> bool {
        match self.peek() {
            TokenKind::Keyword(
                Keyword::Global
                | Keyword::Local
                | Keyword::Constant
                | Keyword::Private
                | Keyword::Const
                | Keyword::Void,
            ) => true,
            TokenKind::Ident(name) if Type::is_type_name(name) => {
                // Distinguish `float x` (declaration) from `float(x)` and a
                // plain identifier expression.
                matches!(self.peek_at(1), TokenKind::Ident(_) | TokenKind::Punct(Punct::Star))
            }
            _ => false,
        }
    }

    fn parse_address_space(&mut self) -> Option<AddressSpace> {
        let space = match self.peek() {
            TokenKind::Keyword(Keyword::Global) => AddressSpace::Global,
            TokenKind::Keyword(Keyword::Local) => AddressSpace::Local,
            TokenKind::Keyword(Keyword::Constant) => AddressSpace::Constant,
            TokenKind::Keyword(Keyword::Private) => AddressSpace::Private,
            _ => return None,
        };
        self.bump();
        Some(space)
    }

    fn parse_type(&mut self) -> Result<Type, CompileError> {
        let loc = self.location();
        let space = self.parse_address_space();
        let mut is_const = self.eat_keyword(Keyword::Const);
        // Address space may also follow const.
        let space = space.or_else(|| self.parse_address_space());
        let base = if self.eat_keyword(Keyword::Void) {
            Type::Void
        } else {
            match self.peek().clone() {
                TokenKind::Keyword(Keyword::Struct) => {
                    return Err(CompileError::at(loc, "struct types are not supported"));
                }
                TokenKind::Ident(name) => match Type::from_name(&name) {
                    Some(t) => {
                        self.bump();
                        t
                    }
                    None => {
                        return Err(CompileError::at(loc, format!("unknown type name '{name}'")))
                    }
                },
                other => {
                    return Err(CompileError::at(loc, format!("expected type, found {other:?}")))
                }
            }
        };
        if self.eat_keyword(Keyword::Const) {
            is_const = true;
        }
        if self.eat_punct(Punct::Star) {
            // Trailing const after '*' (pointer itself const) — accepted and
            // ignored, as the subset does not model it.
            let _ = self.eat_keyword(Keyword::Const);
            Ok(Type::Pointer {
                pointee: Box::new(base),
                space: space.unwrap_or(AddressSpace::Private),
                is_const,
            })
        } else {
            Ok(base)
        }
    }

    // ----- top level ------------------------------------------------------

    fn parse_translation_unit(&mut self) -> Result<TranslationUnit, CompileError> {
        let mut unit = TranslationUnit::default();
        while self.peek() != &TokenKind::Eof {
            unit.functions.push(self.parse_function()?);
        }
        Ok(unit)
    }

    fn parse_function(&mut self) -> Result<Function, CompileError> {
        let location = self.location();
        let is_kernel = self.eat_keyword(Keyword::Kernel);
        let return_type = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            // Allow a bare `void` parameter list.
            if self.peek() == &TokenKind::Keyword(Keyword::Void)
                && self.peek_at(1) == &TokenKind::Punct(Punct::RParen)
            {
                self.bump();
                self.expect_punct(Punct::RParen)?;
            } else {
                loop {
                    let ty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    params.push(Param { name: pname, ty });
                    if self.eat_punct(Punct::Comma) {
                        continue;
                    }
                    self.expect_punct(Punct::RParen)?;
                    break;
                }
            }
        }
        let body = self.parse_block()?;
        Ok(Function { name, is_kernel, return_type, params, body, location })
    }

    // ----- statements -----------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, CompileError> {
        self.expect_punct(Punct::LBrace)?;
        let mut block = Block::default();
        while !self.eat_punct(Punct::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(CompileError::at(self.location(), "unexpected end of file in block"));
            }
            block.statements.push(self.parse_statement()?);
        }
        Ok(block)
    }

    fn parse_statement_or_block(&mut self) -> Result<Block, CompileError> {
        if self.peek() == &TokenKind::Punct(Punct::LBrace) {
            self.parse_block()
        } else {
            let stmt = self.parse_statement()?;
            Ok(Block { statements: vec![stmt] })
        }
    }

    fn parse_statement(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::Punct(Punct::Semicolon) => {
                self.bump();
                Ok(Stmt::Block(Block::default()))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_block = self.parse_statement_or_block()?;
                let else_block = if self.eat_keyword(Keyword::Else) {
                    Some(self.parse_statement_or_block()?)
                } else {
                    None
                };
                Ok(Stmt::If { cond, then_block, else_block })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.parse_statement_or_block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.parse_statement_or_block()?;
                if !self.eat_keyword(Keyword::While) {
                    return Err(CompileError::at(
                        self.location(),
                        "expected 'while' after do-body",
                    ));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semicolon) {
                    None
                } else if self.at_declaration() {
                    Some(Box::new(self.parse_declaration()?))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semicolon)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &TokenKind::Punct(Punct::Semicolon) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semicolon)?;
                let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.parse_statement_or_block()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                if self.eat_punct(Punct::Semicolon) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semicolon)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Break)
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Continue)
            }
            _ if self.at_declaration() => self.parse_declaration(),
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_declaration(&mut self) -> Result<Stmt, CompileError> {
        let location = self.location();
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        let init = if self.eat_punct(Punct::Assign) { Some(self.parse_expr()?) } else { None };
        // Multiple declarators (`int a = 1, b = 2;`) are lowered into nested
        // blocks by collecting them here.
        let mut extra = Vec::new();
        while self.eat_punct(Punct::Comma) {
            let loc2 = self.location();
            let name2 = self.expect_ident()?;
            let init2 = if self.eat_punct(Punct::Assign) { Some(self.parse_expr()?) } else { None };
            extra.push(Stmt::Decl { name: name2, ty: ty.clone(), init: init2, location: loc2 });
        }
        self.expect_punct(Punct::Semicolon)?;
        let first = Stmt::Decl { name, ty, init, location };
        if extra.is_empty() {
            Ok(first)
        } else {
            let mut statements = vec![first];
            statements.extend(extra);
            Ok(Stmt::Block(Block { statements }))
        }
    }

    // ----- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.parse_ternary()?;
        let loc = self.location();
        let compound = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusAssign) => Some(Some(BinOp::Add)),
            TokenKind::Punct(Punct::MinusAssign) => Some(Some(BinOp::Sub)),
            TokenKind::Punct(Punct::StarAssign) => Some(Some(BinOp::Mul)),
            TokenKind::Punct(Punct::SlashAssign) => Some(Some(BinOp::Div)),
            TokenKind::Punct(Punct::PercentAssign) => Some(Some(BinOp::Rem)),
            TokenKind::Punct(Punct::AndAssign) => Some(Some(BinOp::BitAnd)),
            TokenKind::Punct(Punct::OrAssign) => Some(Some(BinOp::BitOr)),
            TokenKind::Punct(Punct::XorAssign) => Some(Some(BinOp::BitXor)),
            TokenKind::Punct(Punct::ShlAssign) => Some(Some(BinOp::Shl)),
            TokenKind::Punct(Punct::ShrAssign) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = compound {
            self.bump();
            let value = self.parse_assignment()?;
            Ok(Expr::new(
                ExprKind::Assign { op, target: Box::new(lhs), value: Box::new(value) },
                loc,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn parse_ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let loc = self.location();
            let then_expr = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.parse_ternary()?;
            Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_expr: Box::new(then_expr),
                    else_expr: Box::new(else_expr),
                },
                loc,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: usize) -> Option<BinOp> {
        // Precedence levels from lowest to highest.
        let op = match (level, self.peek()) {
            (0, TokenKind::Punct(Punct::OrOr)) => BinOp::LogicalOr,
            (1, TokenKind::Punct(Punct::AndAnd)) => BinOp::LogicalAnd,
            (2, TokenKind::Punct(Punct::Pipe)) => BinOp::BitOr,
            (3, TokenKind::Punct(Punct::Caret)) => BinOp::BitXor,
            (4, TokenKind::Punct(Punct::Amp)) => BinOp::BitAnd,
            (5, TokenKind::Punct(Punct::Eq)) => BinOp::Eq,
            (5, TokenKind::Punct(Punct::Ne)) => BinOp::Ne,
            (6, TokenKind::Punct(Punct::Lt)) => BinOp::Lt,
            (6, TokenKind::Punct(Punct::Le)) => BinOp::Le,
            (6, TokenKind::Punct(Punct::Gt)) => BinOp::Gt,
            (6, TokenKind::Punct(Punct::Ge)) => BinOp::Ge,
            (7, TokenKind::Punct(Punct::Shl)) => BinOp::Shl,
            (7, TokenKind::Punct(Punct::Shr)) => BinOp::Shr,
            (8, TokenKind::Punct(Punct::Plus)) => BinOp::Add,
            (8, TokenKind::Punct(Punct::Minus)) => BinOp::Sub,
            (9, TokenKind::Punct(Punct::Star)) => BinOp::Mul,
            (9, TokenKind::Punct(Punct::Slash)) => BinOp::Div,
            (9, TokenKind::Punct(Punct::Percent)) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn parse_binary(&mut self, level: usize) -> Result<Expr, CompileError> {
        const MAX_LEVEL: usize = 9;
        if level > MAX_LEVEL {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            let loc = self.location();
            self.bump();
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, loc);
        }
        Ok(lhs)
    }

    fn at_cast(&self) -> bool {
        if self.peek() != &TokenKind::Punct(Punct::LParen) {
            return false;
        }
        match self.peek_at(1) {
            TokenKind::Keyword(
                Keyword::Global
                | Keyword::Local
                | Keyword::Constant
                | Keyword::Private
                | Keyword::Const
                | Keyword::Void,
            ) => true,
            TokenKind::Ident(name) => Type::is_type_name(name),
            _ => false,
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let loc = self.location();
        match self.peek().clone() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Neg, expr: Box::new(e) }, loc))
            }
            TokenKind::Punct(Punct::Plus) => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Plus, expr: Box::new(e) }, loc))
            }
            TokenKind::Punct(Punct::Not) => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Not, expr: Box::new(e) }, loc))
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::BitNot, expr: Box::new(e) }, loc))
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary { op: UnOp::Deref, expr: Box::new(e) }, loc))
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::PreIncDec { target: Box::new(e), inc: true }, loc))
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::PreIncDec { target: Box::new(e), inc: false }, loc))
            }
            _ if self.at_cast() => {
                self.bump(); // '('
                let ty = self.parse_type()?;
                self.expect_punct(Punct::RParen)?;
                // Vector literal: `(float4)(a, b, c, d)`.
                if let Type::Vector(scalar, width) = &ty {
                    if self.peek() == &TokenKind::Punct(Punct::LParen) {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat_punct(Punct::RParen) {
                            loop {
                                args.push(self.parse_expr()?);
                                if self.eat_punct(Punct::Comma) {
                                    continue;
                                }
                                self.expect_punct(Punct::RParen)?;
                                break;
                            }
                        }
                        return Ok(Expr::new(
                            ExprKind::Call {
                                name: format!("__vec_{}{}", scalar.name(), width),
                                args,
                            },
                            loc,
                        ));
                    }
                }
                let expr = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Cast { ty, expr: Box::new(expr) }, loc))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.parse_primary()?;
        loop {
            let loc = self.location();
            match self.peek().clone() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    expr = Expr::new(
                        ExprKind::Index { base: Box::new(expr), index: Box::new(index) },
                        loc,
                    );
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let member = self.expect_ident()?;
                    expr = Expr::new(ExprKind::Member { base: Box::new(expr), member }, loc);
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    expr =
                        Expr::new(ExprKind::PostIncDec { target: Box::new(expr), inc: true }, loc);
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    expr =
                        Expr::new(ExprKind::PostIncDec { target: Box::new(expr), inc: false }, loc);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let loc = self.location();
        match self.peek().clone() {
            TokenKind::IntLiteral(v, unsigned) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v, unsigned), loc))
            }
            TokenKind::FloatLiteral(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), loc))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(true), loc))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(false), loc))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::Punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(Punct::Comma) {
                                continue;
                            }
                            self.expect_punct(Punct::RParen)?;
                            break;
                        }
                    }
                    Ok(Expr::new(ExprKind::Call { name, args }, loc))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), loc))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => {
                Err(CompileError::at(loc, format!("unexpected token {other:?} in expression")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::types::ScalarType;

    fn parse_src(src: &str) -> TranslationUnit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_kernel_signature() {
        let unit =
            parse_src("__kernel void f(__global const float* a, __global float* out, uint n) { }");
        assert_eq!(unit.functions.len(), 1);
        let f = &unit.functions[0];
        assert!(f.is_kernel);
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 3);
        assert!(f.params[0].ty.is_pointer());
        assert_eq!(f.params[2].ty, Type::scalar(ScalarType::UInt));
    }

    #[test]
    fn parses_helper_function_and_kernel() {
        let unit = parse_src(
            r#"
            float square(float x) { return x * x; }
            __kernel void k(__global float* a) { a[0] = square(a[0]); }
            "#,
        );
        assert_eq!(unit.functions.len(), 2);
        assert!(!unit.functions[0].is_kernel);
        assert!(unit.functions[1].is_kernel);
    }

    #[test]
    fn parses_control_flow() {
        let unit = parse_src(
            r#"
            __kernel void k(__global int* a, uint n) {
                for (uint i = 0; i < n; i++) {
                    if (i % 2 == 0) { a[i] = 1; } else a[i] = 0;
                }
                uint j = 0;
                while (j < n) { j += 1; }
                do { j--; } while (j > 0);
            }
            "#,
        );
        let body = &unit.functions[0].body;
        assert!(matches!(body.statements[0], Stmt::For { .. }));
        assert!(matches!(body.statements[2], Stmt::While { .. }));
        assert!(matches!(body.statements[3], Stmt::DoWhile { .. }));
    }

    #[test]
    fn parses_casts_and_vector_literals() {
        let unit = parse_src(
            r#"
            __kernel void k(__global float* a) {
                float x = (float)1;
                float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
                a[0] = v.x + v.w + x;
            }
            "#,
        );
        let body = &unit.functions[0].body;
        match &body.statements[1] {
            Stmt::Decl { init: Some(e), .. } => match &e.kind {
                ExprKind::Call { name, args } => {
                    assert_eq!(name, "__vec_float4");
                    assert_eq!(args.len(), 4);
                }
                other => panic!("expected vector literal, got {other:?}"),
            },
            other => panic!("expected declaration, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_declarator() {
        let unit = parse_src("__kernel void k() { int a = 1, b = 2, c; a = b + c; }");
        let body = &unit.functions[0].body;
        match &body.statements[0] {
            Stmt::Block(block) => assert_eq!(block.statements.len(), 3),
            other => panic!("expected block of declarations, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let unit = parse_src("__kernel void k(__global int* a) { a[0] = 1 + 2 * 3; }");
        let body = &unit.functions[0].body;
        match &body.statements[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { value, .. } => match &value.kind {
                    ExprKind::Binary { op: BinOp::Add, rhs, .. } => {
                        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("expected add at top, got {other:?}"),
                },
                other => panic!("expected assignment, got {other:?}"),
            },
            other => panic!("expected expression statement, got {other:?}"),
        }
    }

    #[test]
    fn ternary_and_logical_operators() {
        parse_src("__kernel void k(__global int* a, int n) { a[0] = n > 0 && n < 10 ? 1 : 0; }");
    }

    #[test]
    fn error_on_unknown_type() {
        let tokens = lex("__kernel void k(mytype x) { }").unwrap();
        assert!(parse(&tokens).is_err());
    }

    #[test]
    fn error_on_struct() {
        let tokens = lex("struct S { int x; };").unwrap();
        assert!(parse(&tokens).is_err());
    }

    #[test]
    fn error_on_missing_semicolon() {
        let tokens = lex("__kernel void k() { int a = 1 }").unwrap();
        assert!(parse(&tokens).is_err());
    }

    #[test]
    fn error_on_unterminated_block() {
        let tokens = lex("__kernel void k() { int a = 1;").unwrap();
        assert!(parse(&tokens).is_err());
    }
}
